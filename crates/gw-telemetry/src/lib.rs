//! # gw-telemetry — the live service telemetry plane
//!
//! `gw-trace` answers *what happened* after a run: a deterministic event
//! stream, folded post-hoc. A resident service needs the complementary
//! question answered **while jobs are still running**: is tenant A
//! burning its p99 budget *right now*, did node 3 just get slow? This
//! crate is that plane, in four layers:
//!
//! 1. **Registry** ([`Registry`]) — sharded, lock-free-on-update metric
//!    cells: [`Counter`]s, [`Gauge`]s and log2-bucketed [`Histogram`]s
//!    (p50/p90/p99 by bucket interpolation). The service, scheduler,
//!    cache and — via the tracer bridge — cluster/fabric layers all
//!    register into one registry.
//! 2. **Snapshot ring** ([`SnapshotRing`]) — a bounded time-series of
//!    per-window deltas captured on the service's pump thread; queue
//!    depths, slot occupancy, vtime lag, cache hit rate, turnaround and
//!    queue-age histograms all become *windows* the detector can reason
//!    about.
//! 3. **Exporters** — Prometheus text exposition ([`Registry::prometheus`],
//!    validated by the in-repo [`validate_exposition`] linter, a sibling
//!    of `jsonck`) and the pinned-key-order `gw-telemetry-v1` JSON
//!    ([`Snapshot::to_json`]).
//! 4. **Health detector** ([`HealthDetector`]) — consumes live snapshots
//!    and raises named findings: [`HealthFinding::NodeSlow`] when a
//!    node's service-rate EWMA diverges from the fleet median (this is
//!    what closes the loop with the `gw-chaos` gray plane: an injected
//!    slowdown must surface here within a bounded number of snapshot
//!    intervals), [`HealthFinding::TenantSloBurn`] when a tenant's p99
//!    turnaround crosses its budget.
//!
//! **Determinism split.** Logical counters (admissions, chunk counts,
//! engine byte/message counts) are a pure function of the submission
//! sequence and seeds; [`Registry::determinism_digest`] folds exactly
//! those and is pinned byte-identical across runs and buffering levels.
//! Wall-timing histograms and gauges are exported but excluded from the
//! digest and documented as non-replayable. See [`Class`].

#![warn(missing_docs)]

mod bridge;
mod export;
mod health;
mod histogram;
mod promck;
mod registry;
mod snapshot;

pub use bridge::{engine_counter_name, TelemetryBridge};
pub use export::{prometheus, snapshot_json};
pub use health::{HealthConfig, HealthDetector, HealthFinding, NODE_CHUNK_WALL, TENANT_TURNAROUND};
pub use histogram::{bucket_lower, bucket_of, bucket_upper, HistogramCell, BUCKETS};
pub use promck::validate_exposition;
pub use registry::{full_name, Class, Counter, Gauge, Histogram, Registry};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot, SnapshotRing};
