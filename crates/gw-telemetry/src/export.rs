//! The two stable exporters.
//!
//! **Prometheus text exposition** ([`prometheus`]): rendered straight
//! from the live registry — `# TYPE` per family, cumulative `_bucket`
//! series with `le` bounds at the log2 bucket edges (zero buckets
//! skipped; cumulative counts stay monotone), `_sum`/`_count` per
//! histogram. Every rendering is valid under
//! [`crate::promck::validate_exposition`], which CI enforces.
//!
//! **`gw-telemetry-v1` JSON** ([`snapshot_json`]): one object per
//! [`Snapshot`], hand-written with pinned key order and fixed-point
//! floats (no exponents), valid under `gw_trace::validate_json` — the
//! same diff-stability convention as `gw-perf-analysis-v1`.

use std::fmt::Write as _;

use crate::histogram::{bucket_upper, BUCKETS};
use crate::registry::{Cell, Registry};
use crate::snapshot::Snapshot;

/// Format an `f64` as fixed-point JSON/Prometheus-safe text: no `+`
/// exponents, no `NaN`/`Inf` (clamped to 0), ≤ 6 fractional digits with
/// trailing zeros trimmed.
pub(crate) fn push_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
        return;
    }
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    out.push_str(if s.is_empty() { "0" } else { s });
}

fn push_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Render `registry` in Prometheus text exposition format.
pub fn prometheus(registry: &Registry) -> String {
    let entries = registry.entries();
    let mut out = String::with_capacity(entries.len() * 64);
    let mut typed: Option<String> = None;
    for (_, entry) in &entries {
        // Entries are sorted by full name, so one family's label sets
        // are contiguous: emit `# TYPE` on the first.
        if typed.as_deref() != Some(entry.name.as_str()) {
            let kind = match &entry.cell {
                Cell::Counter { .. } => "counter",
                Cell::Gauge(_) => "gauge",
                Cell::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", entry.name);
            typed = Some(entry.name.clone());
        }
        match &entry.cell {
            Cell::Counter { cell, .. } => {
                out.push_str(&entry.name);
                push_labels(&mut out, &entry.labels, None);
                let _ = writeln!(out, " {}", cell.load(std::sync::atomic::Ordering::Relaxed));
            }
            Cell::Gauge(cell) => {
                out.push_str(&entry.name);
                push_labels(&mut out, &entry.labels, None);
                out.push(' ');
                push_num(
                    &mut out,
                    f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed)),
                );
                out.push('\n');
            }
            Cell::Histogram(cell) => {
                let buckets = cell.bucket_counts();
                let mut cum = 0u64;
                for (i, &c) in buckets.iter().enumerate().take(BUCKETS) {
                    if c == 0 {
                        continue;
                    }
                    cum += c;
                    let mut le = String::new();
                    push_num(&mut le, bucket_upper(i).min(1 << 62) as f64);
                    let _ = write!(out, "{}_bucket", entry.name);
                    push_labels(&mut out, &entry.labels, Some(("le", &le)));
                    let _ = writeln!(out, " {cum}");
                }
                let _ = write!(out, "{}_bucket", entry.name);
                push_labels(&mut out, &entry.labels, Some(("le", "+Inf")));
                let _ = writeln!(out, " {cum}");
                let _ = write!(out, "{}_sum", entry.name);
                push_labels(&mut out, &entry.labels, None);
                let _ = writeln!(out, " {}", cell.sum());
                let _ = write!(out, "{}_count", entry.name);
                push_labels(&mut out, &entry.labels, None);
                let _ = writeln!(out, " {cum}");
            }
        }
    }
    out
}

fn push_name(out: &mut String, name: &str, labels: &[(String, String)]) {
    // The canonical full name contains `"` around label values — escape
    // for JSON embedding.
    let full = crate::registry::full_name(name, labels);
    out.push_str("\"name\":\"");
    for ch in full.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(ch),
        }
    }
    out.push('"');
}

/// Render a snapshot as `gw-telemetry-v1` JSON; see the module docs.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut o = String::from("{\"schema\":\"gw-telemetry-v1\"");
    let _ = write!(
        o,
        ",\"seq\":{},\"at_ms\":{},\"digest\":\"{}\"",
        snap.seq, snap.at_ms, snap.digest
    );

    o.push_str(",\"counters\":[");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('{');
        push_name(&mut o, &c.name, &c.labels);
        let _ = write!(
            o,
            ",\"value\":{},\"delta\":{},\"deterministic\":{}}}",
            c.value, c.delta, c.deterministic
        );
    }
    o.push(']');

    o.push_str(",\"gauges\":[");
    for (i, g) in snap.gauges.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('{');
        push_name(&mut o, &g.name, &g.labels);
        o.push_str(",\"value\":");
        push_num(&mut o, g.value);
        o.push('}');
    }
    o.push(']');

    o.push_str(",\"histograms\":[");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('{');
        push_name(&mut o, &h.name, &h.labels);
        let _ = write!(
            o,
            ",\"count\":{},\"delta_count\":{},\"sum\":{},\"delta_sum\":{}",
            h.count, h.delta_count, h.sum, h.delta_sum
        );
        for (k, v) in [("p50", h.p50), ("p90", h.p90), ("p99", h.p99)] {
            let _ = write!(o, ",\"{k}\":");
            push_num(&mut o, v);
        }
        o.push('}');
    }
    o.push_str("]}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Class;
    use crate::snapshot::SnapshotRing;

    #[test]
    fn prometheus_rendering_lints_clean() {
        let reg = Registry::new();
        reg.counter("gw_jobs_total", &[("tenant", "a")], Class::Logical)
            .add(3);
        reg.counter("gw_jobs_total", &[("tenant", "b")], Class::Logical)
            .add(1);
        reg.gauge("gw_queue_depth", &[]).set(2.5);
        let h = reg.histogram("gw_latency_ns", &[("node", "0")]);
        for v in [0u64, 1, 100, 100_000, 5_000_000] {
            h.observe(v);
        }
        let text = prometheus(&reg);
        crate::promck::validate_exposition(&text)
            .unwrap_or_else(|e| panic!("exposition invalid: {e}\n{text}"));
        assert!(text.contains("# TYPE gw_jobs_total counter"));
        assert!(text.contains("gw_jobs_total{tenant=\"a\"} 3"));
        assert!(text.contains("gw_latency_ns_bucket{node=\"0\",le=\"+Inf\"} 5"));
        assert!(text.contains("gw_latency_ns_count{node=\"0\"} 5"));
    }

    #[test]
    fn snapshot_json_is_pinned_and_valid() {
        let reg = Registry::new();
        reg.counter("a_total", &[], Class::Logical).add(2);
        reg.gauge("g", &[("t", "x")]).set(0.125);
        reg.histogram("h_ns", &[]).observe(1000);
        let ring = SnapshotRing::new(4);
        let s = ring.capture(&reg, 17);
        let json = s.to_json();
        gw_trace::validate_json(&json).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json}"));
        assert!(json.starts_with("{\"schema\":\"gw-telemetry-v1\",\"seq\":1,\"at_ms\":17"));
        assert!(json.contains("\"name\":\"g{t=\\\"x\\\"}\"") || json.contains("g{t="));
    }

    #[test]
    fn numbers_never_use_exponents() {
        for v in [0.0, 1e-9, 123456789.125, -0.5, f64::NAN, f64::INFINITY] {
            let mut s = String::new();
            push_num(&mut s, v);
            assert!(!s.contains('e') && !s.contains('E'), "{v} -> {s}");
        }
    }
}
