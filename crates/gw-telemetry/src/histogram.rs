//! Lock-free log2-bucketed histograms.
//!
//! A [`Histogram`] is 65 atomic buckets: bucket 0 holds the value 0 and
//! bucket *i* (1 ≤ i ≤ 64) holds values in `[2^(i−1), 2^i)` — the bucket
//! index is just `64 − leading_zeros(v)`, so `observe` is two relaxed
//! atomic adds and no branches beyond the zero case. Quantiles are
//! extracted by walking the cumulative counts and interpolating linearly
//! inside the winning bucket, which bounds the error by the bucket width
//! (a factor of 2 — fine for tail-latency *detection*, not for billing).
//!
//! Values are unitless `u64`s; by convention the plane records wall
//! durations in nanoseconds and the metric name carries the unit suffix
//! (`…_ns`). Histograms are always timing-class: they never participate
//! in the determinism digest (see `registry`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// A concurrently updatable log2 histogram. Cheap to share behind an
/// `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl HistogramCell {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from the bucket counts:
    /// linear interpolation inside the bucket that crosses the rank.
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.bucket_counts(), q)
    }
}

/// Quantile extraction over a bucket-count snapshot (shared with the
/// snapshot plane, which works on copied counts).
pub fn quantile_from_buckets(buckets: &[u64; BUCKETS], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c;
        if (next as f64) >= rank {
            let lo = bucket_lower(i) as f64;
            let hi = bucket_upper(i).min(1 << 63) as f64;
            let frac = if c == 0 {
                0.0
            } else {
                ((rank - cum as f64) / c as f64).clamp(0.0, 1.0)
            };
            return lo + frac * (hi - lo);
        }
        cum = next;
    }
    bucket_upper(BUCKETS - 1).min(1 << 63) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_bucket_width() {
        let h = HistogramCell::default();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.observe(v);
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // The true p99 is 1000; the estimate must land in its bucket.
        assert!(
            (512.0..=1023.0).contains(&p99),
            "p99 {p99} outside the bucket of 1000"
        );
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 450 + 1000);
    }

    #[test]
    fn empty_and_zero_only_histograms_do_not_panic() {
        let h = HistogramCell::default();
        assert_eq!(h.quantile(0.99), 0.0);
        h.observe(0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 1);
    }
}
