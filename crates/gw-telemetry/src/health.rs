//! The SLO/health detector: live snapshots in, named findings out.
//!
//! Two signals, both computed from [`Snapshot`] windows so detection
//! happens *while the service runs* (this is the loop-closer for the
//! `gw-chaos` gray plane — an injected slowdown must surface here, not
//! in a post-hoc trace fold):
//!
//! - **Node service-rate divergence.** Per node, the mean per-chunk wall
//!   time inside each snapshot window (from the `gw_node_chunk_wall_ns`
//!   histogram deltas) feeds an EWMA; a node whose EWMA exceeds
//!   [`HealthConfig::node_ratio`] × the fleet median for
//!   [`HealthConfig::confirm`] consecutive observed windows raises
//!   [`HealthFinding::NodeSlow`]. The confirmation streak is what keeps
//!   one-shot stalls (10–100 ms, a single window spike) from paging.
//! - **Tenant SLO budget burn.** A tenant with a configured p99
//!   turnaround budget raises [`HealthFinding::TenantSloBurn`] when the
//!   `gw_service_turnaround_ns` histogram's estimated p99 crosses the
//!   budget. Findings re-arm only after p99 drops below 80% of budget.
//!
//! Detection latency is bounded by construction: a persistent slowdown
//! that lifts a node's window means above the threshold is reported on
//! the `confirm`-th observed window after onset — the sweep in
//! `tests/telemetry.rs` pins this bound end to end.

use std::collections::{BTreeMap, BTreeSet};

use crate::snapshot::Snapshot;

/// Detector tuning.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// A node is suspect when its service-time EWMA exceeds this ratio
    /// of the fleet median (1.3 = 30% slower than the median node).
    pub node_ratio: f64,
    /// Consecutive suspect windows before a finding fires.
    pub confirm: u32,
    /// Minimum chunks a node must serve inside a window for the window
    /// to count (guards against judging a node on one noisy chunk).
    pub min_chunks: u64,
    /// EWMA weight of the newest window mean.
    pub ewma_alpha: f64,
    /// Per-tenant p99 turnaround budgets in milliseconds; tenants
    /// without an entry have no SLO (the default: no budgets, so a
    /// fault-free service emits no findings).
    pub slo_p99_ms: BTreeMap<String, f64>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            node_ratio: 1.3,
            confirm: 2,
            min_chunks: 4,
            ewma_alpha: 0.5,
            slo_p99_ms: BTreeMap::new(),
        }
    }
}

/// One named health finding. `kind()` is the stable name CI and the
/// chaos sweep assert on.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthFinding {
    /// A node's per-chunk service time diverged from the fleet median.
    NodeSlow {
        /// The physical node.
        node: u32,
        /// Snapshot sequence that confirmed the finding.
        seq: u64,
        /// EWMA per-chunk wall at confirmation, milliseconds.
        ewma_ms: f64,
        /// Fleet median EWMA at confirmation, milliseconds.
        fleet_median_ms: f64,
        /// Suspect windows observed before confirmation.
        streak: u32,
    },
    /// A tenant's estimated p99 turnaround crossed its budget.
    TenantSloBurn {
        /// The tenant.
        tenant: String,
        /// Snapshot sequence that raised the finding.
        seq: u64,
        /// Estimated p99 turnaround, milliseconds.
        p99_ms: f64,
        /// The configured budget, milliseconds.
        budget_ms: f64,
    },
}

impl HealthFinding {
    /// Stable finding name.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthFinding::NodeSlow { .. } => "node-slow",
            HealthFinding::TenantSloBurn { .. } => "slo-burn",
        }
    }

    /// The snapshot sequence the finding fired on.
    pub fn seq(&self) -> u64 {
        match self {
            HealthFinding::NodeSlow { seq, .. } => *seq,
            HealthFinding::TenantSloBurn { seq, .. } => *seq,
        }
    }

    /// One-line human rendering.
    pub fn describe(&self) -> String {
        match self {
            HealthFinding::NodeSlow {
                node,
                seq,
                ewma_ms,
                fleet_median_ms,
                streak,
            } => format!(
                "node-slow: node {node} per-chunk ewma {ewma_ms:.3} ms vs fleet median \
                 {fleet_median_ms:.3} ms ({streak} windows, snapshot {seq})"
            ),
            HealthFinding::TenantSloBurn {
                tenant,
                seq,
                p99_ms,
                budget_ms,
            } => format!(
                "slo-burn: tenant {tenant} p99 turnaround {p99_ms:.1} ms over budget \
                 {budget_ms:.1} ms (snapshot {seq})"
            ),
        }
    }
}

/// The name of the per-node chunk service-time histogram the detector
/// consumes (recorded by the telemetry bridge).
pub const NODE_CHUNK_WALL: &str = "gw_node_chunk_wall_ns";
/// The name of the per-tenant turnaround histogram.
pub const TENANT_TURNAROUND: &str = "gw_service_turnaround_ns";

#[derive(Debug, Default)]
struct NodeState {
    ewma_ns: f64,
    streak: u32,
    reported: bool,
}

/// Streaming detector; feed it snapshots in order via
/// [`HealthDetector::observe`].
#[derive(Debug)]
pub struct HealthDetector {
    cfg: HealthConfig,
    nodes: BTreeMap<u32, NodeState>,
    slo_burning: BTreeSet<String>,
}

impl HealthDetector {
    /// A fresh detector.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthDetector {
            cfg,
            nodes: BTreeMap::new(),
            slo_burning: BTreeSet::new(),
        }
    }

    /// Consume one snapshot; returns the findings it raised (empty for a
    /// healthy window). Idle windows (no chunks anywhere) never panic
    /// and never advance streaks.
    pub fn observe(&mut self, snap: &Snapshot) -> Vec<HealthFinding> {
        let mut findings = Vec::new();

        // Per-node window means from the chunk-wall histogram deltas.
        let mut observed: Vec<(u32, f64)> = Vec::new();
        for h in &snap.histograms {
            if h.name != NODE_CHUNK_WALL || h.delta_count < self.cfg.min_chunks {
                continue;
            }
            let Some(node) = h.label("node").and_then(|s| s.parse::<u32>().ok()) else {
                continue;
            };
            if let Some(mean) = h.window_mean() {
                observed.push((node, mean));
            }
        }
        for &(node, mean) in &observed {
            let st = self.nodes.entry(node).or_default();
            st.ewma_ns = if st.ewma_ns == 0.0 {
                mean
            } else {
                self.cfg.ewma_alpha * mean + (1.0 - self.cfg.ewma_alpha) * st.ewma_ns
            };
        }
        if self.nodes.len() >= 2 && !observed.is_empty() {
            let mut ewmas: Vec<f64> = self.nodes.values().map(|s| s.ewma_ns).collect();
            ewmas.sort_by(f64::total_cmp);
            let median = if ewmas.len() % 2 == 1 {
                ewmas[ewmas.len() / 2]
            } else {
                0.5 * (ewmas[ewmas.len() / 2 - 1] + ewmas[ewmas.len() / 2])
            };
            if median > 0.0 {
                for &(node, mean) in &observed {
                    let st = self.nodes.get_mut(&node).expect("observed node exists");
                    // Both the smoothed estimate and the current window
                    // must diverge: the EWMA alone would keep a one-shot
                    // stall "suspect" for a couple of windows after it
                    // cleared, and the raw mean alone would page on a
                    // single noisy window.
                    let bound = self.cfg.node_ratio * median;
                    if st.ewma_ns >= bound && mean >= bound {
                        st.streak += 1;
                        if st.streak >= self.cfg.confirm && !st.reported {
                            st.reported = true;
                            findings.push(HealthFinding::NodeSlow {
                                node,
                                seq: snap.seq,
                                ewma_ms: st.ewma_ns / 1e6,
                                fleet_median_ms: median / 1e6,
                                streak: st.streak,
                            });
                        }
                    } else {
                        st.streak = 0;
                        st.reported = false;
                    }
                }
            }
        }

        // Tenant SLO burn from the turnaround histogram's estimated p99.
        for h in &snap.histograms {
            if h.name != TENANT_TURNAROUND || h.count == 0 {
                continue;
            }
            let Some(tenant) = h.label("tenant") else {
                continue;
            };
            let Some(&budget_ms) = self.cfg.slo_p99_ms.get(tenant) else {
                continue;
            };
            let p99_ms = h.p99 / 1e6;
            if p99_ms > budget_ms {
                if self.slo_burning.insert(tenant.to_string()) {
                    findings.push(HealthFinding::TenantSloBurn {
                        tenant: tenant.to_string(),
                        seq: snap.seq,
                        p99_ms,
                        budget_ms,
                    });
                }
            } else if p99_ms < 0.8 * budget_ms {
                self.slo_burning.remove(tenant);
            }
        }

        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Class, Registry};
    use crate::snapshot::SnapshotRing;

    fn plane() -> (std::sync::Arc<Registry>, SnapshotRing) {
        (Registry::new(), SnapshotRing::new(64))
    }

    fn feed(reg: &Registry, node: u32, chunks: u64, each_ns: u64) {
        let h = reg.histogram(NODE_CHUNK_WALL, &[("node", &node.to_string())]);
        for _ in 0..chunks {
            h.observe(each_ns);
        }
        reg.counter(
            "gw_node_chunks_total",
            &[("node", &node.to_string())],
            Class::Logical,
        )
        .add(chunks);
    }

    #[test]
    fn persistent_divergence_confirms_on_the_second_window() {
        let (reg, ring) = plane();
        let mut det = HealthDetector::new(HealthConfig::default());
        let mut fired = Vec::new();
        for w in 1..=4u64 {
            for node in 0..3u32 {
                let base = 1_000_000u64; // 1 ms
                let ns = if node == 2 { base * 3 } else { base };
                feed(&reg, node, 8, ns);
            }
            let snap = ring.capture(&reg, w * 10);
            fired.extend(det.observe(&snap));
        }
        assert_eq!(fired.len(), 1, "exactly one confirmation: {fired:?}");
        match &fired[0] {
            HealthFinding::NodeSlow {
                node, seq, streak, ..
            } => {
                assert_eq!(*node, 2);
                assert_eq!(*streak, 2, "confirmed on the streak bound");
                assert_eq!(*seq, 2, "second window confirms");
            }
            other => panic!("unexpected finding {other:?}"),
        }
    }

    #[test]
    fn one_window_spike_and_clean_fleets_stay_silent() {
        let (reg, ring) = plane();
        let mut det = HealthDetector::new(HealthConfig::default());
        let mut fired = Vec::new();
        for w in 1..=5u64 {
            for node in 0..3u32 {
                // Node 1 spikes 5x in window 2 only (a one-shot stall).
                let ns = if node == 1 && w == 2 {
                    5_000_000
                } else {
                    1_000_000
                };
                feed(&reg, node, 8, ns);
            }
            fired.extend(det.observe(&ring.capture(&reg, w * 10)));
        }
        assert!(
            fired.is_empty(),
            "one-shot spike must not confirm: {fired:?}"
        );
    }

    #[test]
    fn slo_burn_names_the_tenant_and_rearms_after_recovery() {
        let (reg, ring) = plane();
        let mut cfg = HealthConfig::default();
        cfg.slo_p99_ms.insert("alpha".into(), 10.0);
        let mut det = HealthDetector::new(cfg);
        let h = reg.histogram(TENANT_TURNAROUND, &[("tenant", "alpha")]);
        for _ in 0..20 {
            h.observe(50_000_000); // 50 ms >> 10 ms budget
        }
        let f = det.observe(&ring.capture(&reg, 10));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind(), "slo-burn");
        match &f[0] {
            HealthFinding::TenantSloBurn { tenant, p99_ms, .. } => {
                assert_eq!(tenant, "alpha");
                assert!(*p99_ms > 10.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Still burning: no duplicate finding.
        assert!(det.observe(&ring.capture(&reg, 20)).is_empty());
    }

    #[test]
    fn idle_snapshots_never_panic_or_fire() {
        let (reg, ring) = plane();
        let mut det = HealthDetector::new(HealthConfig::default());
        for w in 0..10u64 {
            assert!(det.observe(&ring.capture(&reg, w)).is_empty());
        }
    }
}
