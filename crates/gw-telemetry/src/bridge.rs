//! The tracer→registry bridge.
//!
//! The engine already narrates everything through `gw-trace` lanes —
//! every chunk span, every fabric/storage/chaos counter bump. Rather
//! than threading a registry through the pipeline, fabric and storage
//! layers, [`TelemetryBridge`] implements [`gw_trace::EventSink`] and is
//! handed to `Tracer::with_sink`, so it observes every event *as it is
//! recorded* and folds the interesting ones into live metrics:
//!
//! - accounted `Chunk` span ends on pipeline lanes →
//!   `gw_node_chunk_wall_ns{node}` (timing histogram, the health
//!   detector's node signal), `gw_node_chunks_total{node}` (timing) and
//!   the fleet-wide `gw_engine_chunks_total` (logical);
//! - `Count` events → `gw_engine_<counter>_total{node}` (timing).
//!
//! **Why per-node series are timing-class.** The engine's determinism
//! contract pins per-lane *emission order* and job *output bytes*, not
//! *placement*: which node claims which split is a race the coordinator
//! resolves at runtime, shuffle message/byte counts depend on batching,
//! and run-pool hit/miss depends on recycle timing. So every per-node
//! engine counter is exported but excluded from the digest, while the
//! fleet-wide accounted-chunk total — a pure function of the input and
//! `JobConfig`, identical across runs and buffering levels — is the
//! logical engine signal the digest folds in.
//!
//! Jobs run on *virtual* nodes `0..slots`; the service registers the
//! physical node set at dispatch via [`TelemetryBridge::map_job`] so
//! exported series (and health findings) name physical nodes. Unmapped
//! jobs (one-shot runs) pass lane node ids through unchanged.
//!
//! The hot path is read-lock + cached handle: registration cost is paid
//! once per (metric, node) pair, after which each event costs one map
//! lookup and one relaxed atomic.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use gw_trace::{CounterId, Event, EventKind, EventSink, LaneId, Realm, SpanId};

use crate::registry::{Class, Counter, Histogram, Registry};

/// Sanitized Prometheus-safe name for an engine counter:
/// `dfs.read.remote-fault` → `gw_engine_dfs_read_remote_fault_total`.
pub fn engine_counter_name(id: CounterId) -> String {
    let mut out = String::from("gw_engine_");
    for ch in id.name().chars() {
        out.push(match ch {
            '.' | '-' => '_',
            c => c,
        });
    }
    out.push_str("_total");
    out
}

#[derive(Debug, Default)]
struct BridgeState {
    /// job → physical node set (virtual lane node indexes into it).
    jobs: HashMap<u32, Vec<u32>>,
    chunk_wall: HashMap<u32, Histogram>,
    chunk_count: HashMap<u32, Counter>,
    engine: HashMap<(CounterId, u32), Counter>,
}

/// Live [`gw_trace::EventSink`] folding engine events into a
/// [`Registry`]; see the module docs.
#[derive(Debug)]
pub struct TelemetryBridge {
    registry: Arc<Registry>,
    chunk_total: Counter,
    state: RwLock<BridgeState>,
}

impl TelemetryBridge {
    /// A bridge writing into `registry`.
    pub fn new(registry: Arc<Registry>) -> Arc<Self> {
        let chunk_total = registry.counter("gw_engine_chunks_total", &[], Class::Logical);
        Arc::new(TelemetryBridge {
            registry,
            chunk_total,
            state: RwLock::new(BridgeState::default()),
        })
    }

    /// The registry this bridge writes into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Register the physical node set job `job` was dispatched onto;
    /// virtual node `i` in the job's lanes maps to `nodes[i]`.
    pub fn map_job(&self, job: u32, nodes: Vec<u32>) {
        self.state.write().jobs.insert(job, nodes);
    }

    /// Drop a completed job's mapping (handle caches are per physical
    /// node and stay).
    pub fn forget_job(&self, job: u32) {
        self.state.write().jobs.remove(&job);
    }

    fn phys_node(&self, lane: LaneId) -> u32 {
        let st = self.state.read();
        match st.jobs.get(&lane.job) {
            Some(nodes) => nodes.get(lane.node as usize).copied().unwrap_or(lane.node),
            None => lane.node,
        }
    }

    fn chunk_handles(&self, node: u32) -> (Histogram, Counter) {
        {
            let st = self.state.read();
            if let (Some(h), Some(c)) = (st.chunk_wall.get(&node), st.chunk_count.get(&node)) {
                return (h.clone(), c.clone());
            }
        }
        let label = node.to_string();
        let h = self
            .registry
            .histogram(crate::health::NODE_CHUNK_WALL, &[("node", &label)]);
        let c = self
            .registry
            .counter("gw_node_chunks_total", &[("node", &label)], Class::Timing);
        let mut st = self.state.write();
        st.chunk_wall.insert(node, h.clone());
        st.chunk_count.insert(node, c.clone());
        (h, c)
    }

    fn engine_handle(&self, id: CounterId, node: u32) -> Counter {
        {
            let st = self.state.read();
            if let Some(c) = st.engine.get(&(id, node)) {
                return c.clone();
            }
        }
        let c = self.registry.counter(
            &engine_counter_name(id),
            &[("node", &node.to_string())],
            Class::Timing,
        );
        self.state.write().engine.insert((id, node), c.clone());
        c
    }
}

impl EventSink for TelemetryBridge {
    fn on_event(&self, lane: LaneId, event: &Event) {
        match event.kind {
            EventKind::End {
                span: SpanId::Chunk { .. },
                wall_ns,
                accounted: true,
                ..
            } if matches!(lane.realm, Realm::Pipeline { .. }) => {
                let node = self.phys_node(lane);
                let (hist, cnt) = self.chunk_handles(node);
                hist.observe(wall_ns);
                cnt.inc();
                self.chunk_total.inc();
            }
            EventKind::Count { counter, delta } => {
                let node = self.phys_node(lane);
                self.engine_handle(counter, node).add(delta);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_trace::{PipelineKind, StageId, Tracer};
    use std::time::Duration;

    fn pipeline_lane(job: u32, node: u32) -> LaneId {
        LaneId {
            job,
            node,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage: StageId::Kernel,
                lane: 0,
            },
        }
    }

    #[test]
    fn chunk_ends_and_counts_land_on_physical_nodes() {
        let reg = Registry::new();
        let bridge = TelemetryBridge::new(Arc::clone(&reg));
        bridge.map_job(7, vec![3, 5]);

        let tracer = Tracer::with_sink(bridge.clone()).for_job(7);
        let lane = tracer.lane(pipeline_lane(0, 1)); // virtual node 1 → phys 5
        lane.begin(SpanId::Chunk { seq: 0 });
        lane.end(
            SpanId::Chunk { seq: 0 },
            Duration::from_micros(250),
            Duration::from_micros(250),
        );
        let storage = tracer.lane(LaneId {
            job: 0,
            node: 0, // virtual node 0 → phys 3
            realm: Realm::Storage,
        });
        storage.count(CounterId::DfsReadLocal, 4);

        let cnt = reg.counter("gw_node_chunks_total", &[("node", "5")], Class::Timing);
        assert_eq!(cnt.get(), 1, "chunk landed on physical node 5");
        let total = reg.counter("gw_engine_chunks_total", &[], Class::Logical);
        assert_eq!(total.get(), 1, "fleet-wide chunk total tracks the digest");
        let eng = reg.counter(
            "gw_engine_dfs_read_local_total",
            &[("node", "3")],
            Class::Timing,
        );
        assert_eq!(eng.get(), 4);
        let hist = reg.histogram(crate::health::NODE_CHUNK_WALL, &[("node", "5")]);
        assert_eq!(hist.cell().count(), 1);
    }

    #[test]
    fn unaccounted_and_unmapped_events_are_safe() {
        let reg = Registry::new();
        let bridge = TelemetryBridge::new(Arc::clone(&reg));
        // No map_job: lane node passes through.
        let tracer = Tracer::with_sink(bridge);
        let lane = tracer.lane(pipeline_lane(0, 2));
        lane.begin(SpanId::Chunk { seq: 1 });
        lane.end_unaccounted(SpanId::Chunk { seq: 1 });
        let cnt = reg.counter("gw_node_chunks_total", &[("node", "2")], Class::Timing);
        assert_eq!(cnt.get(), 0, "unaccounted ends don't count chunks");
        lane.count(CounterId::GraySlowdowns, 1);
        let eng = reg.counter(
            "gw_engine_chaos_gray_slowdowns_total",
            &[("node", "2")],
            Class::Timing,
        );
        assert_eq!(eng.get(), 1);
    }

    #[test]
    fn sanitizer_handles_every_counter_id() {
        for id in [
            CounterId::DfsReadRemoteFault,
            CounterId::ShuffleSendBytes,
            CounterId::RunPoolHit,
        ] {
            let n = engine_counter_name(id);
            assert!(n.starts_with("gw_engine_") && n.ends_with("_total"));
            assert!(
                n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{n}"
            );
        }
    }
}
