//! `promck` — a strict, dependency-free Prometheus text-exposition
//! linter, the sibling of `gw-trace`'s `jsonck`.
//!
//! CI pipes every exporter rendering through
//! [`validate_exposition`] so a malformed metric name, a broken label
//! escape, or a non-monotone histogram fails the build instead of
//! silently confusing a scraper. Checked rules (text format 0.0.4):
//!
//! - every line is a `# HELP`/`# TYPE` comment, a plain `#` comment, or
//!   a sample `name[{labels}] value`;
//! - metric and label names match `[a-zA-Z_:][a-zA-Z0-9_:]*` /
//!   `[a-zA-Z_][a-zA-Z0-9_]*`;
//! - label values use `\\`, `\"`, `\n` escapes only;
//! - values parse as decimal floats or `+Inf`/`-Inf`/`NaN`;
//! - at most one `# TYPE` per family, before any of its samples, with a
//!   known type (`counter`/`gauge`/`histogram`/`summary`/`untyped`);
//! - no duplicate sample identity (name + label set);
//! - per histogram family and label set (ignoring `le`): `le` bounds
//!   strictly increasing, cumulative bucket counts non-decreasing, a
//!   `+Inf` bucket present whose count equals `_count` when present;
//! - input is newline-terminated.
//!
//! Errors are returned as `line N: message`.

use std::collections::{BTreeMap, HashSet};

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => return Some(f64::INFINITY),
        "-Inf" => return Some(f64::NEG_INFINITY),
        "NaN" => return Some(f64::NAN),
        _ => {}
    }
    // Reject forms Rust's parser accepts but the exposition format does
    // not advertise (hex, underscores, leading '+inf' variants).
    if s.is_empty() || s.contains(['x', 'X', '_']) {
        return None;
    }
    s.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Parse `{k="v",...}`; returns the canonical label set (sorted) and the
/// `le` value when present. `rest` starts at `{`.
fn parse_labels(rest: &str) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = rest.as_bytes();
    debug_assert_eq!(bytes[0], b'{');
    let mut labels = Vec::new();
    let mut i = 1usize;
    loop {
        if i >= bytes.len() {
            return Err("unterminated label set".into());
        }
        if bytes[i] == b'}' {
            i += 1;
            break;
        }
        // label name
        let start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let name = &rest[start..i];
        if !valid_label_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err("label value must be quoted".into());
        }
        i += 1;
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err("unterminated label value".into());
            }
            match bytes[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => return Err(format!("bad escape {other:?} in label value")),
                    }
                    i += 1;
                }
                _ => {
                    value.push(rest[i..].chars().next().unwrap());
                    i += rest[i..].chars().next().unwrap().len_utf8();
                }
            }
        }
        labels.push((name.to_string(), value));
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {}
            other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
        }
    }
    labels.sort();
    Ok((labels, i))
}

/// The metric family a sample belongs to: `x_bucket`/`x_sum`/`x_count`
/// fold into `x` when `x` was declared a histogram.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Validate a full exposition rendering; `Ok(())` or `line N: message`.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut sampled: HashSet<String> = HashSet::new();
    let mut seen_family_sample: HashSet<String> = HashSet::new();
    // (family, labels-without-le) -> [(le, cum_count)]
    type SeriesKey = (String, Vec<(String, String)>);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        let err = |m: String| Err(format!("line {n}: {m}"));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(2, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let rest = parts.next().unwrap_or("");
                    let mut it = rest.splitn(2, ' ');
                    let (name, ty) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
                    if !valid_metric_name(name) {
                        return err(format!("bad metric name in TYPE: {name:?}"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                        return err(format!("unknown TYPE {ty:?}"));
                    }
                    if types.insert(name.to_string(), ty.to_string()).is_some() {
                        return err(format!("duplicate TYPE for {name}"));
                    }
                    if seen_family_sample.contains(name) {
                        return err(format!("TYPE for {name} after its samples"));
                    }
                }
                Some("HELP") => {
                    let rest = parts.next().unwrap_or("");
                    let name = rest.split(' ').next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return err(format!("bad metric name in HELP: {name:?}"));
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }

        // Sample line: name[{labels}] value
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return err(format!("bad metric name {name:?}"));
        }
        let rest = &line[name_end..];
        let (labels, consumed) = if rest.starts_with('{') {
            match parse_labels(rest) {
                Ok(ok) => ok,
                Err(m) => return err(m),
            }
        } else {
            (Vec::new(), 0)
        };
        let after = &rest[consumed..];
        let Some(value_str) = after.strip_prefix(' ') else {
            return err("expected ' value' after sample name".into());
        };
        if value_str.contains(' ') {
            return err("timestamps are not accepted by this linter".into());
        }
        let Some(value) = valid_value(value_str.trim_end()) else {
            return err(format!("bad sample value {value_str:?}"));
        };

        let identity = format!("{name}{labels:?}");
        if !sampled.insert(identity) {
            return err(format!("duplicate sample {name} with identical labels"));
        }
        let family = family_of(name, &types).to_string();
        seen_family_sample.insert(family.clone());

        // Histogram bookkeeping.
        if types.get(&family).map(String::as_str) == Some("histogram") {
            let mut no_le: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            no_le.sort();
            if name.ends_with("_bucket") {
                let Some(le) = labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v) else {
                    return err("histogram _bucket sample without le label".into());
                };
                let Some(bound) = valid_value(le).or(match le.as_str() {
                    "+Inf" => Some(f64::INFINITY),
                    _ => None,
                }) else {
                    return err(format!("bad le bound {le:?}"));
                };
                buckets
                    .entry((family.clone(), no_le))
                    .or_default()
                    .push((bound, value));
            } else if name.ends_with("_count") {
                counts.insert((family.clone(), no_le), value);
            }
        }
    }

    for ((family, labels), series) in &buckets {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = -1.0f64;
        let mut has_inf = false;
        let mut inf_cum = 0.0;
        for &(bound, cum) in series {
            if bound <= prev_bound {
                return Err(format!(
                    "histogram {family}{labels:?}: le bounds not increasing at {bound}"
                ));
            }
            if cum < prev_cum {
                return Err(format!(
                    "histogram {family}{labels:?}: cumulative counts decrease at le={bound}"
                ));
            }
            if bound.is_infinite() {
                has_inf = true;
                inf_cum = cum;
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        if !has_inf {
            return Err(format!("histogram {family}{labels:?}: no +Inf bucket"));
        }
        if let Some(&count) = counts.get(&(family.clone(), labels.clone())) {
            if (count - inf_cum).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}{labels:?}: +Inf bucket {inf_cum} != _count {count}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(s: &str) {
        validate_exposition(s).unwrap_or_else(|e| panic!("expected valid, got {e}:\n{s}"));
    }

    fn bad(s: &str, needle: &str) {
        let e = validate_exposition(s).expect_err("expected invalid");
        assert!(e.contains(needle), "error {e:?} lacks {needle:?} for:\n{s}");
    }

    #[test]
    fn accepts_well_formed_families() {
        ok("# TYPE a_total counter\na_total 3\n");
        ok("# HELP g help text here\n# TYPE g gauge\ng{x=\"1\"} 2.5\ng{x=\"2\"} -0.5\n");
        ok(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 3\n\
             h_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 4\n",
        );
        ok("# arbitrary comment\nup 1\n");
        ok("esc{v=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn rejects_malformed_lines() {
        bad("a_total 1", "newline");
        bad("9bad 1\n", "bad metric name");
        bad("a{b=\"1\" 2\n", "expected ',' or '}'");
        bad("a{b=1} 2\n", "quoted");
        bad("a 0x10\n", "bad sample value");
        bad("a 1 1700000000\n", "timestamps");
        bad(
            "# TYPE a counter\n# TYPE a counter\na 1\n",
            "duplicate TYPE",
        );
        bad("a 1\n# TYPE a counter\n", "after its samples");
        bad("# TYPE a widget\na 1\n", "unknown TYPE");
        bad("a 1\na 2\n", "duplicate sample");
        bad("esc{v=\"a\\qb\"} 1\n", "bad escape");
    }

    #[test]
    fn rejects_broken_histograms() {
        bad(
            "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n\
             h_bucket{le=\"+Inf\"} 2\n",
            "not increasing",
        );
        bad(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\n",
            "decrease",
        );
        bad(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n",
            "no +Inf bucket",
        );
        bad(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",
            "!= _count",
        );
        bad("# TYPE h histogram\nh_bucket 1\n", "without le");
    }
}
