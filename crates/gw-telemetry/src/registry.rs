//! The sharded metrics registry.
//!
//! Registration (name + labels → handle) takes one shard's write lock;
//! after that every update is a relaxed atomic on the handle — the hot
//! path never touches a lock, which is what lets the fabric and pipeline
//! layers bump counters from inside stage threads without perturbing the
//! timings they measure.
//!
//! **Determinism split.** Every metric is either *logical* or *timing*:
//!
//! - [`Class::Logical`] counters measure event counts, bytes, admissions
//!   — quantities that are a pure function of (submission sequence, seed,
//!   `JobConfig`, node count) under the engine's determinism contract.
//!   [`Registry::determinism_digest`] folds exactly these, sorted by
//!   name, into an FNV-1a digest that is byte-identical across runs and
//!   buffering levels (pinned in `tests/telemetry.rs`).
//! - [`Class::Timing`] metrics (every gauge and histogram, plus counters
//!   like cache hits whose value depends on wall-clock races) are
//!   excluded from the digest and documented as non-replayable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::histogram::HistogramCell;

/// Determinism class of a metric; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Replayable: participates in [`Registry::determinism_digest`].
    Logical,
    /// Wall-clock dependent: exported but never digested.
    Timing,
}

/// A counter handle. Clones share the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (f64 stored as bits). Clones share the cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram handle. Clones share the cell. Histograms are always
/// timing-class.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.0.observe(v);
    }
    /// Record a [`std::time::Duration`] in nanoseconds.
    pub fn observe_ns(&self, d: std::time::Duration) {
        self.observe(d.as_nanos() as u64);
    }
    /// The underlying cell (bucket access for exporters).
    pub fn cell(&self) -> &HistogramCell {
        &self.0
    }
}

/// One registered metric, as exporters see it.
#[derive(Debug, Clone)]
pub(crate) enum Cell {
    Counter { cell: Arc<AtomicU64>, class: Class },
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub cell: Cell,
}

const SHARDS: usize = 16;

/// The sharded registry; see the module docs. Cheap to share via `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [RwLock<BTreeMap<String, Entry>>; SHARDS],
}

/// Canonical full name: `name{k="v",…}` with labels sorted by key.
/// Doubles as the shard/map key and the exporters' sample identity.
pub fn full_name(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Registry::default())
    }

    fn shard_of(&self, key: &str) -> &RwLock<BTreeMap<String, Entry>> {
        &self.shards[(fnv1a(key.as_bytes(), FNV_OFFSET) as usize) % SHARDS]
    }

    /// Register (or fetch) a counter. Idempotent: the same name+labels
    /// always returns a handle to the same cell; the class of the first
    /// registration wins.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], class: Class) -> Counter {
        let labels = sorted_labels(labels);
        let key = full_name(name, &labels);
        let shard = self.shard_of(&key);
        if let Some(Entry {
            cell: Cell::Counter { cell, .. },
            ..
        }) = shard.read().get(&key)
        {
            return Counter(Arc::clone(cell));
        }
        let mut w = shard.write();
        let entry = w.entry(key).or_insert_with(|| Entry {
            name: name.to_string(),
            labels,
            cell: Cell::Counter {
                cell: Arc::new(AtomicU64::new(0)),
                class,
            },
        });
        match &entry.cell {
            Cell::Counter { cell, .. } => Counter(Arc::clone(cell)),
            _ => panic!("metric {} re-registered with a different type", entry.name),
        }
    }

    /// Register (or fetch) a gauge. Gauges are always timing-class.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = sorted_labels(labels);
        let key = full_name(name, &labels);
        let shard = self.shard_of(&key);
        if let Some(Entry {
            cell: Cell::Gauge(cell),
            ..
        }) = shard.read().get(&key)
        {
            return Gauge(Arc::clone(cell));
        }
        let mut w = shard.write();
        let entry = w.entry(key).or_insert_with(|| Entry {
            name: name.to_string(),
            labels,
            cell: Cell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        });
        match &entry.cell {
            Cell::Gauge(cell) => Gauge(Arc::clone(cell)),
            _ => panic!("metric {} re-registered with a different type", entry.name),
        }
    }

    /// Register (or fetch) a histogram. Histograms are always
    /// timing-class.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let labels = sorted_labels(labels);
        let key = full_name(name, &labels);
        let shard = self.shard_of(&key);
        if let Some(Entry {
            cell: Cell::Histogram(cell),
            ..
        }) = shard.read().get(&key)
        {
            return Histogram(Arc::clone(cell));
        }
        let mut w = shard.write();
        let entry = w.entry(key).or_insert_with(|| Entry {
            name: name.to_string(),
            labels,
            cell: Cell::Histogram(Arc::new(HistogramCell::default())),
        });
        match &entry.cell {
            Cell::Histogram(cell) => Histogram(Arc::clone(cell)),
            _ => panic!("metric {} re-registered with a different type", entry.name),
        }
    }

    /// All entries, sorted by canonical full name.
    pub(crate) fn entries(&self) -> Vec<(String, Entry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (k, e) in shard.read().iter() {
                out.push((k.clone(), e.clone()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// FNV-1a digest over the sorted `(full name, value)` pairs of every
    /// **logical** counter. Byte-identical across runs and buffering
    /// levels for a fixed submission sequence; gauges, histograms and
    /// timing-class counters are excluded.
    pub fn determinism_digest(&self) -> String {
        let mut hash = FNV_OFFSET;
        for (key, entry) in self.entries() {
            if let Cell::Counter {
                cell,
                class: Class::Logical,
            } = &entry.cell
            {
                hash = fnv1a(key.as_bytes(), hash);
                hash = fnv1a(b"=", hash);
                hash = fnv1a(cell.load(Ordering::Relaxed).to_string().as_bytes(), hash);
                hash = fnv1a(b"\n", hash);
            }
        }
        format!("tele-{hash:016x}")
    }

    /// Render the whole registry in Prometheus text exposition format
    /// (valid under [`crate::promck::validate_exposition`]).
    pub fn prometheus(&self) -> String {
        crate::export::prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_idempotent_and_label_order_is_canonical() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("b", "2"), ("a", "1")], Class::Logical);
        let b = r.counter("x_total", &[("a", "1"), ("b", "2")], Class::Logical);
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7, "label order must not split the metric");
        assert_eq!(full_name("x", &sorted_labels(&[("b", "2")])), "x{b=\"2\"}");
    }

    #[test]
    fn digest_covers_logical_counters_only_and_is_order_free() {
        let r1 = Registry::new();
        r1.counter("a_total", &[], Class::Logical).add(5);
        r1.counter("b_total", &[], Class::Logical).add(7);
        r1.counter("wall_total", &[], Class::Timing).add(999);
        r1.gauge("g", &[]).set(3.13);
        r1.histogram("h_ns", &[]).observe(12345);

        // Same logical values registered in the opposite order, with
        // different timing-class noise: identical digest.
        let r2 = Registry::new();
        r2.histogram("h_ns", &[]).observe(1);
        r2.counter("b_total", &[], Class::Logical).add(7);
        r2.counter("wall_total", &[], Class::Timing).add(1);
        r2.counter("a_total", &[], Class::Logical).add(5);
        assert_eq!(r1.determinism_digest(), r2.determinism_digest());

        // A logical value change must change the digest.
        r2.counter("a_total", &[], Class::Logical).inc();
        assert_ne!(r1.determinism_digest(), r2.determinism_digest());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("m", &[], Class::Logical);
        r.gauge("m", &[]);
    }
}
