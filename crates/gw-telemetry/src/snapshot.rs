//! The periodic snapshot ring: a bounded time-series of registry deltas.
//!
//! [`SnapshotRing::capture`] walks the registry, computes per-metric
//! deltas against the previous capture, and appends a [`Snapshot`] to a
//! bounded ring (oldest entries dropped on wraparound). The ring is what
//! the health detector consumes — *windows*, not lifetime totals, are
//! what make a slow node visible while the service keeps running — and
//! what the JSON exporter renders (`gw-telemetry-v1`).
//!
//! Capture runs on the service's existing pump thread; zero-job idle
//! intervals are captured like any other (all deltas zero) so liveness
//! of the plane itself is observable.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::{quantile_from_buckets, BUCKETS};
use crate::registry::{Cell, Class, Registry};

/// One counter sample in a snapshot.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Metric name (without labels).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Cumulative value at capture time.
    pub value: u64,
    /// Increase since the previous snapshot.
    pub delta: u64,
    /// Whether the counter is logical (digest-participating).
    pub deterministic: bool,
}

/// One gauge sample.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Value at capture time.
    pub value: f64,
}

/// One histogram summary.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Cumulative observation count.
    pub count: u64,
    /// Observations since the previous snapshot.
    pub delta_count: u64,
    /// Cumulative sum of observed values.
    pub sum: u64,
    /// Sum increase since the previous snapshot.
    pub delta_sum: u64,
    /// Estimated cumulative quantiles (log2-bucket interpolation).
    pub p50: f64,
    /// See [`HistogramSample::p50`].
    pub p90: f64,
    /// See [`HistogramSample::p50`].
    pub p99: f64,
}

impl HistogramSample {
    /// The label value for `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Mean of the observations inside this snapshot's window, if any.
    pub fn window_mean(&self) -> Option<f64> {
        (self.delta_count > 0).then(|| self.delta_sum as f64 / self.delta_count as f64)
    }
}

/// A point-in-time capture of the registry with deltas vs the previous
/// capture. Entries are sorted by canonical full name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Capture sequence number (1-based, monotone, survives wraparound).
    pub seq: u64,
    /// Capture time in milliseconds since the owning plane's epoch.
    pub at_ms: u64,
    /// Counter samples.
    pub counters: Vec<CounterSample>,
    /// Gauge samples.
    pub gauges: Vec<GaugeSample>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSample>,
    /// The registry's logical-counter digest at capture time.
    pub digest: String,
}

impl Snapshot {
    /// The pinned-key-order JSON rendering (`gw-telemetry-v1`).
    pub fn to_json(&self) -> String {
        crate::export::snapshot_json(self)
    }
}

#[derive(Debug, Default)]
struct RingState {
    entries: VecDeque<Arc<Snapshot>>,
    seq: u64,
    /// Previous cumulative values for delta computation, keyed by
    /// canonical full name: counters map to `value`, histograms to
    /// `(count, sum)`.
    prev_counters: HashMap<String, u64>,
    prev_histos: HashMap<String, (u64, u64)>,
}

/// Bounded ring of [`Snapshot`]s; see the module docs.
#[derive(Debug)]
pub struct SnapshotRing {
    capacity: usize,
    state: Mutex<RingState>,
}

impl SnapshotRing {
    /// A ring keeping the most recent `capacity` snapshots (min 1).
    pub fn new(capacity: usize) -> Self {
        SnapshotRing {
            capacity: capacity.max(1),
            state: Mutex::new(RingState::default()),
        }
    }

    /// Capture the registry now. Returns the new snapshot (also kept in
    /// the ring; the oldest entry is dropped once past capacity).
    pub fn capture(&self, registry: &Registry, at_ms: u64) -> Arc<Snapshot> {
        let mut st = self.state.lock();
        st.seq += 1;
        let mut snap = Snapshot {
            seq: st.seq,
            at_ms,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            digest: registry.determinism_digest(),
        };
        for (key, entry) in registry.entries() {
            match &entry.cell {
                Cell::Counter { cell, class } => {
                    let value = cell.load(std::sync::atomic::Ordering::Relaxed);
                    let prev = st.prev_counters.insert(key, value).unwrap_or(0);
                    snap.counters.push(CounterSample {
                        name: entry.name,
                        labels: entry.labels,
                        value,
                        delta: value.saturating_sub(prev),
                        deterministic: *class == Class::Logical,
                    });
                }
                Cell::Gauge(cell) => {
                    snap.gauges.push(GaugeSample {
                        name: entry.name,
                        labels: entry.labels,
                        value: f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed)),
                    });
                }
                Cell::Histogram(cell) => {
                    let buckets: [u64; BUCKETS] = cell.bucket_counts();
                    let count: u64 = buckets.iter().sum();
                    let sum = cell.sum();
                    let (pc, ps) = st.prev_histos.insert(key, (count, sum)).unwrap_or((0, 0));
                    snap.histograms.push(HistogramSample {
                        name: entry.name,
                        labels: entry.labels,
                        count,
                        delta_count: count.saturating_sub(pc),
                        sum,
                        delta_sum: sum.saturating_sub(ps),
                        p50: quantile_from_buckets(&buckets, 0.50),
                        p90: quantile_from_buckets(&buckets, 0.90),
                        p99: quantile_from_buckets(&buckets, 0.99),
                    });
                }
            }
        }
        let snap = Arc::new(snap);
        st.entries.push_back(Arc::clone(&snap));
        while st.entries.len() > self.capacity {
            st.entries.pop_front();
        }
        snap
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> Vec<Arc<Snapshot>> {
        self.state.lock().entries.iter().cloned().collect()
    }

    /// The most recent snapshot, if any capture has happened.
    pub fn latest(&self) -> Option<Arc<Snapshot>> {
        self.state.lock().entries.back().cloned()
    }

    /// Total captures so far (≥ retained length after wraparound).
    pub fn captures(&self) -> u64 {
        self.state.lock().seq
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_and_wraparound() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total", &[], Class::Logical);
        let h = reg.histogram("lat_ns", &[]);
        let ring = SnapshotRing::new(3);

        for i in 1..=5u64 {
            c.add(2);
            h.observe(100 * i);
            let s = ring.capture(&reg, i * 10);
            assert_eq!(s.seq, i);
            assert_eq!(s.counters[0].value, 2 * i);
            assert_eq!(s.counters[0].delta, 2, "per-window delta");
            assert_eq!(s.histograms[0].delta_count, 1);
        }
        let kept = ring.snapshots();
        assert_eq!(kept.len(), 3, "ring wrapped to capacity");
        let seqs: Vec<u64> = kept.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "oldest dropped, order kept");
        assert_eq!(ring.captures(), 5);
    }

    #[test]
    fn idle_captures_on_an_empty_registry_never_panic() {
        let reg = Registry::new();
        let ring = SnapshotRing::new(2);
        for i in 0..10 {
            let s = ring.capture(&reg, i);
            assert!(s.counters.is_empty());
            assert!(s.to_json().starts_with("{\"schema\":\"gw-telemetry-v1\""));
        }
        assert_eq!(ring.snapshots().len(), 2);
    }
}
