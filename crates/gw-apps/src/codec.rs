//! Fixed-width value encodings shared by the applications.
//!
//! MapReduce values travel as raw bytes; these helpers keep the encodings
//! explicit and tested. Counts are little-endian `u64`; float vectors are
//! little-endian `f32` sequences; numeric keys that must sort correctly as
//! bytes use big-endian.

/// Encode a `u64` count.
#[inline]
pub fn enc_u64(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Decode a `u64` count.
#[inline]
pub fn dec_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("u64 value must be 8 bytes"))
}

/// Encode a `u32` key in big-endian so byte order equals numeric order.
#[inline]
pub fn enc_key_u32(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

/// Decode a big-endian `u32` key.
#[inline]
pub fn dec_key_u32(bytes: &[u8]) -> u32 {
    u32::from_be_bytes(bytes.try_into().expect("u32 key must be 4 bytes"))
}

/// Append an `f32` slice in little-endian.
pub fn put_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode an `f32` slice.
pub fn get_f32s(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "f32 payload must be 4-byte aligned"
    );
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Read the i-th `f32` without allocating.
#[inline]
pub fn get_f32(bytes: &[u8], i: usize) -> f32 {
    f32::from_le_bytes(
        bytes[i * 4..i * 4 + 4]
            .try_into()
            .expect("f32 index in range"),
    )
}

/// Elementwise add `src` (f32s) into `dst` (f32s) in place.
pub fn add_f32s_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "vector length mismatch");
    for (d, s) in dst.chunks_exact_mut(4).zip(src.chunks_exact(4)) {
        let sum =
            f32::from_le_bytes(d.try_into().unwrap()) + f32::from_le_bytes(s.try_into().unwrap());
        d.copy_from_slice(&sum.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        assert_eq!(dec_u64(&enc_u64(0)), 0);
        assert_eq!(dec_u64(&enc_u64(u64::MAX)), u64::MAX);
        assert_eq!(dec_u64(&enc_u64(12345)), 12345);
    }

    #[test]
    fn u32_key_sorts_numerically() {
        let keys: Vec<[u8; 4]> = [5u32, 1, 300, 2, 70000]
            .iter()
            .map(|&v| enc_key_u32(v))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        let decoded: Vec<u32> = sorted.iter().map(|k| dec_key_u32(k)).collect();
        assert_eq!(decoded, vec![1, 2, 5, 300, 70000]);
    }

    #[test]
    fn f32_roundtrip() {
        let vals = [1.5f32, -2.25, 0.0, 1e10];
        let mut bytes = Vec::new();
        put_f32s(&mut bytes, &vals);
        assert_eq!(get_f32s(&bytes), vals);
        assert_eq!(get_f32(&bytes, 1), -2.25);
    }

    #[test]
    fn add_in_place() {
        let mut a = Vec::new();
        put_f32s(&mut a, &[1.0, 2.0, 3.0]);
        let mut b = Vec::new();
        put_f32s(&mut b, &[0.5, -2.0, 1.0]);
        add_f32s_in_place(&mut a, &b);
        assert_eq!(get_f32s(&a), vec![1.5, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_rejects_mismatched_lengths() {
        let mut a = vec![0u8; 8];
        add_f32s_in_place(&mut a, &[0u8; 4]);
    }
}
