//! Deterministic workload generators, substituting for the paper's
//! datasets (Wikipedia dumps, WikiBench traces, TeraGen output, generated
//! points and matrices) at configurable scale.
//!
//! Each generator reproduces the statistical shape the paper relies on:
//! WC's corpus "exhibits high repetition of a smaller number of words
//! beside a large number of sparse words" (Zipf), PVC's logs "are highly
//! sparse in that duplicate URLs are rare ... with a massive number of
//! keys", TeraSort keys are uniform random 10-byte strings with 90-byte
//! values, K-Means uses randomly generated centers and single-precision
//! points, and MatMul multiplies two dense square matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec;

/// A record list ready for `FileStoreExt::write_records`.
pub type Records = Vec<(Vec<u8>, Vec<u8>)>;

// ---------------------------------------------------------------------------
// Zipf sampling (implemented in-repo; rand 0.8 has no zipf distribution)
// ---------------------------------------------------------------------------

/// Zipf sampler over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the cumulative distribution for `n` ranks.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

// ---------------------------------------------------------------------------
// WordCount corpus
// ---------------------------------------------------------------------------

/// Parameters for the text corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of lines (records).
    pub lines: usize,
    /// Words per line.
    pub words_per_line: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent (≈1.0 for natural text).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            lines: 1000,
            words_per_line: 12,
            vocabulary: 5000,
            zipf_s: 1.05,
            seed: 42,
        }
    }
}

/// Generate a Zipf-worded text corpus; key = line number, value = line.
pub fn text_corpus(spec: &CorpusSpec) -> Records {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.vocabulary, spec.zipf_s);
    (0..spec.lines)
        .map(|i| {
            let mut line = String::new();
            for w in 0..spec.words_per_line {
                if w > 0 {
                    line.push(' ');
                }
                let rank = zipf.sample(&mut rng);
                line.push_str(&format!("word{rank:05}"));
            }
            (format!("{i:08}").into_bytes(), line.into_bytes())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Pageview logs
// ---------------------------------------------------------------------------

/// Parameters for the web-server log trace.
#[derive(Debug, Clone)]
pub struct LogSpec {
    /// Number of log entries.
    pub entries: usize,
    /// Number of distinct "hot" URLs that repeat.
    pub hot_urls: usize,
    /// Fraction of entries hitting hot URLs (the rest are unique —
    /// "duplicate URLs are rare", so keep this small).
    pub hot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LogSpec {
    fn default() -> Self {
        LogSpec {
            entries: 1000,
            hot_urls: 50,
            hot_fraction: 0.1,
            seed: 7,
        }
    }
}

/// Generate WikiBench-style log lines:
/// `counter timestamp url size status`; key = line number.
pub fn web_logs(spec: &LogSpec) -> Records {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.entries)
        .map(|i| {
            let url = if rng.gen_bool(spec.hot_fraction) {
                format!(
                    "http://en.wikipedia.org/wiki/Hot_{}",
                    rng.gen_range(0..spec.hot_urls)
                )
            } else {
                format!(
                    "http://en.wikipedia.org/wiki/Page_{}_{}",
                    i,
                    rng.gen::<u32>()
                )
            };
            let line = format!(
                "{i} {}.{:03} {url} {} 200",
                1_234_567_000u64 + i as u64,
                rng.gen_range(0..1000),
                rng.gen_range(200..100_000)
            );
            (format!("{i:08}").into_bytes(), line.into_bytes())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// TeraGen
// ---------------------------------------------------------------------------

/// Generate TeraGen-style records: 10-byte random keys, 90-byte values.
pub fn teragen(records: usize, seed: u64) -> Records {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..records)
        .map(|i| {
            let mut key = vec![0u8; 10];
            rng.fill(key.as_mut_slice());
            let mut value = vec![0u8; 90];
            // TeraGen values carry the record id then filler.
            value[..8].copy_from_slice(&(i as u64).to_be_bytes());
            rng.fill(&mut value[8..]);
            (key, value)
        })
        .collect()
}

/// Sample `n` keys from a record set (for TeraSort's range partitioner).
pub fn sample_keys(records: &Records, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    if records.is_empty() {
        return Vec::new();
    }
    (0..n)
        .map(|_| records[rng.gen_range(0..records.len())].0.clone())
        .collect()
}

// ---------------------------------------------------------------------------
// K-Means
// ---------------------------------------------------------------------------

/// Parameters for the K-Means point cloud.
#[derive(Debug, Clone)]
pub struct KmeansSpec {
    /// Number of observations.
    pub points: usize,
    /// Vector dimensionality.
    pub dims: usize,
    /// Number of centers.
    pub centers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KmeansSpec {
    fn default() -> Self {
        KmeansSpec {
            points: 4096,
            dims: 4,
            centers: 16,
            seed: 11,
        }
    }
}

/// Generate uniform random points; key = point id (BE), value = f32 coords.
pub fn kmeans_points(spec: &KmeansSpec) -> Records {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.points)
        .map(|i| {
            let coords: Vec<f32> = (0..spec.dims)
                .map(|_| rng.gen_range(-100.0..100.0))
                .collect();
            let mut value = Vec::with_capacity(spec.dims * 4);
            codec::put_f32s(&mut value, &coords);
            (codec::enc_key_u32(i as u32).to_vec(), value)
        })
        .collect()
}

/// Generate points drawn around `centers` well-separated true centroids
/// (Gaussian-ish noise via the sum of three uniforms). Useful for
/// convergence tests: K-Means should recover the true centroids.
pub fn clustered_points(spec: &KmeansSpec, spread: f32) -> (Records, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // True centroids on a coarse grid so they are well separated.
    let truth: Vec<f32> = (0..spec.centers * spec.dims)
        .map(|i| ((i * 37 + 11) % 19) as f32 * 40.0 - 360.0)
        .collect();
    let records = (0..spec.points)
        .map(|i| {
            let c = rng.gen_range(0..spec.centers);
            let coords: Vec<f32> = (0..spec.dims)
                .map(|d| {
                    let noise: f32 =
                        (0..3).map(|_| rng.gen_range(-spread..spread)).sum::<f32>() / 3.0;
                    truth[c * spec.dims + d] + noise
                })
                .collect();
            let mut value = Vec::with_capacity(spec.dims * 4);
            codec::put_f32s(&mut value, &coords);
            (codec::enc_key_u32(i as u32).to_vec(), value)
        })
        .collect();
    (records, truth)
}

/// Generate the initial centers (flattened `centers × dims` f32 matrix).
pub fn kmeans_centers(spec: &KmeansSpec) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(0x9E3779B9));
    (0..spec.centers * spec.dims)
        .map(|_| rng.gen_range(-100.0..100.0))
        .collect()
}

// ---------------------------------------------------------------------------
// Matrix multiply
// ---------------------------------------------------------------------------

/// Parameters for the square matmul workload.
#[derive(Debug, Clone)]
pub struct MatmulSpec {
    /// Matrix dimension `n` (matrices are `n × n`).
    pub n: usize,
    /// Tile dimension (must divide `n`).
    pub tile: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MatmulSpec {
    fn default() -> Self {
        MatmulSpec {
            n: 64,
            tile: 16,
            seed: 23,
        }
    }
}

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Dimension.
    pub n: usize,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Random matrix.
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        Matrix {
            n,
            data: (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }

    /// Extract tile `(ti, tj)` of size `t × t` (row-major).
    pub fn tile(&self, ti: usize, tj: usize, t: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(t * t);
        for r in 0..t {
            let row = ti * t + r;
            let start = row * self.n + tj * t;
            out.extend_from_slice(&self.data[start..start + t]);
        }
        out
    }
}

/// The generated matmul workload: two matrices plus the joined tile-pair
/// record set the map phase consumes.
///
/// Each record is one `(i, k, j)` tile pair: key = `(i BE, j BE, k BE)`,
/// value = `A[i,k] ++ B[k,j]` (each `tile × tile` f32s). The generator
/// performs the join that a real deployment's loader would (GPMR likewise
/// generates its matmul input on the fly).
#[derive(Debug, Clone)]
pub struct MatmulWorkload {
    /// Left operand.
    pub a: Matrix,
    /// Right operand.
    pub b: Matrix,
    /// Tile-pair records.
    pub records: Records,
    /// Tiles per side.
    pub tiles: usize,
    /// Tile dimension.
    pub tile: usize,
}

/// Generate a matmul workload.
pub fn matmul_workload(spec: &MatmulSpec) -> MatmulWorkload {
    assert!(spec.n.is_multiple_of(spec.tile), "tile must divide n");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let a = Matrix::random(spec.n, &mut rng);
    let b = Matrix::random(spec.n, &mut rng);
    let tiles = spec.n / spec.tile;
    let mut records = Vec::with_capacity(tiles * tiles * tiles);
    for i in 0..tiles {
        for j in 0..tiles {
            for k in 0..tiles {
                let mut key = Vec::with_capacity(12);
                key.extend_from_slice(&(i as u32).to_be_bytes());
                key.extend_from_slice(&(j as u32).to_be_bytes());
                key.extend_from_slice(&(k as u32).to_be_bytes());
                let mut value = Vec::with_capacity(spec.tile * spec.tile * 8);
                codec::put_f32s(&mut value, &a.tile(i, k, spec.tile));
                codec::put_f32s(&mut value, &b.tile(k, j, spec.tile));
                records.push((key, value));
            }
        }
    }
    MatmulWorkload {
        a,
        b,
        records,
        tiles,
        tile: spec.tile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Top-10 of 1000 ranks should take ≈39% of mass at s=1.
        assert!(low > n / 4, "zipf not skewed: {low}/{n} in top 10");
    }

    #[test]
    fn corpus_is_deterministic_and_repetitive() {
        let spec = CorpusSpec::default();
        let a = text_corpus(&spec);
        let b = text_corpus(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.lines);
        // Count distinct words: must be far fewer than total words.
        let mut words = std::collections::HashSet::new();
        let mut total = 0usize;
        for (_, line) in &a {
            for w in line.split(|&c| c == b' ') {
                words.insert(w.to_vec());
                total += 1;
            }
        }
        assert!(words.len() * 3 < total, "corpus should repeat words");
    }

    #[test]
    fn web_logs_are_mostly_sparse() {
        let spec = LogSpec {
            entries: 2000,
            ..Default::default()
        };
        let logs = web_logs(&spec);
        let mut urls = std::collections::HashSet::new();
        for (_, line) in &logs {
            let url = line.split(|&c| c == b' ').nth(2).unwrap();
            urls.insert(url.to_vec());
        }
        assert!(
            urls.len() > spec.entries / 2,
            "most URLs should be unique: {} of {}",
            urls.len(),
            spec.entries
        );
    }

    #[test]
    fn teragen_has_fixed_widths() {
        let recs = teragen(100, 3);
        assert_eq!(recs.len(), 100);
        for (k, v) in &recs {
            assert_eq!(k.len(), 10);
            assert_eq!(v.len(), 90);
        }
        // Keys should be (near-)unique.
        let mut keys: Vec<_> = recs.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn kmeans_points_match_spec() {
        let spec = KmeansSpec::default();
        let pts = kmeans_points(&spec);
        assert_eq!(pts.len(), spec.points);
        assert!(pts.iter().all(|(_, v)| v.len() == spec.dims * 4));
        let centers = kmeans_centers(&spec);
        assert_eq!(centers.len(), spec.centers * spec.dims);
    }

    #[test]
    fn matmul_tiles_reassemble() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::random(8, &mut rng);
        let t = m.tile(1, 0, 4);
        assert_eq!(t.len(), 16);
        assert_eq!(t[0], m.at(4, 0));
        assert_eq!(t[15], m.at(7, 3));
    }

    #[test]
    fn matmul_workload_has_t_cubed_records() {
        let spec = MatmulSpec {
            n: 16,
            tile: 4,
            seed: 1,
        };
        let w = matmul_workload(&spec);
        assert_eq!(w.tiles, 4);
        assert_eq!(w.records.len(), 64);
        for (k, v) in &w.records {
            assert_eq!(k.len(), 12);
            assert_eq!(v.len(), 2 * 16 * 4);
        }
    }

    #[test]
    #[should_panic(expected = "tile must divide n")]
    fn matmul_rejects_nondividing_tile() {
        matmul_workload(&MatmulSpec {
            n: 10,
            tile: 3,
            seed: 0,
        });
    }

    #[test]
    fn clustered_points_cluster_around_truth() {
        let spec = KmeansSpec {
            points: 500,
            dims: 3,
            centers: 4,
            seed: 9,
        };
        let spread = 2.0;
        let (pts, truth) = clustered_points(&spec, spread);
        assert_eq!(pts.len(), 500);
        assert_eq!(truth.len(), 12);
        // Every point lies within `spread` of SOME true centroid.
        for (_, v) in &pts {
            let p = codec::get_f32s(v);
            let near_any = (0..spec.centers).any(|c| {
                (0..spec.dims).all(|d| (p[d] - truth[c * spec.dims + d]).abs() <= spread + 1e-3)
            });
            assert!(near_any, "point {p:?} far from every centroid");
        }
        // Centroids are well separated relative to the spread.
        for a in 0..spec.centers {
            for b in (a + 1)..spec.centers {
                let d2: f32 = (0..spec.dims)
                    .map(|d| (truth[a * spec.dims + d] - truth[b * spec.dims + d]).powi(2))
                    .sum();
                assert!(d2.sqrt() > 4.0 * spread, "centroids {a},{b} too close");
            }
        }
    }

    #[test]
    fn sample_keys_draws_from_records() {
        let recs = teragen(50, 9);
        let samples = sample_keys(&recs, 10, 1);
        assert_eq!(samples.len(), 10);
        for s in &samples {
            assert!(recs.iter().any(|(k, _)| k == s));
        }
    }
}
