//! K-Means clustering (KM) — "partitions observations (vector points) in a
//! multi-dimensional vector space, by grouping close-by points together.
//! KM is a compute-intensive application and its complexity is a function
//! of the number of dimensions, centers and observations."
//!
//! "KM is an iterative algorithm, but our implementations perform just one
//! iteration since this shows the performance well for all frameworks."
//! One iteration: assign each point to its nearest center (map, the hot
//! kernel: `k × d` distance evaluations per point), then average each
//! center's members (combine/reduce) to produce the new centers.
//!
//! Intermediate value encoding: `count (u64 LE) ++ sum-vector (d × f32 LE)`
//! so that combining is a count add plus vector add — the aggregation
//! pattern that makes KM's intermediate volume tiny (one record per center
//! after combining, Table III).

use std::sync::Arc;

use gw_core::{Combiner, Emit, GwApp};

use crate::codec::{self, dec_u64, enc_key_u32, enc_u64};

/// Adds partial `(count, sum-vector)` accumulators.
pub struct CentroidCombiner;

impl Combiner for CentroidCombiner {
    fn combine(&self, _key: &[u8], acc: &mut Vec<u8>, value: &[u8]) {
        let count = dec_u64(&acc[..8]) + dec_u64(&value[..8]);
        acc[..8].copy_from_slice(&enc_u64(count));
        codec::add_f32s_in_place(&mut acc[8..], &value[8..]);
    }
}

/// The K-Means application (one iteration).
pub struct KMeans {
    /// Flattened `k × dims` center matrix.
    centers: Vec<f32>,
    k: usize,
    dims: usize,
    use_combiner: bool,
}

impl KMeans {
    /// Build from the current centers.
    pub fn new(centers: Vec<f32>, k: usize, dims: usize) -> Self {
        assert_eq!(centers.len(), k * dims, "centers must be k × dims");
        assert!(k > 0 && dims > 0);
        KMeans {
            centers,
            k,
            dims,
            use_combiner: true,
        }
    }

    /// Disable the combiner (paper configuration (ii)).
    pub fn without_combiner(mut self) -> Self {
        self.use_combiner = false;
        self
    }

    /// Number of centers.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Index of the nearest center to `point` (squared distance, ties to
    /// the lower index).
    #[inline]
    pub fn nearest_center(&self, point: &[f32]) -> usize {
        debug_assert_eq!(point.len(), self.dims);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..self.k {
            let center = &self.centers[c * self.dims..(c + 1) * self.dims];
            let mut d = 0.0f32;
            for (p, q) in point.iter().zip(center) {
                let diff = p - q;
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }
}

impl GwApp for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
        let point = codec::get_f32s(value);
        let nearest = self.nearest_center(&point) as u32;
        // Emit (center, count=1 ++ point) — ready for additive combining.
        let mut payload = Vec::with_capacity(8 + value.len());
        payload.extend_from_slice(&enc_u64(1));
        payload.extend_from_slice(value);
        emit.emit(&enc_key_u32(nearest), &payload);
    }

    fn combiner(&self) -> Option<Arc<dyn Combiner>> {
        self.use_combiner
            .then(|| Arc::new(CentroidCombiner) as Arc<dyn Combiner>)
    }

    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        if state.is_empty() {
            state.extend_from_slice(&enc_u64(0));
            state.resize(8 + self.dims * 4, 0);
        }
        for v in values {
            let count = dec_u64(&state[..8]) + dec_u64(&v[..8]);
            state[..8].copy_from_slice(&enc_u64(count));
            codec::add_f32s_in_place(&mut state[8..], &v[8..]);
        }
        if last {
            let count = dec_u64(&state[..8]);
            let sums = codec::get_f32s(&state[8..]);
            let new_center: Vec<f32> = if count == 0 {
                sums
            } else {
                sums.iter().map(|s| s / count as f32).collect()
            };
            let mut out = Vec::with_capacity(self.dims * 4);
            codec::put_f32s(&mut out, &new_center);
            emit.emit(key, &out);
        }
    }

    /// `(count, sum-vector)` accumulation is associative: enable parallel
    /// single-key reduction — the paper singles KM out as the kind of
    /// compute-intensive app "that can benefit from parallel reduction".
    fn merge_states(&self, acc: &mut Vec<u8>, other: &[u8]) -> bool {
        if other.is_empty() {
            return true;
        }
        if acc.is_empty() {
            acc.extend_from_slice(other);
            return true;
        }
        let count = dec_u64(&acc[..8]) + dec_u64(&other[..8]);
        acc[..8].copy_from_slice(&enc_u64(count));
        codec::add_f32s_in_place(&mut acc[8..], &other[8..]);
        true
    }
}

/// Outcome of an iterative K-Means run.
#[derive(Debug, Clone)]
pub struct KMeansRun {
    /// Final centers (flattened `k x dims`).
    pub centers: Vec<f32>,
    /// Total absolute center movement per iteration (monotone decrease is
    /// the convergence signal).
    pub movements: Vec<f32>,
}

/// Drive `iterations` K-Means iterations on a cluster: each iteration is a
/// full MapReduce job whose output centers seed the next ("KM is an
/// iterative algorithm"; the paper benchmarks one iteration, this helper
/// generalises it). `cfg.input` must already hold the point set; each
/// iteration writes `"{cfg.output}-{i}"`.
pub fn run_iterations(
    cluster: &gw_core::Cluster,
    cfg: &gw_core::JobConfig,
    mut centers: Vec<f32>,
    k: usize,
    dims: usize,
    iterations: usize,
) -> Result<KMeansRun, gw_core::EngineError> {
    let mut movements = Vec::with_capacity(iterations);
    for iter in 0..iterations {
        let mut iter_cfg = cfg.clone();
        iter_cfg.output = format!("{}-{iter}", cfg.output);
        let app = Arc::new(KMeans::new(centers.clone(), k, dims));
        let report = cluster.run(app, &iter_cfg)?;
        let out = gw_core::cluster::read_job_output(cluster.store(), &report)?;
        let mut moved = 0.0f32;
        for (key, v) in out {
            let c = codec::dec_key_u32(&key) as usize;
            let new = codec::get_f32s(&v);
            for (d, nv) in new.iter().enumerate() {
                moved += (centers[c * dims + d] - nv).abs();
                centers[c * dims + d] = *nv;
            }
        }
        movements.push(moved);
    }
    Ok(KMeansRun { centers, movements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_core::collect::{for_each_record, BufferPoolCollector};

    fn app2d() -> KMeans {
        // Two centers: (0,0) and (10,10).
        KMeans::new(vec![0.0, 0.0, 10.0, 10.0], 2, 2)
    }

    #[test]
    fn nearest_center_picks_closest() {
        let app = app2d();
        assert_eq!(app.nearest_center(&[1.0, 1.0]), 0);
        assert_eq!(app.nearest_center(&[9.0, 9.0]), 1);
        // Equidistant ties go to the lower index.
        assert_eq!(app.nearest_center(&[5.0, 5.0]), 0);
    }

    #[test]
    fn map_emits_assignment_with_count() {
        let app = app2d();
        let c = BufferPoolCollector::new(4096, 1);
        let mut point = Vec::new();
        codec::put_f32s(&mut point, &[8.0, 9.0]);
        app.map(b"0", &point, &Emit::new(&c));
        let mut out = Vec::new();
        for_each_record(&c, &mut |k, v| out.push((k.to_vec(), v.to_vec())));
        assert_eq!(out.len(), 1);
        assert_eq!(codec::dec_key_u32(&out[0].0), 1);
        assert_eq!(dec_u64(&out[0].1[..8]), 1);
        assert_eq!(codec::get_f32s(&out[0].1[8..]), vec![8.0, 9.0]);
    }

    #[test]
    fn combiner_accumulates_counts_and_sums() {
        let comb = CentroidCombiner;
        let mut acc = Vec::new();
        acc.extend_from_slice(&enc_u64(1));
        codec::put_f32s(&mut acc, &[1.0, 2.0]);
        let mut v = Vec::new();
        v.extend_from_slice(&enc_u64(2));
        codec::put_f32s(&mut v, &[3.0, 4.0]);
        comb.combine(b"k", &mut acc, &v);
        assert_eq!(dec_u64(&acc[..8]), 3);
        assert_eq!(codec::get_f32s(&acc[8..]), vec![4.0, 6.0]);
    }

    #[test]
    fn reduce_averages_members() {
        let app = app2d();
        let c = BufferPoolCollector::new(4096, 1);
        let emit = Emit::new(&c);
        let mut state = Vec::new();
        let mk = |count: u64, p: [f32; 2]| {
            let mut v = Vec::new();
            v.extend_from_slice(&enc_u64(count));
            codec::put_f32s(&mut v, &p);
            v
        };
        let a = mk(1, [2.0, 4.0]);
        let b = mk(1, [4.0, 8.0]);
        // Split across two chunks to exercise scratch state.
        app.reduce(&enc_key_u32(0), &[&a], &mut state, false, &emit);
        app.reduce(&enc_key_u32(0), &[&b], &mut state, true, &emit);
        let mut out = Vec::new();
        for_each_record(&c, &mut |k, v| out.push((k.to_vec(), codec::get_f32s(v))));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "centers must be k × dims")]
    fn wrong_center_shape_is_rejected() {
        KMeans::new(vec![0.0; 5], 2, 2);
    }
}
