//! Pageview Count (PVC) — "processes the logs of web servers and counts
//! the frequency of URL occurrences. It is an I/O-bound application as its
//! kernels perform little work per input record."
//!
//! "The logs are highly sparse in that duplicate URLs are rare, so the
//! volume of intermediate data is large, with a massive number of keys" —
//! the stress test for the partitioning stage and intermediate-data path.

use std::sync::Arc;

use gw_core::{Combiner, Emit, GwApp};

use crate::codec::{dec_u64, enc_u64};
use crate::wordcount::CountSumCombiner;

/// The Pageview Count application.
pub struct PageviewCount {
    use_combiner: bool,
}

impl PageviewCount {
    /// PVC with the (rarely useful, URLs being sparse) combiner enabled.
    pub fn new() -> Self {
        PageviewCount { use_combiner: true }
    }

    /// PVC without a combiner.
    pub fn without_combiner() -> Self {
        PageviewCount {
            use_combiner: false,
        }
    }
}

impl Default for PageviewCount {
    fn default() -> Self {
        Self::new()
    }
}

/// Extract the URL field from a WikiBench-style log line
/// (`counter timestamp url size status`). Returns `None` for malformed
/// lines, which the map function skips (real traces contain junk).
#[inline]
pub fn extract_url(line: &[u8]) -> Option<&[u8]> {
    line.split(|&b| b == b' ')
        .filter(|f| !f.is_empty())
        .nth(2)
        .filter(|url| url.starts_with(b"http"))
}

impl GwApp for PageviewCount {
    fn name(&self) -> &'static str {
        "pageview-count"
    }

    fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
        if let Some(url) = extract_url(value) {
            emit.emit(url, &enc_u64(1));
        }
    }

    fn combiner(&self) -> Option<Arc<dyn Combiner>> {
        self.use_combiner
            .then(|| Arc::new(CountSumCombiner) as Arc<dyn Combiner>)
    }

    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        if state.is_empty() {
            state.extend_from_slice(&enc_u64(0));
        }
        let mut acc = dec_u64(state);
        for v in values {
            acc += dec_u64(v);
        }
        state.copy_from_slice(&enc_u64(acc));
        if last {
            emit.emit(key, &enc_u64(acc));
        }
    }

    /// Count summation is associative (see [`crate::wordcount`]).
    fn merge_states(&self, acc: &mut Vec<u8>, other: &[u8]) -> bool {
        if other.is_empty() {
            return true;
        }
        if acc.is_empty() {
            acc.extend_from_slice(other);
            return true;
        }
        let sum = dec_u64(acc) + dec_u64(other);
        acc.copy_from_slice(&enc_u64(sum));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_core::collect::{for_each_record, BufferPoolCollector, Collector as _};

    #[test]
    fn url_extraction() {
        assert_eq!(
            extract_url(b"17 1234567.001 http://en.wikipedia.org/wiki/X 1234 200"),
            Some(b"http://en.wikipedia.org/wiki/X".as_slice())
        );
        assert_eq!(extract_url(b"malformed line"), None);
        assert_eq!(extract_url(b"1 2 notaurl 3 200"), None);
        assert_eq!(extract_url(b""), None);
    }

    #[test]
    fn map_skips_malformed_lines() {
        let app = PageviewCount::new();
        let c = BufferPoolCollector::new(4096, 1);
        let emit = Emit::new(&c);
        app.map(b"0", b"1 2 http://a/x 10 200", &emit);
        app.map(b"1", b"garbage", &emit);
        assert_eq!(c.records(), 1);
        let mut out = Vec::new();
        for_each_record(&c, &mut |k, _| out.push(k.to_vec()));
        assert_eq!(out, vec![b"http://a/x".to_vec()]);
    }

    #[test]
    fn reduce_counts_views() {
        let app = PageviewCount::new();
        let c = BufferPoolCollector::new(4096, 1);
        let emit = Emit::new(&c);
        let mut state = Vec::new();
        let v = enc_u64(1);
        app.reduce(b"http://a", &[&v, &v, &v], &mut state, true, &emit);
        let mut out = Vec::new();
        for_each_record(&c, &mut |k, v| out.push((k.to_vec(), dec_u64(v))));
        assert_eq!(out, vec![(b"http://a".to_vec(), 3)]);
    }
}
