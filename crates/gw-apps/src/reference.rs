//! Sequential reference implementations.
//!
//! Each computes, straight from the raw input record set, exactly what the
//! corresponding Glasswing job must output — used by the integration tests
//! to verify the engine "output ... to be identical and correct", as the
//! paper verified Glasswing against Hadoop.

use std::collections::BTreeMap;

use crate::codec;
use crate::kmeans::KMeans;

use crate::pageview::extract_url;
use crate::wordcount::for_each_word;
use crate::workloads::{Matrix, Records};

/// Reference word counts, sorted by word.
pub fn wordcount(records: &Records) -> Vec<(Vec<u8>, u64)> {
    let mut counts: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (_, line) in records {
        for_each_word(line, |w| *counts.entry(w.to_vec()).or_insert(0) += 1);
    }
    counts.into_iter().collect()
}

/// Reference URL counts, sorted by URL.
pub fn pageviews(records: &Records) -> Vec<(Vec<u8>, u64)> {
    let mut counts: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (_, line) in records {
        if let Some(url) = extract_url(line) {
            *counts.entry(url.to_vec()).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Reference TeraSort: the records sorted by `(key, value)`.
pub fn terasort(records: &Records) -> Records {
    let mut sorted = records.clone();
    sorted.sort();
    sorted
}

/// Reference K-Means single iteration: new centers (flattened `k × dims`).
/// Centers with no members keep a zero vector, matching the job's output
/// absence (the job emits nothing for unassigned centers, so callers
/// compare per-center).
pub fn kmeans_iteration(records: &Records, app: &KMeans) -> Vec<(u32, Vec<f32>)> {
    let dims = app.dims();
    let mut sums: BTreeMap<u32, (u64, Vec<f32>)> = BTreeMap::new();
    for (_, value) in records {
        let point = codec::get_f32s(value);
        let c = app.nearest_center(&point) as u32;
        let entry = sums.entry(c).or_insert_with(|| (0, vec![0.0; dims]));
        entry.0 += 1;
        for (s, p) in entry.1.iter_mut().zip(&point) {
            *s += p;
        }
    }
    sums.into_iter()
        .map(|(c, (n, sum))| (c, sum.iter().map(|s| s / n as f32).collect()))
        .collect()
}

/// Reference dense matmul: `C = A × B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n, b.n);
    let n = a.n;
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a.at(i, k);
            for j in 0..n {
                c[i * n + j] += aik * b.at(k, j);
            }
        }
    }
    Matrix { n, data: c }
}

/// Assemble a tile-keyed result set into a dense matrix (for comparing the
/// MM job output with [`matmul`]). Keys are `(i BE, j BE)`.
pub fn assemble_tiles(tiles: &[(Vec<u8>, Vec<u8>)], n: usize, t: usize) -> Matrix {
    let mut data = vec![0.0f32; n * n];
    for (key, value) in tiles {
        assert_eq!(key.len(), 8, "result key must be (i, j)");
        let ti = u32::from_be_bytes(key[..4].try_into().unwrap()) as usize;
        let tj = u32::from_be_bytes(key[4..].try_into().unwrap()) as usize;
        let tile = codec::get_f32s(value);
        assert_eq!(tile.len(), t * t);
        for r in 0..t {
            for c in 0..t {
                data[(ti * t + r) * n + tj * t + c] = tile[r * t + c];
            }
        }
    }
    Matrix { n, data }
}

/// Maximum absolute elementwise difference between two matrices.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.n, b.n);
    a.data
        .iter()
        .zip(&b.data)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::MatMul;
    use crate::workloads::{self, CorpusSpec, KmeansSpec, LogSpec, MatmulSpec};

    #[test]
    fn wordcount_counts_total_words() {
        let records = vec![
            (b"0".to_vec(), b"a b a".to_vec()),
            (b"1".to_vec(), b"b c".to_vec()),
        ];
        let counts = wordcount(&records);
        assert_eq!(
            counts,
            vec![(b"a".to_vec(), 2), (b"b".to_vec(), 2), (b"c".to_vec(), 1)]
        );
    }

    #[test]
    fn pageview_totals_match_entries() {
        let spec = LogSpec::default();
        let logs = workloads::web_logs(&spec);
        let counts = pageviews(&logs);
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total as usize, spec.entries);
    }

    #[test]
    fn terasort_reference_is_sorted() {
        let recs = workloads::teragen(200, 1);
        let sorted = terasort(&recs);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted.len(), recs.len());
    }

    #[test]
    fn kmeans_centers_are_member_means() {
        let spec = KmeansSpec {
            points: 100,
            dims: 2,
            centers: 3,
            seed: 2,
        };
        let pts = workloads::kmeans_points(&spec);
        let app = KMeans::new(workloads::kmeans_centers(&spec), 3, 2);
        let new_centers = kmeans_iteration(&pts, &app);
        // Total membership must equal the point count.
        assert!(!new_centers.is_empty());
        // Each new center must lie within the data range.
        for (_, c) in &new_centers {
            for v in c {
                assert!(*v >= -100.0 && *v <= 100.0);
            }
        }
    }

    #[test]
    fn matmul_reference_and_tile_pipeline_agree() {
        let spec = MatmulSpec {
            n: 16,
            tile: 4,
            seed: 3,
        };
        let w = workloads::matmul_workload(&spec);
        let expect = matmul(&w.a, &w.b);
        // Compute the product through the tile records (as the MM job
        // would) and compare.
        let mut partials: BTreeMap<Vec<u8>, Vec<f32>> = BTreeMap::new();
        for (key, value) in &w.records {
            let t = spec.tile;
            let a = codec::get_f32s(&value[..t * t * 4]);
            let b = codec::get_f32s(&value[t * t * 4..]);
            let p = MatMul::tile_product(&a, &b, t);
            let entry = partials
                .entry(key[..8].to_vec())
                .or_insert_with(|| vec![0.0; t * t]);
            for (e, v) in entry.iter_mut().zip(&p) {
                *e += v;
            }
        }
        let tiles: Vec<(Vec<u8>, Vec<u8>)> = partials
            .into_iter()
            .map(|(k, v)| {
                let mut bytes = Vec::new();
                codec::put_f32s(&mut bytes, &v);
                (k, bytes)
            })
            .collect();
        let got = assemble_tiles(&tiles, spec.n, spec.tile);
        assert!(max_abs_diff(&expect, &got) < 1e-3);
    }

    #[test]
    fn corpus_reference_is_deterministic() {
        let spec = CorpusSpec {
            lines: 50,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        assert_eq!(wordcount(&recs), wordcount(&recs));
    }
}
