//! WordCount (WC) — "counts the frequency of word occurrences in a group
//! of input files. WC is commonly used in data mining."
//!
//! I/O-bound with moderate kernel work; its corpus "exhibits high
//! repetition of a smaller number of words beside a large number of sparse
//! words", which makes WC the paper's probe for hash-table contention vs.
//! simple output collection (Table II).

use std::sync::Arc;

use gw_core::{Combiner, Emit, GwApp};

use crate::codec::{dec_u64, enc_u64};

/// Sums little-endian `u64` counts in place.
pub struct CountSumCombiner;

impl Combiner for CountSumCombiner {
    fn combine(&self, _key: &[u8], acc: &mut Vec<u8>, value: &[u8]) {
        let sum = dec_u64(acc) + dec_u64(value);
        acc.copy_from_slice(&enc_u64(sum));
    }
}

/// The WordCount application.
pub struct WordCount {
    use_combiner: bool,
}

impl WordCount {
    /// WC with the combiner enabled (the paper's configuration (i)).
    pub fn new() -> Self {
        WordCount { use_combiner: true }
    }

    /// WC without a combiner (configurations (ii)/(iii)).
    pub fn without_combiner() -> Self {
        WordCount {
            use_combiner: false,
        }
    }
}

impl Default for WordCount {
    fn default() -> Self {
        Self::new()
    }
}

/// Split a byte line into words (ASCII whitespace-separated, punctuation
/// trimmed), invoking `f` per word.
#[inline]
pub fn for_each_word(line: &[u8], mut f: impl FnMut(&[u8])) {
    for raw in line.split(|&b| b.is_ascii_whitespace()) {
        // Trim leading/trailing non-alphanumerics (wiki markup noise).
        let start = raw.iter().position(|b| b.is_ascii_alphanumeric());
        let Some(start) = start else { continue };
        let end = raw.iter().rposition(|b| b.is_ascii_alphanumeric()).unwrap() + 1;
        f(&raw[start..end]);
    }
}

impl GwApp for WordCount {
    fn name(&self) -> &'static str {
        "wordcount"
    }

    fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
        for_each_word(value, |word| emit.emit(word, &enc_u64(1)));
    }

    fn combiner(&self) -> Option<Arc<dyn Combiner>> {
        self.use_combiner
            .then(|| Arc::new(CountSumCombiner) as Arc<dyn Combiner>)
    }

    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        if state.is_empty() {
            state.extend_from_slice(&enc_u64(0));
        }
        let mut acc = dec_u64(state);
        for v in values {
            acc += dec_u64(v);
        }
        state.copy_from_slice(&enc_u64(acc));
        if last {
            emit.emit(key, &enc_u64(acc));
        }
    }

    /// Count summation is associative: enable parallel single-key
    /// reduction. Empty buffers act as zero (the engine's probe contract).
    fn merge_states(&self, acc: &mut Vec<u8>, other: &[u8]) -> bool {
        if other.is_empty() {
            return true;
        }
        if acc.is_empty() {
            acc.extend_from_slice(other);
            return true;
        }
        let sum = dec_u64(acc) + dec_u64(other);
        acc.copy_from_slice(&enc_u64(sum));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_core::collect::{for_each_record, BufferPoolCollector, Collector as _};

    #[test]
    fn word_splitting_trims_markup() {
        let mut words = Vec::new();
        for_each_word(b"  [[Hello]], world!  ==heading== x", |w| {
            words.push(w.to_vec())
        });
        assert_eq!(
            words,
            vec![
                b"Hello".to_vec(),
                b"world".to_vec(),
                b"heading".to_vec(),
                b"x".to_vec()
            ]
        );
    }

    #[test]
    fn map_emits_one_per_word() {
        let app = WordCount::new();
        let c = BufferPoolCollector::new(4096, 1);
        app.map(b"0", b"a b a", &Emit::new(&c));
        let mut out = Vec::new();
        for_each_record(&c, &mut |k, v| out.push((k.to_vec(), dec_u64(v))));
        out.sort();
        assert_eq!(
            out,
            vec![(b"a".to_vec(), 1), (b"a".to_vec(), 1), (b"b".to_vec(), 1)]
        );
    }

    #[test]
    fn reduce_sums_across_chunks() {
        let app = WordCount::new();
        let c = BufferPoolCollector::new(4096, 1);
        let emit = Emit::new(&c);
        let mut state = Vec::new();
        let ones = [enc_u64(1); 3];
        let refs: Vec<&[u8]> = ones.iter().map(|v| v.as_slice()).collect();
        app.reduce(b"w", &refs, &mut state, false, &emit);
        assert_eq!(c.records(), 0, "must not emit before the last chunk");
        app.reduce(b"w", &refs[..2], &mut state, true, &emit);
        let mut out = Vec::new();
        for_each_record(&c, &mut |k, v| out.push((k.to_vec(), dec_u64(v))));
        assert_eq!(out, vec![(b"w".to_vec(), 5)]);
    }

    #[test]
    fn combiner_presence_follows_constructor() {
        assert!(WordCount::new().combiner().is_some());
        assert!(WordCount::without_combiner().combiner().is_none());
    }
}
