//! TeraSort (TS) — "one of the most data-intensive MapReduce applications
//! ... sorts a set of randomly generated 10-byte keys accompanied with
//! 90-byte values. However, TS requires the output of the job to be
//! totally ordered across all partitions."
//!
//! "In order to guarantee total order of the job's output, the input data
//! set is sampled in an attempt to estimate the spread of keys.
//! Consequently, the job's map function uses the sampled data to place
//! each key in the appropriate output partition. Furthermore, each
//! partition of keys is sorted independently by the framework ... TS does
//! not require a reduce function since its output is fully processed by
//! the end of the intermediate data shuffle."
//!
//! This app therefore overrides [`GwApp::partition`] with a sampled
//! range partitioner and sets `has_reduce = false`; the identity map plus
//! the framework's sort/merge machinery produce the sorted output.

use gw_core::{Emit, GwApp};

/// Sampled range partitioner: `boundaries[i]` is the smallest key of
/// partition `i + 1`.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    boundaries: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Build boundaries for `partitions` partitions from sampled keys.
    pub fn from_samples(mut samples: Vec<Vec<u8>>, partitions: u32) -> Self {
        assert!(partitions > 0);
        samples.sort();
        samples.dedup();
        let mut boundaries = Vec::with_capacity(partitions as usize - 1);
        if !samples.is_empty() {
            for p in 1..partitions as usize {
                let idx = p * samples.len() / partitions as usize;
                let b = samples[idx.min(samples.len() - 1)].clone();
                if boundaries.last() != Some(&b) {
                    boundaries.push(b);
                }
            }
        }
        RangePartitioner { boundaries }
    }

    /// Partition of `key`: number of boundaries ≤ key.
    #[inline]
    pub fn partition_of(&self, key: &[u8]) -> u32 {
        self.boundaries.partition_point(|b| b.as_slice() <= key) as u32
    }

    /// Number of partitions this partitioner can address.
    pub fn partitions(&self) -> u32 {
        self.boundaries.len() as u32 + 1
    }
}

/// The TeraSort application.
pub struct TeraSort {
    partitioner: RangePartitioner,
}

impl TeraSort {
    /// Build TS from key samples for a `partitions`-way total order.
    pub fn new(samples: Vec<Vec<u8>>, partitions: u32) -> Self {
        TeraSort {
            partitioner: RangePartitioner::from_samples(samples, partitions),
        }
    }

    /// The underlying range partitioner.
    pub fn partitioner(&self) -> &RangePartitioner {
        &self.partitioner
    }
}

impl GwApp for TeraSort {
    fn name(&self) -> &'static str {
        "terasort"
    }

    /// Identity map: route the record to its range partition.
    fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
        emit.emit(key, value);
    }

    fn has_reduce(&self) -> bool {
        false
    }

    fn reduce(
        &self,
        _key: &[u8],
        _values: &[&[u8]],
        _state: &mut Vec<u8>,
        _last: bool,
        _emit: &Emit<'_>,
    ) {
        unreachable!("TeraSort has no reduce phase");
    }

    fn partition(&self, key: &[u8], num_partitions: u32) -> u32 {
        // Clamp defensively: a partitioner built for more ranges than the
        // job's partition count folds its tail ranges into the last one.
        self.partitioner.partition_of(key).min(num_partitions - 1)
    }
}

/// TeraValidate-style output validation: checks that the concatenation of
/// the partition files (in partition order) is totally ordered, contains
/// `expected` records, and computes an order-insensitive checksum of the
/// record contents to compare against the input's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationReport {
    /// Records seen.
    pub records: usize,
    /// XOR-rotate checksum over all records (order-insensitive).
    pub checksum: u64,
    /// Whether the stream was totally ordered.
    pub ordered: bool,
}

/// Checksum one record (stable across record order).
fn record_checksum(key: &[u8], value: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in key.iter().chain(value) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Validate a record stream (already in partition-file order).
pub fn validate<'r>(records: impl IntoIterator<Item = (&'r [u8], &'r [u8])>) -> ValidationReport {
    let mut count = 0usize;
    let mut checksum = 0u64;
    let mut ordered = true;
    let mut prev: Option<(Vec<u8>, Vec<u8>)> = None;
    for (k, v) in records {
        count += 1;
        checksum ^= record_checksum(k, v);
        if let Some((pk, pv)) = &prev {
            if (pk.as_slice(), pv.as_slice()) > (k, v) {
                ordered = false;
            }
        }
        prev = Some((k.to_vec(), v.to_vec()));
    }
    ValidationReport {
        records: count,
        checksum,
        ordered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_split_the_key_space() {
        let samples: Vec<Vec<u8>> = (0u8..100).map(|i| vec![i]).collect();
        let rp = RangePartitioner::from_samples(samples, 4);
        assert_eq!(rp.partitions(), 4);
        assert_eq!(rp.partition_of(&[0]), 0);
        assert_eq!(rp.partition_of(&[99]), 3);
        // Monotone: p(a) ≤ p(b) when a ≤ b.
        let mut prev = 0;
        for i in 0u8..=255 {
            let p = rp.partition_of(&[i]);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn partitions_respect_total_order() {
        let samples: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let rp = RangePartitioner::from_samples(samples, 8);
        // Any key in partition p sorts before any key in partition p+1's
        // boundary.
        for i in 0..1000u32 {
            let key = i.to_be_bytes();
            let p = rp.partition_of(&key);
            assert!(p < 8);
        }
    }

    #[test]
    fn empty_samples_degenerate_to_one_partition() {
        let rp = RangePartitioner::from_samples(Vec::new(), 4);
        assert_eq!(rp.partition_of(b"anything"), 0);
    }

    #[test]
    fn duplicate_samples_do_not_create_empty_ranges() {
        let samples = vec![vec![5u8]; 100];
        let rp = RangePartitioner::from_samples(samples, 4);
        // All boundaries collapse to one.
        assert!(rp.partitions() <= 2);
    }

    #[test]
    fn terasort_has_no_reduce() {
        let ts = TeraSort::new(vec![vec![10u8], vec![20]], 3);
        assert!(!ts.has_reduce());
        assert_eq!(ts.partition(&[0], 3), 0);
        assert_eq!(ts.partition(&[15], 3), 1);
        assert_eq!(ts.partition(&[200], 3), 2);
    }

    #[test]
    fn partition_clamps_to_job_partitions() {
        // Partitioner built for 3 ranges but the job only has 2: clamp.
        let ts = TeraSort::new(vec![vec![10u8], vec![20]], 3);
        assert_eq!(ts.partition(&[200], 2), 1);
    }

    #[test]
    fn validate_accepts_sorted_streams() {
        let records = [
            (b"a".as_slice(), b"1".as_slice()),
            (b"b", b"2"),
            (b"c", b"3"),
        ];
        let r = validate(records);
        assert!(r.ordered);
        assert_eq!(r.records, 3);
    }

    #[test]
    fn validate_flags_disorder_but_keeps_checksum() {
        let sorted = [(b"a".as_slice(), b"1".as_slice()), (b"b", b"2")];
        let unsorted = [(b"b".as_slice(), b"2".as_slice()), (b"a", b"1")];
        let rs = validate(sorted);
        let ru = validate(unsorted);
        assert!(rs.ordered);
        assert!(!ru.ordered);
        // Checksum is order-insensitive: same multiset, same checksum.
        assert_eq!(rs.checksum, ru.checksum);
    }

    #[test]
    fn validate_detects_corruption() {
        let a = validate([(b"a".as_slice(), b"1".as_slice())]);
        let b = validate([(b"a".as_slice(), b"2".as_slice())]);
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn validate_empty_stream() {
        let r = validate(std::iter::empty::<(&[u8], &[u8])>());
        assert!(r.ordered);
        assert_eq!(r.records, 0);
        assert_eq!(r.checksum, 0);
    }
}
