//! The five evaluation applications of the Glasswing paper (§IV), their
//! workload generators, and sequential reference implementations.
//!
//! "To fairly represent the wide spectrum of MapReduce applications we
//! implemented and analyzed five applications with diverse properties.
//! Each application represents a different combination of compute
//! intensity, input/output patterns, intermediate data volume and key
//! space."
//!
//! | App | Bound | Intermediate volume | Key space |
//! |-----|-------|---------------------|-----------|
//! | [`pageview::PageviewCount`] | I/O | large | massive, sparse |
//! | [`wordcount::WordCount`] | I/O (some compute) | large | skewed, repetitive |
//! | [`terasort::TeraSort`] | I/O (shuffle-heavy) | = input | total-order ranges |
//! | [`kmeans::KMeans`] | compute | tiny | #centers |
//! | [`matmul::MatMul`] | compute + data | large tiles | #result tiles |
//!
//! Each application implements [`gw_core::GwApp`] and ships with a
//! deterministic generator in [`workloads`] plus a sequential reference in
//! the `reference` module used by the integration tests to validate engine output
//! bit-for-bit.
//!
//! [`arrivals`] adds the WikiBench-style *open-loop* submission schedule
//! used to drive the resident job service: bursty Zipf inter-arrivals
//! over a Zipf-popular workload catalog.

pub mod arrivals;
pub mod codec;
pub mod kmeans;
pub mod matmul;
pub mod pageview;
pub mod reference;
pub mod terasort;
pub mod wordcount;
pub mod workloads;

pub use arrivals::{arrival_schedule, Arrival, ArrivalSpec};
pub use kmeans::KMeans;
pub use matmul::MatMul;
pub use pageview::PageviewCount;
pub use terasort::TeraSort;
pub use wordcount::WordCount;
