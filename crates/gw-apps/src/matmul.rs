//! Matrix Multiply (MM) — "multiplies two square matrices A and B by
//! tiling them into multiple sub-matrices. Each sub-matrix is identified
//! by the coordinate of its top left row and column."
//!
//! Map input: one `(i, k, j)` tile pair carrying `A[i,k]` and `B[k,j]`;
//! the map kernel computes the dense `t × t` partial product (the hot
//! loop, `t³` fused multiply-adds per record) and emits it keyed by the
//! result tile `(i, j)`. The combiner/reducer sums partial products. In
//! contrast to GPMR's version — which "does not aggregate the partial
//! submatrices as it has no reduce implementation" — this implementation
//! completes the multiplication.
//!
//! "In contrast to KM, MM consumes a large volume of data which limits the
//! performance acceleration provided by the GPU": each record moves
//! `2 t²` floats for `t³` flops, so the compute/transfer ratio is `t/2`.

use std::sync::Arc;

use gw_core::{Combiner, Emit, GwApp};

use crate::codec;

/// Adds partial product tiles elementwise.
pub struct TileSumCombiner;

impl Combiner for TileSumCombiner {
    fn combine(&self, _key: &[u8], acc: &mut Vec<u8>, value: &[u8]) {
        codec::add_f32s_in_place(acc, value);
    }
}

/// The Matrix Multiply application.
pub struct MatMul {
    tile: usize,
    use_combiner: bool,
}

impl MatMul {
    /// Build for `tile × tile` sub-matrices.
    pub fn new(tile: usize) -> Self {
        assert!(tile > 0);
        MatMul {
            tile,
            use_combiner: true,
        }
    }

    /// Disable the combiner.
    pub fn without_combiner(mut self) -> Self {
        self.use_combiner = false;
        self
    }

    /// Tile dimension.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Dense `t × t` tile product: `c = a × b` (row-major).
    pub fn tile_product(a: &[f32], b: &[f32], t: usize) -> Vec<f32> {
        debug_assert_eq!(a.len(), t * t);
        debug_assert_eq!(b.len(), t * t);
        let mut c = vec![0.0f32; t * t];
        // i-k-j loop order: streaming access on b and c.
        for i in 0..t {
            for k in 0..t {
                let aik = a[i * t + k];
                let brow = &b[k * t..(k + 1) * t];
                let crow = &mut c[i * t..(i + 1) * t];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
        c
    }
}

impl GwApp for MatMul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
        let t = self.tile;
        debug_assert_eq!(key.len(), 12, "key must be (i, j, k) BE u32s");
        debug_assert_eq!(value.len(), 2 * t * t * 4, "value must be two tiles");
        let a = codec::get_f32s(&value[..t * t * 4]);
        let b = codec::get_f32s(&value[t * t * 4..]);
        let c = Self::tile_product(&a, &b, t);
        let mut out = Vec::with_capacity(t * t * 4);
        codec::put_f32s(&mut out, &c);
        // Result key: (i, j) — drop the k component.
        emit.emit(&key[..8], &out);
    }

    fn combiner(&self) -> Option<Arc<dyn Combiner>> {
        self.use_combiner
            .then(|| Arc::new(TileSumCombiner) as Arc<dyn Combiner>)
    }

    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        if state.is_empty() {
            state.resize(self.tile * self.tile * 4, 0);
        }
        for v in values {
            codec::add_f32s_in_place(state, v);
        }
        if last {
            emit.emit(key, state);
        }
    }

    /// Tile addition is associative: enable parallel single-key reduction.
    fn merge_states(&self, acc: &mut Vec<u8>, other: &[u8]) -> bool {
        if other.is_empty() {
            return true;
        }
        if acc.is_empty() {
            acc.extend_from_slice(other);
            return true;
        }
        codec::add_f32s_in_place(acc, other);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_core::collect::{for_each_record, BufferPoolCollector};

    #[test]
    fn tile_product_matches_naive() {
        let t = 3;
        let a: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let b: Vec<f32> = (0..9).map(|v| (v * 2) as f32).collect();
        let c = MatMul::tile_product(&a, &b, t);
        for i in 0..t {
            for j in 0..t {
                let expect: f32 = (0..t).map(|k| a[i * t + k] * b[k * t + j]).sum();
                assert_eq!(c[i * t + j], expect);
            }
        }
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let t = 4;
        let mut eye = vec![0.0f32; t * t];
        for i in 0..t {
            eye[i * t + i] = 1.0;
        }
        let m: Vec<f32> = (0..t * t).map(|v| v as f32 * 0.5).collect();
        assert_eq!(MatMul::tile_product(&eye, &m, t), m);
    }

    #[test]
    fn map_emits_partial_keyed_by_result_tile() {
        let t = 2;
        let app = MatMul::new(t);
        let c = BufferPoolCollector::new(4096, 1);
        let mut key = Vec::new();
        key.extend_from_slice(&1u32.to_be_bytes()); // i
        key.extend_from_slice(&2u32.to_be_bytes()); // j
        key.extend_from_slice(&0u32.to_be_bytes()); // k
        let mut value = Vec::new();
        codec::put_f32s(&mut value, &[1.0, 0.0, 0.0, 1.0]); // A tile = I
        codec::put_f32s(&mut value, &[5.0, 6.0, 7.0, 8.0]); // B tile
        app.map(&key, &value, &Emit::new(&c));
        let mut out = Vec::new();
        for_each_record(&c, &mut |k, v| out.push((k.to_vec(), codec::get_f32s(v))));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, key[..8].to_vec());
        assert_eq!(out[0].1, vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn reduce_sums_partials() {
        let t = 2;
        let app = MatMul::new(t);
        let c = BufferPoolCollector::new(4096, 1);
        let emit = Emit::new(&c);
        let mut state = Vec::new();
        let mut p1 = Vec::new();
        codec::put_f32s(&mut p1, &[1.0, 2.0, 3.0, 4.0]);
        let mut p2 = Vec::new();
        codec::put_f32s(&mut p2, &[10.0, 20.0, 30.0, 40.0]);
        app.reduce(b"key-8bye", &[&p1], &mut state, false, &emit);
        app.reduce(b"key-8bye", &[&p2], &mut state, true, &emit);
        let mut out = Vec::new();
        for_each_record(&c, &mut |_, v| out.push(codec::get_f32s(v)));
        assert_eq!(out, vec![vec![11.0, 22.0, 33.0, 44.0]]);
    }
}
