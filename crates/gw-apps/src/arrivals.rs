//! Open-loop job arrival generation for the resident service.
//!
//! WikiBench replays Wikipedia's request traces *open-loop*: requests
//! arrive on the trace's schedule regardless of how the system keeps up,
//! so queueing (not admission rate) absorbs overload and tail latency
//! becomes visible. This module generates that shape for whole MapReduce
//! jobs instead of HTTP requests:
//!
//! - **Bursty inter-arrival gaps** — each gap is the mean gap scaled by a
//!   multiplier drawn Zipf over a rank ladder, so most gaps are short
//!   (bursts) with occasional long silences. `burstiness` interpolates
//!   toward uniform gaps at 0.
//! - **Zipf workload popularity** — each arrival references a workload
//!   seed drawn Zipf-popular from a small catalog, the request-repetition
//!   structure that makes a service-side result cache worthwhile (hot
//!   pageview datasets get re-analyzed; cold ones appear once).
//! - **Uniform tenant attribution** — arrivals round-robin over a tenant
//!   count with seeded shuffling, so every tenant sees both hot and cold
//!   submissions.
//!
//! Everything derives deterministically from [`ArrivalSpec::seed`].

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workloads::Zipf;

/// Parameters for one open-loop arrival schedule.
#[derive(Debug, Clone)]
pub struct ArrivalSpec {
    /// Total arrivals to generate.
    pub jobs: usize,
    /// Number of tenants to attribute arrivals to.
    pub tenants: usize,
    /// Mean inter-arrival gap.
    pub mean_gap: Duration,
    /// Burst skew in `[0, 1]`: 0 = uniform gaps at `mean_gap`, 1 = heavy
    /// Zipf over the gap ladder (tight bursts plus long silences).
    pub burstiness: f64,
    /// Workload-seed catalog size (distinct datasets in play).
    pub catalog: usize,
    /// Zipf exponent of workload popularity (≈1 for WikiBench-like
    /// repetition; higher concentrates re-submissions further).
    pub popularity_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        ArrivalSpec {
            jobs: 32,
            tenants: 2,
            mean_gap: Duration::from_millis(50),
            burstiness: 0.7,
            catalog: 8,
            popularity_s: 1.1,
            seed: 42,
        }
    }
}

/// One scheduled submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from the schedule's start at which to submit.
    pub at: Duration,
    /// Tenant index in `0..tenants`.
    pub tenant: usize,
    /// Workload seed drawn from the popularity distribution; repeated
    /// seeds are cache-hit opportunities for the service.
    pub workload_seed: u64,
}

/// Gap-multiplier ladder: rank 0 is a tight burst gap, the top rank a
/// long silence. Zipf over these ranks yields bursty open-loop traffic
/// whose mean stays near `mean_gap` once normalized.
const GAP_LADDER: [f64; 6] = [0.05, 0.2, 0.5, 1.0, 3.0, 10.0];

/// Generate the deterministic open-loop schedule for `spec`, sorted by
/// arrival time.
pub fn arrival_schedule(spec: &ArrivalSpec) -> Vec<Arrival> {
    assert!(spec.tenants > 0, "need at least one tenant");
    assert!(spec.catalog > 0, "need at least one catalog entry");
    assert!(
        (0.0..=1.0).contains(&spec.burstiness),
        "burstiness must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Zipf over the ladder ranks; exponent grows with burstiness.
    let gap_zipf = Zipf::new(GAP_LADDER.len(), 0.2 + 2.0 * spec.burstiness);
    let popularity = Zipf::new(spec.catalog, spec.popularity_s);

    // Draw raw multipliers first, then normalize so the realized mean gap
    // matches `mean_gap` regardless of burstiness (open-loop load is a
    // controlled variable; burstiness only reshapes it).
    let raw: Vec<f64> = (0..spec.jobs)
        .map(|_| {
            let rank = gap_zipf.sample(&mut rng);
            let base = GAP_LADDER[rank];
            // Blend toward uniform at low burstiness.
            spec.burstiness * base + (1.0 - spec.burstiness)
        })
        .collect();
    let mean_raw = raw.iter().sum::<f64>() / raw.len().max(1) as f64;
    let scale = spec.mean_gap.as_secs_f64() / mean_raw.max(f64::MIN_POSITIVE);

    let mut at = Duration::ZERO;
    (0..spec.jobs)
        .map(|i| {
            at += Duration::from_secs_f64(raw[i] * scale);
            Arrival {
                at,
                tenant: rng.gen_range(0..spec.tenants),
                workload_seed: popularity.sample(&mut rng) as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let spec = ArrivalSpec::default();
        let a = arrival_schedule(&spec);
        let b = arrival_schedule(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.jobs);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        let other = arrival_schedule(&ArrivalSpec {
            seed: 43,
            ..spec.clone()
        });
        assert_ne!(a, other, "different seeds give different schedules");
    }

    #[test]
    fn realized_mean_gap_tracks_the_spec() {
        let spec = ArrivalSpec {
            jobs: 400,
            mean_gap: Duration::from_millis(20),
            ..Default::default()
        };
        let sched = arrival_schedule(&spec);
        let total = sched.last().unwrap().at;
        let mean = total.as_secs_f64() / spec.jobs as f64;
        let want = spec.mean_gap.as_secs_f64();
        assert!(
            (mean - want).abs() / want < 0.05,
            "mean gap {mean:.4}s strayed from {want:.4}s"
        );
    }

    #[test]
    fn bursty_gaps_have_higher_dispersion_than_uniform() {
        let cv = |burstiness: f64| {
            let sched = arrival_schedule(&ArrivalSpec {
                jobs: 500,
                burstiness,
                ..Default::default()
            });
            let gaps: Vec<f64> = std::iter::once(Duration::ZERO)
                .chain(sched.iter().map(|a| a.at))
                .collect::<Vec<_>>()
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        assert!(cv(0.0) < 1e-9, "zero burstiness means uniform gaps");
        assert!(
            cv(0.9) > 0.8,
            "high burstiness must disperse gaps (cv {})",
            cv(0.9)
        );
    }

    #[test]
    fn popular_seeds_repeat_and_tenants_all_appear() {
        let spec = ArrivalSpec {
            jobs: 200,
            tenants: 3,
            catalog: 16,
            ..Default::default()
        };
        let sched = arrival_schedule(&spec);
        let mut seed_counts = std::collections::HashMap::new();
        let mut tenants = std::collections::HashSet::new();
        for a in &sched {
            *seed_counts.entry(a.workload_seed).or_insert(0usize) += 1;
            tenants.insert(a.tenant);
            assert!(a.workload_seed < spec.catalog as u64);
            assert!(a.tenant < spec.tenants);
        }
        assert_eq!(tenants.len(), 3, "every tenant submits");
        let max = seed_counts.values().max().copied().unwrap_or(0);
        assert!(
            max * spec.catalog > 2 * spec.jobs,
            "the hot seed should repeat well above uniform share ({max} of {})",
            spec.jobs
        );
    }
}
