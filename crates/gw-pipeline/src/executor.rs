//! The bounded-stage executor.
//!
//! A pipeline is a pulling [`Source`] followed by a chain of [`Stage`]s.
//! The executor spawns one scoped thread per *lane* of each live stage
//! (pass-through stages are fused out at build time), links them with
//! bounded handoff channels, and owns every cross-cutting concern the
//! stages themselves used to copy-paste:
//!
//! * **§III-D buffer tokens** — each [`PipelineBuilder::interlock`] group
//!   (e.g. the map pipeline's input group Input→Kernel and output group
//!   Kernel→Partition) is a semaphore of `B =`
//!   [`Buffering::depth`](crate::Buffering::depth) permits. A chunk
//!   acquires the group's permit before its first stage runs and carries
//!   it until its last stage completes, so at most `B` chunks are ever in
//!   flight inside the group — enforced here, not by ad-hoc channel
//!   capacities. A high-water gauge per group backs the property test
//!   pinning that invariant.
//! * **Lanes** — a slot may run several worker lanes
//!   ([`PipelineBuilder::stage_lanes`], [`PipelineBuilder::source_lanes`]).
//!   Chunks are dealt round-robin by sequence number (chunk `s` runs on
//!   lane `s mod N` of an N-lane slot), the handoff between adjacent slots
//!   is an N×M matrix of bounded channels, and every consumer pulls its
//!   expected sequence numbers in order from the producer lane that owns
//!   each one — so a single-lane consumer (and the final stage) sees
//!   chunks in exactly the global sequence order, byte-identical for
//!   every lane count, with no separate reorder-buffer thread. A chunk
//!   consumed mid-graph leaves a [`Payload::Skip`] hole that keeps
//!   sequence numbers dense. Input claims and token-permit acquisition
//!   stay in global sequence order (per-slot turn-taking), which is what
//!   keeps the B-bounded interlocks deadlock-free at any lane count: a
//!   permit can only ever be held by a seq whose predecessors already
//!   acquired theirs.
//! * **Crash probing and dead/abort flags** — between chunks the executor
//!   consults the [`PipelineProbe`]: `should_abort` unwinds the stage
//!   quietly (marking the node dead), `crash_fires_on` injects a node
//!   death at this stage's crash site (addressable per lane). The source
//!   is probed *after* it produces a chunk, so an injected Read crash
//!   dies holding the fresh claim.
//! * **Timing** — every chunk's pass through a stage is recorded into
//!   [`StageTimers`]; the default window is the whole `run_chunk` call,
//!   and a stage needing a narrower one calls [`StageCtx::add_time`].
//!   Lanes of one slot fold into the same per-stage aggregate.
//! * **Unwinding** — a stage error kills the probe, drops the stage's
//!   channel endpoints and lets the graph drain deterministically:
//!   upstream sends fail, downstream receives drain, queued chunks drop
//!   (returning their permits), and the first error in stage order is
//!   surfaced. Stage panics propagate after every thread has been joined;
//!   turn-taking slots release their siblings on every exit path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use gw_trace::{Event, EventKind, Lane, LaneId, MarkId, Realm, SpanId, Tracer};

use crate::timers::{StageId, StageTimers};
use crate::{Buffering, PipelineKind};

/// A stage's view of the executor while it handles one chunk.
pub struct StageCtx<'p> {
    stage: StageId,
    seq: usize,
    lane: u32,
    probe: Option<&'p dyn PipelineProbe>,
    timing: Option<(Duration, Duration)>,
    stopped: bool,
}

impl<'p> StageCtx<'p> {
    fn new(stage: StageId, seq: usize, lane: u32, probe: Option<&'p dyn PipelineProbe>) -> Self {
        StageCtx {
            stage,
            seq,
            lane,
            probe,
            timing: None,
            stopped: false,
        }
    }

    /// Sequence number of the chunk being handled (monotonic from the
    /// builder's `first_seq`).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// The stage slot this context belongs to.
    pub fn stage(&self) -> StageId {
        self.stage
    }

    /// Lane index within the stage slot (0 for single-lane slots). A
    /// widened stage handles chunk `seq` on lane `seq mod N`, so this is
    /// fully determined by [`StageCtx::seq`] — exposed for stages that
    /// name per-lane resources (durability files, scratch buffers).
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Override the default whole-call timing window for this chunk with
    /// an explicit (wall, modeled) pair. Multiple calls accumulate.
    pub fn add_time(&mut self, wall: Duration, modeled: Duration) {
        let (w, m) = self.timing.unwrap_or((Duration::ZERO, Duration::ZERO));
        self.timing = Some((w + wall, m + modeled));
    }

    /// Probe the dead/abort flags; returns `true` (after marking the node
    /// dead) when the stage must unwind. Blocking sources call this inside
    /// their wait loops; the executor calls it once per chunk.
    pub fn should_stop(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if let Some(p) = self.probe {
            if p.should_abort(self.stage) {
                p.kill();
                self.stopped = true;
                return true;
            }
        }
        false
    }

    /// Ask the executor to unwind this stage quietly after the current
    /// call returns (e.g. a recycling pool closed because a downstream
    /// stage died).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Probe the task-level injected fault for this node (the reduce-site
    /// fault of the chaos plane); `false` without a probe.
    pub fn task_fault_fires(&self) -> bool {
        self.probe.is_some_and(|p| p.task_fault_fires())
    }

    fn take_timing(&mut self) -> Option<(Duration, Duration)> {
        self.timing.take()
    }
}

/// The executor's hook into the fault plane. One implementation adapts the
/// chaos `CrashSite` plan and the coordinator's dead/abort flags; the
/// executor itself stays free of any chaos dependency.
pub trait PipelineProbe: Send + Sync {
    /// Checked between chunks (and by blocking sources): `true` = this
    /// stage must unwind. `stage` lets implementations fold in
    /// stage-specific liveness (the map input stage also watches the
    /// coordinator's dead/abort flags).
    fn should_abort(&self, stage: StageId) -> bool;

    /// Crash-site probe for `stage`, counted per passage: `true` = the
    /// node dies now.
    fn crash_fires(&self, stage: StageId) -> bool;

    /// Mark the node dead. Called when a crash fires, when `should_abort`
    /// trips, and when any stage returns an error.
    fn kill(&self);

    /// Task-level injected fault, probed by kernel stages inside their
    /// retry scope (a panic recovered by the §III-E budget, not a node
    /// death).
    fn task_fault_fires(&self) -> bool {
        false
    }

    /// Gray-failure probe, called after `stage` processed a chunk in
    /// `wall` time: `Some(extra)` = this passage must be stretched by
    /// sleeping `extra` (a slowdown or transient stall is scheduled).
    /// The default keeps unarmed pipelines zero-cost.
    fn gray_delay(&self, stage: StageId, wall: Duration) -> Option<Duration> {
        let _ = (stage, wall);
        None
    }

    /// Lane-addressed crash probe — what the executor actually calls.
    /// Defaults to the slot-level [`PipelineProbe::crash_fires`], so
    /// existing probes see every lane's passages; lane-aware fault plans
    /// override this to pin a fault to one lane of a widened stage.
    fn crash_fires_on(&self, stage: StageId, lane: u32) -> bool {
        let _ = lane;
        self.crash_fires(stage)
    }

    /// Lane-addressed gray probe, as [`PipelineProbe::gray_delay`].
    fn gray_delay_on(&self, stage: StageId, lane: u32, wall: Duration) -> Option<Duration> {
        let _ = lane;
        self.gray_delay(stage, wall)
    }
}

/// Head of a pipeline: pulls work into the graph.
pub trait Source<T, E>: Send {
    /// Produce the next chunk, or `Ok(None)` when the input is exhausted.
    /// The executor admits the chunk into its token group *before* this
    /// call, so production itself is interlocked (§III-D: a split is only
    /// read into a free buffer set). Long waits inside this call should
    /// poll [`StageCtx::should_stop`].
    fn next_chunk(&mut self, ctx: &mut StageCtx<'_>) -> Result<Option<T>, E>;

    /// Runs on every exit path — normal exhaustion, downstream failure,
    /// error or injected crash — before the source's output closes. The
    /// map source deregisters from the coordinator here.
    fn close(&mut self) {}
}

/// Head of a pipeline when the source slot runs several lanes. The cheap,
/// order-sensitive *claim* (e.g. asking the coordinator for the next
/// split) is serialized across lanes in global sequence order under the
/// slot's claim turn, while the expensive *produce* (reading and parsing
/// the split) runs outside the turn, overlapped across lanes.
///
/// One instance is constructed per lane; instances share whatever state
/// they need (coordinator handles, buffer pools) behind their own
/// synchronization.
pub trait LaneSource<T, E>: Send {
    /// Claim the next unit of input for this lane. Called in global
    /// sequence order across all lanes of the slot (never concurrently
    /// with a sibling's claim). `Ok(false)` ends the whole slot: the
    /// input is exhausted or the source was asked to stop.
    fn claim(&mut self, ctx: &mut StageCtx<'_>) -> Result<bool, E>;

    /// Materialize the chunk for this lane's last successful
    /// [`LaneSource::claim`]. Runs outside the claim turn, concurrently
    /// with sibling lanes.
    fn produce(&mut self, ctx: &mut StageCtx<'_>) -> Result<T, E>;

    /// As [`Source::close`]: runs on every exit path, once per lane.
    fn close(&mut self) {}
}

/// Adapter running a classic [`Source`] as the only lane of its slot:
/// the whole production happens at claim time (there is no sibling to
/// overlap with), keeping the single-lane event stream identical to the
/// historical one.
struct LegacySource<'a, T, E> {
    inner: Box<dyn Source<T, E> + 'a>,
    pending: Option<T>,
}

impl<'a, T: Send, E> LaneSource<T, E> for LegacySource<'a, T, E> {
    fn claim(&mut self, ctx: &mut StageCtx<'_>) -> Result<bool, E> {
        self.pending = self.inner.next_chunk(ctx)?;
        Ok(self.pending.is_some())
    }

    fn produce(&mut self, _ctx: &mut StageCtx<'_>) -> Result<T, E> {
        Ok(self.pending.take().expect("claim() admitted a chunk"))
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

/// One stage of a pipeline.
pub trait Stage<T, E>: Send {
    /// Handle one chunk. `Ok(Some)` forwards a chunk downstream (dropped
    /// if this is the last stage); `Ok(None)` consumes it.
    fn run_chunk(&mut self, chunk: T, ctx: &mut StageCtx<'_>) -> Result<Option<T>, E>;

    /// Build-time fusion hook: a `true` return removes the stage from the
    /// graph entirely — no thread, no channel hop, no timer slot (the
    /// paper's "the input stager is disabled" on unified memory). The
    /// stage's *crash site* survives fusion: the next live stage probes it
    /// on the fused stage's behalf, so fault plans address all five slots
    /// regardless of the memory model.
    fn passthrough(&self) -> bool {
        false
    }

    /// Runs once the stage stops consuming without an error of its own —
    /// input drained or the pipeline unwinding quietly. `ctx.seq()` is the
    /// last chunk seen; [`StageCtx::add_time`] here records an extra timer
    /// sample against it (the reduce output stage times its final write).
    fn finish(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), E> {
        let _ = ctx;
        Ok(())
    }
}

/// Borrow half of a recycling payload pool: blocks for the next free
/// payload, `None` once every [`PoolPut`] is gone (the returning stage
/// died and the pool can never refill). Cloneable so the lanes of a
/// widened stage can share one pool.
pub struct PoolGet<P>(Receiver<P>);

/// Return half of a recycling payload pool.
pub struct PoolPut<P>(Sender<P>);

impl<P> Clone for PoolGet<P> {
    fn clone(&self) -> Self {
        PoolGet(self.0.clone())
    }
}

impl<P> Clone for PoolPut<P> {
    fn clone(&self) -> Self {
        PoolPut(self.0.clone())
    }
}

impl<P> PoolGet<P> {
    /// Next free payload; `None` when the pool closed.
    pub fn take(&self) -> Option<P> {
        self.0.recv().ok()
    }
}

impl<P> PoolPut<P> {
    /// Return a payload to the pool (dropped if no taker remains).
    pub fn put(&self, payload: P) {
        let _ = self.0.send(payload);
    }
}

/// Build a recycling pool primed with `payloads` (the §III-D buffer sets:
/// device staging buffers, output collectors). Sized pools never block a
/// permit holder: with `B` payloads and `B` executor permits over the same
/// stages, every holder of a payload also holds a permit.
pub fn token_pool<P>(payloads: impl IntoIterator<Item = P>) -> (PoolGet<P>, PoolPut<P>) {
    let payloads: Vec<P> = payloads.into_iter().collect();
    let (tx, rx) = bounded(payloads.len().max(1));
    for p in payloads {
        tx.send(p).expect("prime token pool");
    }
    (PoolGet(rx), PoolPut(tx))
}

/// Witness that a retried task exhausted its §III-E re-execution budget.
#[derive(Debug)]
pub struct RetryExhausted {
    /// Total attempts made (budget + 1).
    pub attempts: usize,
}

/// The §III-E task re-execution loop shared by both kernel stages: run
/// `attempt` under `catch_unwind`; on a panic, discard the attempt's
/// partial output via `rollback` and re-execute, up to `budget` times.
/// Returns the result and how many retries were spent, or
/// [`RetryExhausted`] once the budget is gone.
pub fn run_task_with_retries<C, R>(
    budget: usize,
    state: &mut C,
    mut attempt: impl FnMut(&mut C) -> R,
    mut rollback: impl FnMut(&mut C),
) -> Result<(R, usize), RetryExhausted> {
    let mut retried = 0usize;
    loop {
        match catch_unwind(AssertUnwindSafe(|| attempt(state))) {
            Ok(r) => return Ok((r, retried)),
            Err(_) if retried < budget => {
                retried += 1;
                rollback(state);
            }
            Err(_) => {
                return Err(RetryExhausted {
                    attempts: retried + 1,
                })
            }
        }
    }
}

/// Outcome of a completed pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineStats {
    /// Threads the graph actually spawned (every lane of the source and
    /// each live stage). Fused stages spawn nothing: a unified-memory
    /// single-lane map pipeline runs on 3 threads, not 5.
    pub stage_threads: usize,
    /// Stages fused out of the graph at build time.
    pub fused: Vec<StageId>,
    /// Lane count per live slot, in pipeline order.
    pub lanes: Vec<(StageId, usize)>,
    /// Chunks emitted by the source.
    pub chunks: usize,
    /// High-water mark of in-flight chunks across the token groups; never
    /// exceeds the buffering depth `B`, regardless of lane counts.
    pub max_in_flight: usize,
}

/// In-flight gauge for one token group (current + high-water).
#[derive(Debug, Default)]
struct InFlightGauge {
    current: AtomicUsize,
    max: AtomicUsize,
}

impl InFlightGauge {
    fn inc(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.max.fetch_max(now, Ordering::SeqCst);
    }

    fn dec(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }

    fn high_water(&self) -> usize {
        self.max.load(Ordering::SeqCst)
    }
}

/// One held token-group slot; returns itself (and decrements the gauge)
/// on drop, so unwinding anywhere releases the interlock.
struct Permit {
    slot: Sender<()>,
    gauge: Arc<InFlightGauge>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gauge.dec();
        let _ = self.slot.send(());
    }
}

/// The acquire side of one token group, cloned to every lane of the
/// group's first stage (clones share the permit channel and gauge, so
/// `B` bounds the group across all lanes together).
#[derive(Clone)]
struct Acquirer {
    group: usize,
    rx: Receiver<()>,
    tx: Sender<()>,
    gauge: Arc<InFlightGauge>,
}

impl Acquirer {
    fn acquire(&self) -> Option<Permit> {
        self.rx.recv().ok()?;
        self.gauge.inc();
        Some(Permit {
            slot: self.tx.clone(),
            gauge: Arc::clone(&self.gauge),
        })
    }
}

/// Seq-ordered turn-taking across the lanes of one slot. Multi-lane
/// sources claim under it (so split→seq assignment is deterministic and
/// permit acquisition happens in seq order); multi-lane acquiring stages
/// admit chunks into their token groups under it (out-of-order
/// acquisition would trap a permit inside a queued envelope and deadlock
/// whenever `B <` lane count).
struct Turn {
    state: Mutex<TurnState>,
    cv: Condvar,
}

struct TurnState {
    next: usize,
    done: bool,
}

impl Turn {
    fn new(first: usize) -> Self {
        Turn {
            state: Mutex::new(TurnState {
                next: first,
                done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until `seq`'s turn comes up; `false` once the slot finished
    /// (a sibling lane stopped advancing) and the turn can never arrive.
    fn wait_for(&self, seq: usize) -> bool {
        let mut s = self.state.lock();
        loop {
            if s.done {
                return false;
            }
            if s.next >= seq {
                return true;
            }
            self.cv.wait(&mut s);
        }
    }

    fn advance(&self, next: usize) {
        let mut s = self.state.lock();
        if next > s.next {
            s.next = next;
        }
        drop(s);
        self.cv.notify_all();
    }

    fn finish(&self) {
        self.state.lock().done = true;
        self.cv.notify_all();
    }
}

/// Arms a [`Turn::finish`] on every abnormal lane exit (including a lane
/// panic, via `Drop`), so sibling lanes blocked on the turn never wait on
/// a lane that will no longer advance it. Disarmed only on the one exit
/// where siblings may still hold live work: normal end-of-stream.
struct TurnFinishGuard {
    turn: Option<Arc<Turn>>,
    armed: bool,
}

impl TurnFinishGuard {
    fn new(turn: Option<Arc<Turn>>) -> Self {
        TurnFinishGuard { turn, armed: true }
    }

    fn turn(&self) -> Option<&Turn> {
        self.turn.as_deref()
    }

    fn fire(&mut self) {
        if self.armed {
            self.armed = false;
            if let Some(t) = &self.turn {
                t.finish();
            }
        }
    }

    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for TurnFinishGuard {
    fn drop(&mut self) {
        self.fire();
    }
}

/// Per-stage event emitter: the executor constructs each event **once**
/// and feeds the same value to both consumers — the tracer lane (when
/// tracing is armed) and the [`StageTimers`] derived view. Neither
/// consumer keeps bookkeeping of its own inside pipeline code; wall and
/// modeled time flow from this one emission point. Each lane of a
/// widened slot gets its own emitter on its own trace sub-lane, keeping
/// the tracer's single-writer invariant.
struct StageEvents<'t> {
    stage: StageId,
    lane: Option<Lane>,
    timers: Option<&'t StageTimers>,
}

impl StageEvents<'_> {
    fn emit(&self, kind: EventKind) {
        let ev = match &self.lane {
            Some(lane) => lane.record(kind),
            // Untraced runs still drive the timers view; the timestamp is
            // never read by it.
            None => Event { at_ns: 0, kind },
        };
        if let Some(t) = self.timers {
            t.on_event(self.stage, &ev);
        }
    }

    /// §III-D token-acquire wait region (closed even when the acquire
    /// fails because the pool closed).
    fn token_wait_begin(&self, group: usize, seq: usize) {
        self.emit(EventKind::Begin {
            span: SpanId::TokenWait {
                group: group as u32,
                seq: seq as u64,
            },
        });
    }

    fn token_wait_end(&self, group: usize, seq: usize) {
        self.emit(EventKind::End {
            span: SpanId::TokenWait {
                group: group as u32,
                seq: seq as u64,
            },
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }

    fn chunk_begin(&self, seq: usize) {
        self.emit(EventKind::Begin {
            span: SpanId::Chunk { seq: seq as u64 },
        });
    }

    /// A chunk completed this stage: the accounted span end carries the
    /// (wall, modeled) pair — the stage's [`StageCtx::add_time`] override
    /// or the default whole-call window.
    fn chunk_end(&self, seq: usize, default_wall: Duration, over: Option<(Duration, Duration)>) {
        let (wall, modeled) = over.unwrap_or((default_wall, default_wall));
        self.emit(EventKind::End {
            span: SpanId::Chunk { seq: seq as u64 },
            wall_ns: wall.as_nanos() as u64,
            modeled_ns: modeled.as_nanos() as u64,
            accounted: true,
        });
    }

    /// A chunk span that must not count: source exhaustion, injected
    /// crash, quiet unwind or stage error.
    fn chunk_abort(&self, seq: usize) {
        self.emit(EventKind::End {
            span: SpanId::Chunk { seq: seq as u64 },
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }

    /// A chunk notionally passed a fused (pass-through) stage this thread
    /// fronts for — zero cost, but the passage keeps fused and unfused
    /// graphs reporting identical chunk counts and modeled totals.
    fn fused_passage(&self, fused: StageId, seq: usize) {
        self.emit(EventKind::Instant {
            mark: MarkId::FusedPassage {
                fused,
                seq: seq as u64,
            },
        });
    }

    fn finish_begin(&self, seq: usize) {
        self.emit(EventKind::Begin {
            span: SpanId::Finish { seq: seq as u64 },
        });
    }

    /// The finish hook returned: accounted (with its reported timing)
    /// only if it called [`StageCtx::add_time`], mirroring the historical
    /// timer behaviour of finish hooks.
    fn finish_end(&self, seq: usize, elapsed: Duration, over: Option<(Duration, Duration)>) {
        let accounted = over.is_some();
        let (wall, modeled) = over.unwrap_or((elapsed, elapsed));
        self.emit(EventKind::End {
            span: SpanId::Finish { seq: seq as u64 },
            wall_ns: wall.as_nanos() as u64,
            modeled_ns: modeled.as_nanos() as u64,
            accounted,
        });
    }

    fn finish_abort(&self, seq: usize) {
        self.emit(EventKind::End {
            span: SpanId::Finish { seq: seq as u64 },
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }
}

/// Envelope payload: a live chunk, or the hole left by a chunk consumed
/// upstream. `Skip` keeps sequence numbers dense so every downstream
/// lane's expected-seq arithmetic — and thus deterministic reassembly —
/// survives mid-graph consumption; it carries no permits, emits no
/// events and probes no crash sites (a consumed chunk never reached
/// these stages before lanes existed either).
enum Payload<T> {
    Chunk(T),
    Skip,
}

/// A chunk travelling the graph with the permits it holds.
struct Envelope<T> {
    seq: usize,
    payload: Payload<T>,
    permits: Vec<Option<Permit>>,
}

/// One slot's worth of source lanes.
type SourceLanes<'a, T, E> = Vec<Box<dyn LaneSource<T, E> + 'a>>;
/// One slot's worth of stage lanes.
type StageLaneVec<'a, T, E> = Vec<Box<dyn Stage<T, E> + 'a>>;
/// One slot gap's channel matrix, rows/columns taken lane by lane.
type LaneMatrix<H> = Vec<Vec<Option<Vec<H>>>>;

/// Declarative wiring for one pipeline instantiation.
pub struct PipelineBuilder<'a, T, E> {
    kind: PipelineKind,
    depth: usize,
    source: Option<(StageId, SourceLanes<'a, T, E>)>,
    stages: Vec<(StageId, StageLaneVec<'a, T, E>)>,
    fused: Vec<StageId>,
    interlocks: Vec<(StageId, StageId)>,
    timers: Option<Arc<StageTimers>>,
    first_seq: usize,
    probe: Option<Box<dyn PipelineProbe + 'a>>,
    tracer: Option<(Arc<Tracer>, u32)>,
}

impl<'a, T: Send + 'a, E: Send + 'a> PipelineBuilder<'a, T, E> {
    /// Start a pipeline of the given kind and buffering level.
    pub fn new(kind: PipelineKind, buffering: Buffering) -> Self {
        PipelineBuilder {
            kind,
            depth: buffering.depth(),
            source: None,
            stages: Vec::new(),
            fused: Vec::new(),
            interlocks: Vec::new(),
            timers: None,
            first_seq: 0,
            probe: None,
            tracer: None,
        }
    }

    /// The pipeline kind this builder was created with.
    pub fn kind(&self) -> PipelineKind {
        self.kind
    }

    /// Install the source under stage slot `id` (one lane).
    pub fn source(mut self, id: StageId, source: impl Source<T, E> + 'a) -> Self {
        let lane: Box<dyn LaneSource<T, E> + 'a> = Box::new(LegacySource {
            inner: Box::new(source),
            pending: None,
        });
        self.source = Some((id, vec![lane]));
        self
    }

    /// Install `lanes.len()` source lanes under slot `id`. Claims run in
    /// global sequence order across lanes (the coordinator interaction
    /// stays deterministic); production overlaps.
    pub fn source_lanes(mut self, id: StageId, lanes: Vec<Box<dyn LaneSource<T, E> + 'a>>) -> Self {
        assert!(!lanes.is_empty(), "source_lanes needs at least one lane");
        self.source = Some((id, lanes));
        self
    }

    /// Append a stage under slot `id`. A pass-through stage
    /// ([`Stage::passthrough`]) is fused out of the graph here, at build
    /// time: it gets no thread, no channel and no timer slot.
    pub fn stage(mut self, id: StageId, stage: impl Stage<T, E> + 'a) -> Self {
        if stage.passthrough() {
            self.fused.push(id);
        } else {
            let lane: Box<dyn Stage<T, E> + 'a> = Box::new(stage);
            self.stages.push((id, vec![lane]));
        }
        self
    }

    /// Append `lanes.len()` worker lanes under slot `id`: chunk `seq`
    /// runs on lane `seq mod N`, and the slot's exit re-presents chunks
    /// to the next slot in sequence order. A widened slot is never fused
    /// (a pass-through copy has no work worth parallelizing; ask for one
    /// lane via [`PipelineBuilder::stage`] to keep fusion).
    pub fn stage_lanes(mut self, id: StageId, lanes: Vec<Box<dyn Stage<T, E> + 'a>>) -> Self {
        assert!(!lanes.is_empty(), "stage_lanes needs at least one lane");
        self.stages.push((id, lanes));
        self
    }

    /// Declare a §III-D token group spanning stages `first..=last`: at
    /// most `B` chunks live between the group's endpoints at any moment.
    /// Endpoints that were fused resolve inward to the nearest live stage.
    pub fn interlock(mut self, first: StageId, last: StageId) -> Self {
        self.interlocks.push((first, last));
        self
    }

    /// Record per-chunk stage timings, numbering chunks from `first_seq`
    /// (the reduce pipeline threads one sample table through several
    /// per-partition pipelines).
    pub fn timers(mut self, timers: Arc<StageTimers>, first_seq: usize) -> Self {
        self.timers = Some(timers);
        self.first_seq = first_seq;
        self
    }

    /// Arm the crash/abort probe (supervised runs only).
    pub fn probe(mut self, probe: impl PipelineProbe + 'a) -> Self {
        self.probe = Some(Box::new(probe));
        self
    }

    /// Attach the observability plane: every stage of this pipeline
    /// records span/instant events onto a `tracer` lane addressed as
    /// `node` × pipeline kind × stage × lane.
    pub fn tracer(mut self, tracer: Arc<Tracer>, node: u32) -> Self {
        self.tracer = Some((tracer, node));
        self
    }

    /// Run the graph to completion. Returns the first stage error in
    /// pipeline order, after the whole graph has drained and joined;
    /// re-raises stage panics.
    pub fn run(mut self) -> Result<PipelineStats, E> {
        let depth = self.depth;
        let first_seq = self.first_seq;
        let (source_id, sources) = self.source.take().expect("pipeline needs a source");
        let n_src = sources.len();
        let mut stages = std::mem::take(&mut self.stages);
        let n_live = 1 + stages.len();

        // Resolve token groups onto live stage positions (0 = source).
        let ids: Vec<StageId> = std::iter::once(source_id)
            .chain(stages.iter().map(|(id, _)| *id))
            .collect();
        let lane_counts: Vec<usize> = std::iter::once(n_src)
            .chain(stages.iter().map(|(_, lanes)| lanes.len()))
            .collect();
        let mut acquire_at: Vec<Vec<Acquirer>> = (0..n_live).map(|_| Vec::new()).collect();
        let mut release_at: Vec<Vec<usize>> = (0..n_live).map(|_| Vec::new()).collect();
        let mut gauges: Vec<Arc<InFlightGauge>> = Vec::new();
        // (acquire position, resolved first, resolved last) per group, for
        // the §III-D topology marks below.
        let mut topology: Vec<(usize, StageId, StageId)> = Vec::new();
        for &(first, last) in &self.interlocks {
            let Some(a) = ids.iter().position(|id| id.index() >= first.index()) else {
                continue;
            };
            let Some(r) = ids.iter().rposition(|id| id.index() <= last.index()) else {
                continue;
            };
            if a > r {
                continue;
            }
            let group = gauges.len();
            let gauge = Arc::new(InFlightGauge::default());
            let (tx, rx) = bounded(depth);
            for _ in 0..depth {
                tx.send(()).expect("prime interlock");
            }
            acquire_at[a].push(Acquirer {
                group,
                rx,
                tx,
                gauge: Arc::clone(&gauge),
            });
            release_at[r].push(group);
            gauges.push(gauge);
            topology.push((a, ids[a], ids[r]));
        }
        let n_groups = gauges.len();

        // Fused stages keep their crash sites: a pass-through stage has no
        // thread, but the fault plane still addresses it (a unified-memory
        // node can be told to die "at Stage"). Each fused id is probed by
        // the first live stage downstream of its slot, once per chunk
        // passage, in slot order, before that stage's own site.
        let mut crash_ids_at: Vec<Vec<StageId>> = (0..n_live).map(|_| Vec::new()).collect();
        for &fid in &self.fused {
            let pos = ids
                .iter()
                .position(|id| id.index() > fid.index())
                .unwrap_or(n_live - 1);
            crash_ids_at[pos].push(fid);
        }
        for (pos, &id) in ids.iter().enumerate() {
            crash_ids_at[pos].sort_by_key(|f| f.index());
            crash_ids_at[pos].push(id);
        }

        let probe_box = self.probe.take();
        let probe: Option<&dyn PipelineProbe> = probe_box.as_deref();
        let timers_arc = self.timers.take();
        let timers: Option<&StageTimers> = timers_arc.as_deref();
        let chunks_emitted = AtomicUsize::new(0);

        let kind = self.kind;
        let tracer = self.tracer.take();
        let events_for = |id: StageId, lane_idx: u32| StageEvents {
            stage: id,
            lane: tracer.as_ref().map(|(t, node)| {
                t.lane(LaneId {
                    job: 0,
                    node: *node,
                    realm: Realm::Pipeline {
                        kind,
                        stage: id,
                        lane: lane_idx,
                    },
                })
            }),
            timers,
        };

        // §III-D topology marks: one per token group, on the acquiring
        // stage's lane-0 sub-lane, emitted before any stage thread spawns
        // so the mark leads that lane and per-lane order stays
        // deterministic. Post-hoc analysis replays the buffer-token
        // schedule from these instead of guessing the group endpoints.
        for (group, &(pos, first, last)) in topology.iter().enumerate() {
            events_for(ids[pos], 0).emit(EventKind::Instant {
                mark: MarkId::TokenGroup {
                    group: group as u32,
                    first,
                    last,
                },
            });
        }
        // Lane-plan marks: one per widened slot, also pre-spawn on the
        // slot's lane-0 sub-lane, so analysis learns the lane count even
        // when some lanes never record a chunk.
        for (pos, &n) in lane_counts.iter().enumerate() {
            if n > 1 {
                events_for(ids[pos], 0).emit(EventKind::Instant {
                    mark: MarkId::StageLanes {
                        stage: ids[pos],
                        lanes: n as u32,
                    },
                });
            }
        }

        let mut acquire_iter = acquire_at.into_iter();
        let source_acquires = acquire_iter.next().expect("source position");
        let source_releases = release_at[0].clone();
        let mut crash_iter = crash_ids_at.into_iter();
        let source_crash_ids = crash_iter.next().expect("source crash slot");

        let result = std::thread::scope(|scope| -> Result<(), E> {
            // The handoff between adjacent slots is a K×L matrix of
            // bounded(1) channels: producer lane `a` owns row `a` (one
            // sender per consumer lane), consumer lane `b` owns column
            // `b` (one receiver per producer lane). Chunk `seq` travels
            // channel `[seq mod K][seq mod L]`; each consumer pulls its
            // expected seqs in order, which *is* the reorder buffer.
            let n_gaps = n_live.saturating_sub(1);
            let mut tx_rows: LaneMatrix<Sender<Envelope<T>>> = Vec::with_capacity(n_gaps);
            let mut rx_cols: LaneMatrix<Receiver<Envelope<T>>> = Vec::with_capacity(n_gaps);
            for g in 0..n_gaps {
                let k = lane_counts[g];
                let l = lane_counts[g + 1];
                let mut rows: Vec<Vec<Sender<Envelope<T>>>> =
                    (0..k).map(|_| Vec::with_capacity(l)).collect();
                let mut cols: Vec<Vec<Receiver<Envelope<T>>>> =
                    (0..l).map(|_| Vec::with_capacity(k)).collect();
                for row in rows.iter_mut() {
                    for col in cols.iter_mut() {
                        let (tx, rx) = bounded(1);
                        row.push(tx);
                        col.push(rx);
                    }
                }
                tx_rows.push(rows.into_iter().map(Some).collect());
                rx_cols.push(cols.into_iter().map(Some).collect());
            }

            // ---- Source lanes ----
            let chunks_emitted = &chunks_emitted;
            let src_turn: Option<Arc<Turn>> = (n_src > 1).then(|| Arc::new(Turn::new(first_seq)));
            let mut source_handles = Vec::with_capacity(n_src);
            for (lane_idx, mut src) in sources.into_iter().enumerate() {
                let txs: Option<Vec<Sender<Envelope<T>>>> = tx_rows
                    .first_mut()
                    .map(|rows| rows[lane_idx].take().expect("source tx row"));
                let acquires = source_acquires.clone();
                let releases = source_releases.clone();
                let crash_ids = source_crash_ids.clone();
                let events = events_for(source_id, lane_idx as u32);
                let turn = src_turn.clone();
                source_handles.push(scope.spawn(move || -> Result<(), E> {
                    let lane = lane_idx as u32;
                    let mut guard = TurnFinishGuard::new(turn);
                    let result = (|| -> Result<(), E> {
                        let mut iter = 0usize;
                        'produce: loop {
                            let seq = first_seq + lane_idx + iter * n_src;
                            iter += 1;
                            // Claim turns keep multi-lane claims *and*
                            // permit acquisition in global seq order
                            // (turn-before-permit: the reverse deadlocks
                            // at B=1); the expensive produce runs after
                            // the turn advances, overlapped across lanes.
                            if let Some(t) = guard.turn() {
                                if !t.wait_for(seq) {
                                    break;
                                }
                            }
                            let mut permits: Vec<Option<Permit>> =
                                (0..n_groups).map(|_| None).collect();
                            for acq in &acquires {
                                events.token_wait_begin(acq.group, seq);
                                let got = acq.acquire();
                                events.token_wait_end(acq.group, seq);
                                match got {
                                    Some(p) => permits[acq.group] = Some(p),
                                    None => break 'produce,
                                }
                            }
                            let mut ctx = StageCtx::new(source_id, seq, lane, probe);
                            if ctx.should_stop() {
                                break;
                            }
                            events.chunk_begin(seq);
                            let t0 = Instant::now();
                            let claimed = match src.claim(&mut ctx) {
                                Ok(c) => c,
                                Err(e) => {
                                    events.chunk_abort(seq);
                                    return Err(e);
                                }
                            };
                            if !claimed {
                                events.chunk_abort(seq);
                                break;
                            }
                            if let Some(t) = guard.turn() {
                                t.advance(seq + 1);
                            }
                            let chunk = match src.produce(&mut ctx) {
                                Ok(c) => c,
                                Err(e) => {
                                    events.chunk_abort(seq);
                                    return Err(e);
                                }
                            };
                            let mut wall = t0.elapsed();
                            if let Some(extra) =
                                probe.and_then(|p| p.gray_delay_on(source_id, lane, wall))
                            {
                                std::thread::sleep(extra);
                                wall += extra;
                            }
                            // Probed after production: an injected Read
                            // crash dies holding the fresh claim (the
                            // survivors requeue it via liveness).
                            if let Some(p) = probe {
                                if crash_ids.iter().any(|&cid| p.crash_fires_on(cid, lane)) {
                                    p.kill();
                                    events.chunk_abort(seq);
                                    break;
                                }
                            }
                            if ctx.stopped {
                                events.chunk_abort(seq);
                                break;
                            }
                            events.chunk_end(seq, wall, ctx.take_timing());
                            chunks_emitted.fetch_add(1, Ordering::Relaxed);
                            for &g in &releases {
                                permits[g] = None;
                            }
                            match &txs {
                                Some(txs) => {
                                    if txs[(seq - first_seq) % txs.len()]
                                        .send(Envelope {
                                            seq,
                                            payload: Payload::Chunk(chunk),
                                            permits,
                                        })
                                        .is_err()
                                    {
                                        break; // downstream stage gone
                                    }
                                }
                                None => drop(chunk), // single-stage graph
                            }
                        }
                        Ok(())
                    })();
                    if result.is_err() {
                        if let Some(p) = probe {
                            p.kill();
                        }
                    }
                    // Every source exit ends the slot: exhaustion, stop,
                    // error and downstream death all mean no later seq
                    // will ever be claimed.
                    guard.fire();
                    src.close();
                    result
                }));
            }

            // ---- Stage lanes ----
            let mut handles = Vec::new();
            for (pos, (id, lanes_vec)) in stages.drain(..).enumerate().map(|(i, s)| (i + 1, s)) {
                let l_here = lanes_vec.len();
                let k_up = lane_counts[pos - 1];
                let acquires_proto = acquire_iter.next().expect("stage position");
                let releases_proto = release_at[pos].clone();
                let crash_ids_proto = crash_iter.next().expect("stage crash slot");
                // Seq-ordered admission into the token groups this slot
                // acquires; single-lane or non-acquiring slots need none.
                let slot_turn: Option<Arc<Turn>> = (l_here > 1 && !acquires_proto.is_empty())
                    .then(|| Arc::new(Turn::new(first_seq)));
                for (lane_idx, mut stage) in lanes_vec.into_iter().enumerate() {
                    let rxs: Vec<Receiver<Envelope<T>>> = rx_cols[pos - 1][lane_idx]
                        .take()
                        .expect("stage input column");
                    let txs: Option<Vec<Sender<Envelope<T>>>> = tx_rows
                        .get_mut(pos)
                        .map(|rows| rows[lane_idx].take().expect("stage tx row"));
                    let acquires = acquires_proto.clone();
                    let releases = releases_proto.clone();
                    let crash_ids = crash_ids_proto.clone();
                    let events = events_for(id, lane_idx as u32);
                    let turn = slot_turn.clone();
                    handles.push(scope.spawn(move || -> Result<(), E> {
                        let lane = lane_idx as u32;
                        let mut guard = TurnFinishGuard::new(turn);
                        let mut last_seq = first_seq;
                        let result = (|| -> Result<(), E> {
                            let mut eos = false;
                            let mut iter = 0usize;
                            'consume: loop {
                                let expect = first_seq + lane_idx + iter * l_here;
                                iter += 1;
                                let Ok(env) = rxs[(expect - first_seq) % k_up].recv() else {
                                    eos = true;
                                    break;
                                };
                                let Envelope {
                                    seq,
                                    payload,
                                    mut permits,
                                } = env;
                                debug_assert_eq!(seq, expect, "lane transport out of order");
                                last_seq = seq;
                                let chunk = match payload {
                                    Payload::Skip => {
                                        // A hole left by a chunk consumed
                                        // upstream: advance the admission
                                        // turn (later seqs may be waiting
                                        // on it) and pass the hole on.
                                        if let Some(t) = guard.turn() {
                                            if !t.wait_for(seq) {
                                                break;
                                            }
                                            t.advance(seq + 1);
                                        }
                                        drop(permits);
                                        if let Some(txs) = &txs {
                                            if txs[(seq - first_seq) % txs.len()]
                                                .send(Envelope {
                                                    seq,
                                                    payload: Payload::Skip,
                                                    permits: Vec::new(),
                                                })
                                                .is_err()
                                            {
                                                break;
                                            }
                                        }
                                        continue;
                                    }
                                    Payload::Chunk(c) => c,
                                };
                                let mut ctx = StageCtx::new(id, seq, lane, probe);
                                if ctx.should_stop() {
                                    break;
                                }
                                if let Some(p) = probe {
                                    if crash_ids.iter().any(|&cid| p.crash_fires_on(cid, lane)) {
                                        p.kill();
                                        break;
                                    }
                                }
                                if let Some(t) = guard.turn() {
                                    if !t.wait_for(seq) {
                                        break;
                                    }
                                }
                                for acq in &acquires {
                                    events.token_wait_begin(acq.group, seq);
                                    let got = acq.acquire();
                                    events.token_wait_end(acq.group, seq);
                                    match got {
                                        Some(p) => permits[acq.group] = Some(p),
                                        None => break 'consume,
                                    }
                                }
                                if let Some(t) = guard.turn() {
                                    t.advance(seq + 1);
                                }
                                // The chunk survived every probe on this
                                // thread, so it notionally passed the fused
                                // stages this thread fronts for (all but the
                                // last crash id, which is this stage's own).
                                for &fid in &crash_ids[..crash_ids.len() - 1] {
                                    events.fused_passage(fid, seq);
                                }
                                events.chunk_begin(seq);
                                let t0 = Instant::now();
                                let out = match stage.run_chunk(chunk, &mut ctx) {
                                    Ok(o) => o,
                                    Err(e) => {
                                        events.chunk_abort(seq);
                                        return Err(e);
                                    }
                                };
                                let mut wall = t0.elapsed();
                                if let Some(extra) =
                                    probe.and_then(|p| p.gray_delay_on(id, lane, wall))
                                {
                                    std::thread::sleep(extra);
                                    wall += extra;
                                }
                                if ctx.stopped {
                                    events.chunk_abort(seq);
                                    break; // quiet unwind requested mid-chunk
                                }
                                events.chunk_end(seq, wall, ctx.take_timing());
                                for &g in &releases {
                                    permits[g] = None;
                                }
                                match (out, &txs) {
                                    (Some(chunk), Some(txs)) => {
                                        if txs[(seq - first_seq) % txs.len()]
                                            .send(Envelope {
                                                seq,
                                                payload: Payload::Chunk(chunk),
                                                permits,
                                            })
                                            .is_err()
                                        {
                                            break; // downstream stage gone
                                        }
                                    }
                                    (Some(chunk), None) => drop(chunk), // last stage
                                    (None, Some(txs)) => {
                                        // Consumed mid-graph: drop the
                                        // permits here, forward the hole.
                                        drop(permits);
                                        if txs[(seq - first_seq) % txs.len()]
                                            .send(Envelope {
                                                seq,
                                                payload: Payload::Skip,
                                                permits: Vec::new(),
                                            })
                                            .is_err()
                                        {
                                            break;
                                        }
                                    }
                                    (None, None) => {}
                                }
                            }
                            // Resolve the turn before the finish hook so
                            // sibling lanes never wait on a lane that is
                            // done consuming. End-of-stream must *not*
                            // finish the turn: siblings may still hold
                            // live seqs behind it.
                            if eos {
                                guard.disarm();
                            } else {
                                guard.fire();
                            }
                            let mut ctx = StageCtx::new(id, last_seq, lane, probe);
                            events.finish_begin(last_seq);
                            let t0 = Instant::now();
                            if let Err(e) = stage.finish(&mut ctx) {
                                events.finish_abort(last_seq);
                                return Err(e);
                            }
                            events.finish_end(last_seq, t0.elapsed(), ctx.take_timing());
                            Ok(())
                        })();
                        if result.is_err() {
                            if let Some(p) = probe {
                                p.kill();
                            }
                        }
                        guard.fire();
                        result
                    }));
                }
            }

            // Join in pipeline order (lanes of a slot in lane order);
            // surface the first error, re-raise panics only after every
            // thread is accounted for.
            let mut first_err: Option<E> = None;
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in source_handles.into_iter().chain(handles) {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(p) => {
                        if panic.is_none() {
                            panic = Some(p);
                        }
                    }
                }
            }
            if let Some(p) = panic {
                resume_unwind(p);
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });

        result?;
        Ok(PipelineStats {
            stage_threads: lane_counts.iter().sum(),
            fused: std::mem::take(&mut self.fused),
            lanes: ids
                .iter()
                .copied()
                .zip(lane_counts.iter().copied())
                .collect(),
            chunks: chunks_emitted.load(Ordering::Relaxed),
            max_in_flight: gauges.iter().map(|g| g.high_water()).max().unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A source yielding 0..n.
    struct Counter {
        next: usize,
        n: usize,
        closed: Arc<AtomicBool>,
    }

    impl Source<usize, String> for Counter {
        fn next_chunk(&mut self, _ctx: &mut StageCtx<'_>) -> Result<Option<usize>, String> {
            if self.next == self.n {
                return Ok(None);
            }
            let v = self.next;
            self.next += 1;
            Ok(Some(v))
        }

        fn close(&mut self) {
            self.closed.store(true, Ordering::SeqCst);
        }
    }

    struct AddOne;
    impl Stage<usize, String> for AddOne {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            Ok(Some(c + 1))
        }
    }

    struct Fused;
    impl Stage<usize, String> for Fused {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            Ok(Some(c))
        }
        fn passthrough(&self) -> bool {
            true
        }
    }

    struct SinkSum<'a>(&'a AtomicUsize);
    impl Stage<usize, String> for SinkSum<'_> {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            self.0.fetch_add(c, Ordering::SeqCst);
            Ok(None)
        }
    }

    /// Passes chunks through after a parity-dependent delay, so two lanes
    /// finish out of order unless the slot exit reassembles by seq.
    struct Jitter;
    impl Stage<usize, String> for Jitter {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            if c.is_multiple_of(2) {
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(Some(c))
        }
    }

    /// Records arrival order at the pipeline exit.
    struct SinkOrder<'a>(&'a Mutex<Vec<usize>>);
    impl Stage<usize, String> for SinkOrder<'_> {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            self.0.lock().push(c);
            Ok(None)
        }
    }

    fn jitter_lanes(n: usize) -> Vec<Box<dyn Stage<usize, String>>> {
        (0..n)
            .map(|_| Box::new(Jitter) as Box<dyn Stage<usize, String>>)
            .collect()
    }

    #[test]
    fn fused_stages_spawn_no_threads_and_chunks_flow_in_order() {
        let sum = AtomicUsize::new(0);
        let closed = Arc::new(AtomicBool::new(false));
        let stats = PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 10,
                    closed: Arc::clone(&closed),
                },
            )
            .stage(StageId::Stage, Fused)
            .stage(StageId::Kernel, AddOne)
            .stage(StageId::Retrieve, Fused)
            .stage(StageId::Partition, SinkSum(&sum))
            .interlock(StageId::Input, StageId::Kernel)
            .interlock(StageId::Kernel, StageId::Partition)
            .run()
            .expect("pipeline run");
        assert_eq!(stats.stage_threads, 3);
        assert_eq!(stats.fused, vec![StageId::Stage, StageId::Retrieve]);
        assert_eq!(stats.chunks, 10);
        assert_eq!(sum.load(Ordering::SeqCst), (1..=10).sum::<usize>());
        assert!(closed.load(Ordering::SeqCst), "source close hook must run");
    }

    #[test]
    fn interlock_bounds_in_flight_chunks() {
        for (buffering, b) in [
            (Buffering::Single, 1),
            (Buffering::Double, 2),
            (Buffering::Triple, 3),
        ] {
            let sum = AtomicUsize::new(0);
            let stats = PipelineBuilder::new(PipelineKind::Map, buffering)
                .source(
                    StageId::Input,
                    Counter {
                        next: 0,
                        n: 32,
                        closed: Arc::new(AtomicBool::new(false)),
                    },
                )
                .stage(StageId::Kernel, AddOne)
                .stage(StageId::Partition, SinkSum(&sum))
                .interlock(StageId::Input, StageId::Kernel)
                .interlock(StageId::Kernel, StageId::Partition)
                .run()
                .expect("pipeline run");
            assert!(stats.max_in_flight >= 1);
            assert!(
                stats.max_in_flight <= b,
                "{buffering:?}: {} chunks in flight, interlock allows {b}",
                stats.max_in_flight
            );
        }
    }

    #[test]
    fn stage_error_unwinds_the_graph_and_wins_in_pipeline_order() {
        struct FailAt(usize);
        impl Stage<usize, String> for FailAt {
            fn run_chunk(
                &mut self,
                c: usize,
                _ctx: &mut StageCtx<'_>,
            ) -> Result<Option<usize>, String> {
                if c == self.0 {
                    return Err(format!("boom at {c}"));
                }
                Ok(Some(c))
            }
        }
        let sum = AtomicUsize::new(0);
        let closed = Arc::new(AtomicBool::new(false));
        let err = PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 100,
                    closed: Arc::clone(&closed),
                },
            )
            .stage(StageId::Kernel, FailAt(3))
            .stage(StageId::Partition, SinkSum(&sum))
            .interlock(StageId::Input, StageId::Kernel)
            .run()
            .expect_err("kernel error must surface");
        assert_eq!(err, "boom at 3");
        assert!(
            closed.load(Ordering::SeqCst),
            "close runs on failure paths too"
        );
    }

    #[test]
    fn timers_default_to_whole_call_and_honor_add_time() {
        struct Timed;
        impl Stage<usize, String> for Timed {
            fn run_chunk(
                &mut self,
                c: usize,
                ctx: &mut StageCtx<'_>,
            ) -> Result<Option<usize>, String> {
                ctx.add_time(Duration::from_millis(5), Duration::from_millis(9));
                Ok(Some(c))
            }
        }
        let sum = AtomicUsize::new(0);
        let timers = Arc::new(StageTimers::new());
        PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 4,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage(StageId::Kernel, Timed)
            .stage(StageId::Partition, SinkSum(&sum))
            .timers(Arc::clone(&timers), 0)
            .run()
            .expect("pipeline run");
        assert_eq!(timers.chunks(StageId::Input), 4);
        assert_eq!(timers.chunks(StageId::Kernel), 4);
        assert_eq!(timers.wall(StageId::Kernel), Duration::from_millis(20));
        assert_eq!(timers.modeled(StageId::Kernel), Duration::from_millis(36));
        // Default timing recorded something for the untimed stages.
        assert_eq!(timers.chunks(StageId::Partition), 4);
    }

    #[test]
    fn retry_helper_rolls_back_and_honors_the_budget() {
        let mut state = Vec::<u32>::new();
        let calls = AtomicUsize::new(0);
        let (value, retried) = run_task_with_retries(
            2,
            &mut state,
            |s| {
                s.push(7);
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                s.len()
            },
            |s| s.clear(),
        )
        .expect("within budget");
        assert_eq!(retried, 2);
        assert_eq!(
            value, 1,
            "rollback cleared partial output before the good attempt"
        );

        let mut state = ();
        let err = run_task_with_retries(1, &mut state, |_| -> usize { panic!("always") }, |_| {})
            .expect_err("budget exhausted");
        assert_eq!(err.attempts, 2);
    }

    #[test]
    fn fused_stage_crash_sites_are_probed_by_the_next_live_stage() {
        struct CrashAtFused {
            dead: Arc<AtomicBool>,
            passages: AtomicUsize,
        }
        impl PipelineProbe for CrashAtFused {
            fn should_abort(&self, _stage: StageId) -> bool {
                self.dead.load(Ordering::SeqCst)
            }
            fn crash_fires(&self, stage: StageId) -> bool {
                // The Stage slot is fused out of the graph below; its site
                // must still see passages.
                stage == StageId::Stage && self.passages.fetch_add(1, Ordering::SeqCst) == 1
            }
            fn kill(&self) {
                self.dead.store(true, Ordering::SeqCst);
            }
        }
        let dead = Arc::new(AtomicBool::new(false));
        let sum = AtomicUsize::new(0);
        PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 20,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage(StageId::Stage, Fused)
            .stage(StageId::Kernel, AddOne)
            .stage(StageId::Partition, SinkSum(&sum))
            .probe(CrashAtFused {
                dead: Arc::clone(&dead),
                passages: AtomicUsize::new(0),
            })
            .run()
            .expect("injected crash drains quietly");
        assert!(dead.load(Ordering::SeqCst), "fused Stage site never fired");
        assert!(
            sum.load(Ordering::SeqCst) <= 2 + 3,
            "work after the crash must be discarded"
        );
    }

    #[test]
    fn probe_crash_unwinds_quietly_and_kill_is_sticky() {
        struct CrashAtKernel {
            dead: Arc<AtomicBool>,
            passages: AtomicUsize,
        }
        impl PipelineProbe for CrashAtKernel {
            fn should_abort(&self, _stage: StageId) -> bool {
                self.dead.load(Ordering::SeqCst)
            }
            fn crash_fires(&self, stage: StageId) -> bool {
                stage == StageId::Kernel && self.passages.fetch_add(1, Ordering::SeqCst) == 2
            }
            fn kill(&self) {
                self.dead.store(true, Ordering::SeqCst);
            }
        }
        let probe_dead = Arc::new(AtomicBool::new(false));
        let probe = CrashAtKernel {
            dead: Arc::clone(&probe_dead),
            passages: AtomicUsize::new(0),
        };
        let sum = AtomicUsize::new(0);
        let closed = Arc::new(AtomicBool::new(false));
        // The run itself succeeds (the crash is a quiet unwind — the
        // phase-level code turns the dead flag into NodeLost).
        PipelineBuilder::new(PipelineKind::Map, Buffering::Single)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 50,
                    closed: Arc::clone(&closed),
                },
            )
            .stage(StageId::Kernel, AddOne)
            .stage(StageId::Partition, SinkSum(&sum))
            .probe(probe)
            .run()
            .expect("injected crash drains quietly");
        assert!(closed.load(Ordering::SeqCst));
        // At most the chunks before the crash passage reached the sink; a
        // dead node's remaining in-flight chunks are discarded, so the
        // sink may quietly drop work already queued when the kill landed.
        assert!(sum.load(Ordering::SeqCst) <= 1 + 2);
        assert!(probe_dead.load(Ordering::SeqCst));
    }

    #[test]
    fn multi_lane_stage_reassembles_in_seq_order_downstream() {
        let order = Mutex::new(Vec::new());
        let stats = PipelineBuilder::new(PipelineKind::Map, Buffering::Triple)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 24,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage_lanes(StageId::Kernel, jitter_lanes(2))
            .stage(StageId::Partition, SinkOrder(&order))
            .run()
            .expect("pipeline run");
        assert_eq!(stats.stage_threads, 4);
        assert_eq!(
            stats.lanes,
            vec![
                (StageId::Input, 1),
                (StageId::Kernel, 2),
                (StageId::Partition, 1)
            ]
        );
        assert_eq!(stats.chunks, 24);
        // Even chunks are slower on lane 0 than odd chunks on lane 1, yet
        // the single-lane sink sees global sequence order.
        assert_eq!(*order.lock(), (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn multi_lane_acquiring_stage_respects_single_buffering_without_deadlock() {
        let sum = AtomicUsize::new(0);
        let stats = PipelineBuilder::new(PipelineKind::Map, Buffering::Single)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 32,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage_lanes(StageId::Kernel, jitter_lanes(2))
            .stage(StageId::Partition, SinkSum(&sum))
            .interlock(StageId::Input, StageId::Kernel)
            .interlock(StageId::Kernel, StageId::Partition)
            .run()
            .expect("pipeline run");
        // Two kernel lanes contend for B=1 output-group permits: the
        // seq-ordered admission turn keeps that deadlock-free and the
        // interlock bound intact.
        assert_eq!(stats.chunks, 32);
        assert!(stats.max_in_flight <= 1);
        assert_eq!(sum.load(Ordering::SeqCst), (0..32).sum::<usize>());
    }

    #[test]
    fn consumed_chunks_leave_skips_that_keep_lanes_aligned() {
        struct DropOdd;
        impl Stage<usize, String> for DropOdd {
            fn run_chunk(
                &mut self,
                c: usize,
                _ctx: &mut StageCtx<'_>,
            ) -> Result<Option<usize>, String> {
                if c % 2 == 1 {
                    Ok(None)
                } else {
                    Ok(Some(c))
                }
            }
        }
        let order = Mutex::new(Vec::new());
        let stats = PipelineBuilder::new(PipelineKind::Map, Buffering::Triple)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 20,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage_lanes(
                StageId::Kernel,
                (0..2)
                    .map(|_| Box::new(DropOdd) as Box<dyn Stage<usize, String>>)
                    .collect(),
            )
            .stage_lanes(StageId::Retrieve, jitter_lanes(2))
            .stage(StageId::Partition, SinkOrder(&order))
            .run()
            .expect("pipeline run");
        // Kernel lane 1 consumes every odd seq; the Skip holes keep the
        // retrieve lanes' expected-seq arithmetic aligned, so the sink
        // still sees the survivors in global order.
        assert_eq!(stats.chunks, 20);
        assert_eq!(*order.lock(), (0..20).step_by(2).collect::<Vec<_>>());
    }

    /// Two lanes drawing from one shared counter: the claim turn must
    /// serialize claims in seq order, so value == seq and the sink sees
    /// 0..n in order even though production is jittered.
    struct SharedCounter {
        next: Arc<AtomicUsize>,
        n: usize,
        pending: Option<usize>,
    }

    impl LaneSource<usize, String> for SharedCounter {
        fn claim(&mut self, _ctx: &mut StageCtx<'_>) -> Result<bool, String> {
            let v = self.next.fetch_add(1, Ordering::SeqCst);
            if v >= self.n {
                return Ok(false);
            }
            self.pending = Some(v);
            Ok(true)
        }

        fn produce(&mut self, _ctx: &mut StageCtx<'_>) -> Result<usize, String> {
            let v = self.pending.take().expect("claimed");
            if v.is_multiple_of(2) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(v)
        }
    }

    #[test]
    fn multi_lane_source_claims_in_global_seq_order() {
        let order = Mutex::new(Vec::new());
        let next = Arc::new(AtomicUsize::new(0));
        let lanes: Vec<Box<dyn LaneSource<usize, String>>> = (0..2)
            .map(|_| {
                Box::new(SharedCounter {
                    next: Arc::clone(&next),
                    n: 16,
                    pending: None,
                }) as Box<dyn LaneSource<usize, String>>
            })
            .collect();
        let stats = PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source_lanes(StageId::Input, lanes)
            .stage(StageId::Partition, SinkOrder(&order))
            .interlock(StageId::Input, StageId::Partition)
            .run()
            .expect("pipeline run");
        assert_eq!(stats.chunks, 16);
        assert_eq!(stats.lanes[0], (StageId::Input, 2));
        assert_eq!(*order.lock(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn lane_addressed_crash_fires_only_on_its_lane() {
        struct CrashLaneOne {
            dead: Arc<AtomicBool>,
            fired: AtomicUsize,
        }
        impl PipelineProbe for CrashLaneOne {
            fn should_abort(&self, _stage: StageId) -> bool {
                self.dead.load(Ordering::SeqCst)
            }
            fn crash_fires(&self, _stage: StageId) -> bool {
                false
            }
            fn crash_fires_on(&self, stage: StageId, lane: u32) -> bool {
                stage == StageId::Kernel
                    && lane == 1
                    && self.fired.fetch_add(1, Ordering::SeqCst) == 0
            }
            fn kill(&self) {
                self.dead.store(true, Ordering::SeqCst);
            }
        }
        let dead = Arc::new(AtomicBool::new(false));
        let sum = AtomicUsize::new(0);
        PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 40,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage_lanes(StageId::Kernel, jitter_lanes(2))
            .stage(StageId::Partition, SinkSum(&sum))
            .probe(CrashLaneOne {
                dead: Arc::clone(&dead),
                fired: AtomicUsize::new(0),
            })
            .run()
            .expect("lane-pinned crash drains quietly");
        assert!(
            dead.load(Ordering::SeqCst),
            "kernel lane 1's first passage must fire the pinned crash"
        );
    }
}
