//! The bounded-stage executor.
//!
//! A pipeline is a pulling [`Source`] followed by a chain of [`Stage`]s.
//! The executor spawns one scoped thread per *live* stage (pass-through
//! stages are fused out at build time), links them with bounded handoff
//! channels, and owns every cross-cutting concern the stages themselves
//! used to copy-paste:
//!
//! * **§III-D buffer tokens** — each [`PipelineBuilder::interlock`] group
//!   (e.g. the map pipeline's input group Input→Kernel and output group
//!   Kernel→Partition) is a semaphore of `B =`
//!   [`Buffering::depth`](crate::Buffering::depth) permits. A chunk
//!   acquires the group's permit before its first stage runs and carries
//!   it until its last stage completes, so at most `B` chunks are ever in
//!   flight inside the group — enforced here, not by ad-hoc channel
//!   capacities. A high-water gauge per group backs the property test
//!   pinning that invariant.
//! * **Crash probing and dead/abort flags** — between chunks the executor
//!   consults the [`PipelineProbe`]: `should_abort` unwinds the stage
//!   quietly (marking the node dead), `crash_fires` injects a node death
//!   at this stage's crash site. The source is probed *after* it produces
//!   a chunk, so an injected Read crash dies holding the fresh claim.
//! * **Timing** — every chunk's pass through a stage is recorded into
//!   [`StageTimers`]; the default window is the whole `run_chunk` call,
//!   and a stage needing a narrower one calls [`StageCtx::add_time`].
//! * **Unwinding** — a stage error kills the probe, drops the stage's
//!   channel endpoints and lets the graph drain deterministically:
//!   upstream sends fail, downstream receives drain, queued chunks drop
//!   (returning their permits), and the first error in stage order is
//!   surfaced. Stage panics propagate after every thread has been joined.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};

use gw_trace::{Event, EventKind, Lane, LaneId, MarkId, Realm, SpanId, Tracer};

use crate::timers::{StageId, StageTimers};
use crate::{Buffering, PipelineKind};

/// A stage's view of the executor while it handles one chunk.
pub struct StageCtx<'p> {
    stage: StageId,
    seq: usize,
    probe: Option<&'p dyn PipelineProbe>,
    timing: Option<(Duration, Duration)>,
    stopped: bool,
}

impl<'p> StageCtx<'p> {
    fn new(stage: StageId, seq: usize, probe: Option<&'p dyn PipelineProbe>) -> Self {
        StageCtx {
            stage,
            seq,
            probe,
            timing: None,
            stopped: false,
        }
    }

    /// Sequence number of the chunk being handled (monotonic from the
    /// builder's `first_seq`).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// The stage slot this context belongs to.
    pub fn stage(&self) -> StageId {
        self.stage
    }

    /// Override the default whole-call timing window for this chunk with
    /// an explicit (wall, modeled) pair. Multiple calls accumulate.
    pub fn add_time(&mut self, wall: Duration, modeled: Duration) {
        let (w, m) = self.timing.unwrap_or((Duration::ZERO, Duration::ZERO));
        self.timing = Some((w + wall, m + modeled));
    }

    /// Probe the dead/abort flags; returns `true` (after marking the node
    /// dead) when the stage must unwind. Blocking sources call this inside
    /// their wait loops; the executor calls it once per chunk.
    pub fn should_stop(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if let Some(p) = self.probe {
            if p.should_abort(self.stage) {
                p.kill();
                self.stopped = true;
                return true;
            }
        }
        false
    }

    /// Ask the executor to unwind this stage quietly after the current
    /// call returns (e.g. a recycling pool closed because a downstream
    /// stage died).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Probe the task-level injected fault for this node (the reduce-site
    /// fault of the chaos plane); `false` without a probe.
    pub fn task_fault_fires(&self) -> bool {
        self.probe.is_some_and(|p| p.task_fault_fires())
    }

    fn take_timing(&mut self) -> Option<(Duration, Duration)> {
        self.timing.take()
    }
}

/// The executor's hook into the fault plane. One implementation adapts the
/// chaos `CrashSite` plan and the coordinator's dead/abort flags; the
/// executor itself stays free of any chaos dependency.
pub trait PipelineProbe: Send + Sync {
    /// Checked between chunks (and by blocking sources): `true` = this
    /// stage must unwind. `stage` lets implementations fold in
    /// stage-specific liveness (the map input stage also watches the
    /// coordinator's dead/abort flags).
    fn should_abort(&self, stage: StageId) -> bool;

    /// Crash-site probe for `stage`, counted per passage: `true` = the
    /// node dies now.
    fn crash_fires(&self, stage: StageId) -> bool;

    /// Mark the node dead. Called when a crash fires, when `should_abort`
    /// trips, and when any stage returns an error.
    fn kill(&self);

    /// Task-level injected fault, probed by kernel stages inside their
    /// retry scope (a panic recovered by the §III-E budget, not a node
    /// death).
    fn task_fault_fires(&self) -> bool {
        false
    }

    /// Gray-failure probe, called after `stage` processed a chunk in
    /// `wall` time: `Some(extra)` = this passage must be stretched by
    /// sleeping `extra` (a slowdown or transient stall is scheduled).
    /// The default keeps unarmed pipelines zero-cost.
    fn gray_delay(&self, stage: StageId, wall: Duration) -> Option<Duration> {
        let _ = (stage, wall);
        None
    }
}

/// Head of a pipeline: pulls work into the graph.
pub trait Source<T, E>: Send {
    /// Produce the next chunk, or `Ok(None)` when the input is exhausted.
    /// The executor admits the chunk into its token group *before* this
    /// call, so production itself is interlocked (§III-D: a split is only
    /// read into a free buffer set). Long waits inside this call should
    /// poll [`StageCtx::should_stop`].
    fn next_chunk(&mut self, ctx: &mut StageCtx<'_>) -> Result<Option<T>, E>;

    /// Runs on every exit path — normal exhaustion, downstream failure,
    /// error or injected crash — before the source's output closes. The
    /// map source deregisters from the coordinator here.
    fn close(&mut self) {}
}

/// One stage of a pipeline.
pub trait Stage<T, E>: Send {
    /// Handle one chunk. `Ok(Some)` forwards a chunk downstream (dropped
    /// if this is the last stage); `Ok(None)` consumes it.
    fn run_chunk(&mut self, chunk: T, ctx: &mut StageCtx<'_>) -> Result<Option<T>, E>;

    /// Build-time fusion hook: a `true` return removes the stage from the
    /// graph entirely — no thread, no channel hop, no timer slot (the
    /// paper's "the input stager is disabled" on unified memory). The
    /// stage's *crash site* survives fusion: the next live stage probes it
    /// on the fused stage's behalf, so fault plans address all five slots
    /// regardless of the memory model.
    fn passthrough(&self) -> bool {
        false
    }

    /// Runs once the stage stops consuming without an error of its own —
    /// input drained or the pipeline unwinding quietly. `ctx.seq()` is the
    /// last chunk seen; [`StageCtx::add_time`] here records an extra timer
    /// sample against it (the reduce output stage times its final write).
    fn finish(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), E> {
        let _ = ctx;
        Ok(())
    }
}

/// Borrow half of a recycling payload pool: blocks for the next free
/// payload, `None` once every [`PoolPut`] is gone (the returning stage
/// died and the pool can never refill).
pub struct PoolGet<P>(Receiver<P>);

/// Return half of a recycling payload pool.
pub struct PoolPut<P>(Sender<P>);

impl<P> PoolGet<P> {
    /// Next free payload; `None` when the pool closed.
    pub fn take(&self) -> Option<P> {
        self.0.recv().ok()
    }
}

impl<P> PoolPut<P> {
    /// Return a payload to the pool (dropped if no taker remains).
    pub fn put(&self, payload: P) {
        let _ = self.0.send(payload);
    }
}

/// Build a recycling pool primed with `payloads` (the §III-D buffer sets:
/// device staging buffers, output collectors). Sized pools never block a
/// permit holder: with `B` payloads and `B` executor permits over the same
/// stages, every holder of a payload also holds a permit.
pub fn token_pool<P>(payloads: impl IntoIterator<Item = P>) -> (PoolGet<P>, PoolPut<P>) {
    let payloads: Vec<P> = payloads.into_iter().collect();
    let (tx, rx) = bounded(payloads.len().max(1));
    for p in payloads {
        tx.send(p).expect("prime token pool");
    }
    (PoolGet(rx), PoolPut(tx))
}

/// Witness that a retried task exhausted its §III-E re-execution budget.
#[derive(Debug)]
pub struct RetryExhausted {
    /// Total attempts made (budget + 1).
    pub attempts: usize,
}

/// The §III-E task re-execution loop shared by both kernel stages: run
/// `attempt` under `catch_unwind`; on a panic, discard the attempt's
/// partial output via `rollback` and re-execute, up to `budget` times.
/// Returns the result and how many retries were spent, or
/// [`RetryExhausted`] once the budget is gone.
pub fn run_task_with_retries<C, R>(
    budget: usize,
    state: &mut C,
    mut attempt: impl FnMut(&mut C) -> R,
    mut rollback: impl FnMut(&mut C),
) -> Result<(R, usize), RetryExhausted> {
    let mut retried = 0usize;
    loop {
        match catch_unwind(AssertUnwindSafe(|| attempt(state))) {
            Ok(r) => return Ok((r, retried)),
            Err(_) if retried < budget => {
                retried += 1;
                rollback(state);
            }
            Err(_) => {
                return Err(RetryExhausted {
                    attempts: retried + 1,
                })
            }
        }
    }
}

/// Outcome of a completed pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineStats {
    /// Threads the graph actually spawned (source + live stages). Fused
    /// stages spawn nothing: a unified-memory map pipeline runs on 3
    /// threads, not 5.
    pub stage_threads: usize,
    /// Stages fused out of the graph at build time.
    pub fused: Vec<StageId>,
    /// Chunks emitted by the source.
    pub chunks: usize,
    /// High-water mark of in-flight chunks across the token groups; never
    /// exceeds the buffering depth `B`.
    pub max_in_flight: usize,
}

/// In-flight gauge for one token group (current + high-water).
#[derive(Debug, Default)]
struct InFlightGauge {
    current: AtomicUsize,
    max: AtomicUsize,
}

impl InFlightGauge {
    fn inc(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.max.fetch_max(now, Ordering::SeqCst);
    }

    fn dec(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }

    fn high_water(&self) -> usize {
        self.max.load(Ordering::SeqCst)
    }
}

/// One held token-group slot; returns itself (and decrements the gauge)
/// on drop, so unwinding anywhere releases the interlock.
struct Permit {
    slot: Sender<()>,
    gauge: Arc<InFlightGauge>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gauge.dec();
        let _ = self.slot.send(());
    }
}

/// The acquire side of one token group, owned by the thread of the
/// group's first stage.
struct Acquirer {
    group: usize,
    rx: Receiver<()>,
    tx: Sender<()>,
    gauge: Arc<InFlightGauge>,
}

impl Acquirer {
    fn acquire(&self) -> Option<Permit> {
        self.rx.recv().ok()?;
        self.gauge.inc();
        Some(Permit {
            slot: self.tx.clone(),
            gauge: Arc::clone(&self.gauge),
        })
    }
}

/// Per-stage event emitter: the executor constructs each event **once**
/// and feeds the same value to both consumers — the tracer lane (when
/// tracing is armed) and the [`StageTimers`] derived view. Neither
/// consumer keeps bookkeeping of its own inside pipeline code; wall and
/// modeled time flow from this one emission point.
struct StageEvents<'t> {
    stage: StageId,
    lane: Option<Lane>,
    timers: Option<&'t StageTimers>,
}

impl StageEvents<'_> {
    fn emit(&self, kind: EventKind) {
        let ev = match &self.lane {
            Some(lane) => lane.record(kind),
            // Untraced runs still drive the timers view; the timestamp is
            // never read by it.
            None => Event { at_ns: 0, kind },
        };
        if let Some(t) = self.timers {
            t.on_event(self.stage, &ev);
        }
    }

    /// §III-D token-acquire wait region (closed even when the acquire
    /// fails because the pool closed).
    fn token_wait_begin(&self, group: usize, seq: usize) {
        self.emit(EventKind::Begin {
            span: SpanId::TokenWait {
                group: group as u32,
                seq: seq as u64,
            },
        });
    }

    fn token_wait_end(&self, group: usize, seq: usize) {
        self.emit(EventKind::End {
            span: SpanId::TokenWait {
                group: group as u32,
                seq: seq as u64,
            },
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }

    fn chunk_begin(&self, seq: usize) {
        self.emit(EventKind::Begin {
            span: SpanId::Chunk { seq: seq as u64 },
        });
    }

    /// A chunk completed this stage: the accounted span end carries the
    /// (wall, modeled) pair — the stage's [`StageCtx::add_time`] override
    /// or the default whole-call window.
    fn chunk_end(&self, seq: usize, default_wall: Duration, over: Option<(Duration, Duration)>) {
        let (wall, modeled) = over.unwrap_or((default_wall, default_wall));
        self.emit(EventKind::End {
            span: SpanId::Chunk { seq: seq as u64 },
            wall_ns: wall.as_nanos() as u64,
            modeled_ns: modeled.as_nanos() as u64,
            accounted: true,
        });
    }

    /// A chunk span that must not count: source exhaustion, injected
    /// crash, quiet unwind or stage error.
    fn chunk_abort(&self, seq: usize) {
        self.emit(EventKind::End {
            span: SpanId::Chunk { seq: seq as u64 },
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }

    /// A chunk notionally passed a fused (pass-through) stage this thread
    /// fronts for — zero cost, but the passage keeps fused and unfused
    /// graphs reporting identical chunk counts and modeled totals.
    fn fused_passage(&self, fused: StageId, seq: usize) {
        self.emit(EventKind::Instant {
            mark: MarkId::FusedPassage {
                fused,
                seq: seq as u64,
            },
        });
    }

    fn finish_begin(&self, seq: usize) {
        self.emit(EventKind::Begin {
            span: SpanId::Finish { seq: seq as u64 },
        });
    }

    /// The finish hook returned: accounted (with its reported timing)
    /// only if it called [`StageCtx::add_time`], mirroring the historical
    /// timer behaviour of finish hooks.
    fn finish_end(&self, seq: usize, elapsed: Duration, over: Option<(Duration, Duration)>) {
        let accounted = over.is_some();
        let (wall, modeled) = over.unwrap_or((elapsed, elapsed));
        self.emit(EventKind::End {
            span: SpanId::Finish { seq: seq as u64 },
            wall_ns: wall.as_nanos() as u64,
            modeled_ns: modeled.as_nanos() as u64,
            accounted,
        });
    }

    fn finish_abort(&self, seq: usize) {
        self.emit(EventKind::End {
            span: SpanId::Finish { seq: seq as u64 },
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }
}

/// Both endpoints of one inter-stage handoff channel, taken (`Option`)
/// by the adjacent stage threads as the graph is wired.
type Link<T> = (Option<Sender<Envelope<T>>>, Option<Receiver<Envelope<T>>>);

/// A chunk travelling the graph with the permits it holds.
struct Envelope<T> {
    seq: usize,
    chunk: T,
    permits: Vec<Option<Permit>>,
}

/// Declarative wiring for one pipeline instantiation.
pub struct PipelineBuilder<'a, T, E> {
    kind: PipelineKind,
    depth: usize,
    source: Option<(StageId, Box<dyn Source<T, E> + 'a>)>,
    stages: Vec<(StageId, Box<dyn Stage<T, E> + 'a>)>,
    fused: Vec<StageId>,
    interlocks: Vec<(StageId, StageId)>,
    timers: Option<Arc<StageTimers>>,
    first_seq: usize,
    probe: Option<Box<dyn PipelineProbe + 'a>>,
    tracer: Option<(Arc<Tracer>, u32)>,
}

impl<'a, T: Send + 'a, E: Send + 'a> PipelineBuilder<'a, T, E> {
    /// Start a pipeline of the given kind and buffering level.
    pub fn new(kind: PipelineKind, buffering: Buffering) -> Self {
        PipelineBuilder {
            kind,
            depth: buffering.depth(),
            source: None,
            stages: Vec::new(),
            fused: Vec::new(),
            interlocks: Vec::new(),
            timers: None,
            first_seq: 0,
            probe: None,
            tracer: None,
        }
    }

    /// The pipeline kind this builder was created with.
    pub fn kind(&self) -> PipelineKind {
        self.kind
    }

    /// Install the source under stage slot `id`.
    pub fn source(mut self, id: StageId, source: impl Source<T, E> + 'a) -> Self {
        self.source = Some((id, Box::new(source)));
        self
    }

    /// Append a stage under slot `id`. A pass-through stage
    /// ([`Stage::passthrough`]) is fused out of the graph here, at build
    /// time: it gets no thread, no channel and no timer slot.
    pub fn stage(mut self, id: StageId, stage: impl Stage<T, E> + 'a) -> Self {
        if stage.passthrough() {
            self.fused.push(id);
        } else {
            self.stages.push((id, Box::new(stage)));
        }
        self
    }

    /// Declare a §III-D token group spanning stages `first..=last`: at
    /// most `B` chunks live between the group's endpoints at any moment.
    /// Endpoints that were fused resolve inward to the nearest live stage.
    pub fn interlock(mut self, first: StageId, last: StageId) -> Self {
        self.interlocks.push((first, last));
        self
    }

    /// Record per-chunk stage timings, numbering chunks from `first_seq`
    /// (the reduce pipeline threads one sample table through several
    /// per-partition pipelines).
    pub fn timers(mut self, timers: Arc<StageTimers>, first_seq: usize) -> Self {
        self.timers = Some(timers);
        self.first_seq = first_seq;
        self
    }

    /// Arm the crash/abort probe (supervised runs only).
    pub fn probe(mut self, probe: impl PipelineProbe + 'a) -> Self {
        self.probe = Some(Box::new(probe));
        self
    }

    /// Attach the observability plane: every stage of this pipeline
    /// records span/instant events onto a `tracer` lane addressed as
    /// `node` × pipeline kind × stage.
    pub fn tracer(mut self, tracer: Arc<Tracer>, node: u32) -> Self {
        self.tracer = Some((tracer, node));
        self
    }

    /// Run the graph to completion. Returns the first stage error in
    /// pipeline order, after the whole graph has drained and joined;
    /// re-raises stage panics.
    pub fn run(mut self) -> Result<PipelineStats, E> {
        let depth = self.depth;
        let first_seq = self.first_seq;
        let (source_id, mut source) = self.source.take().expect("pipeline needs a source");
        let mut stages = std::mem::take(&mut self.stages);
        let n_live = 1 + stages.len();

        // Resolve token groups onto live stage positions (0 = source).
        let ids: Vec<StageId> = std::iter::once(source_id)
            .chain(stages.iter().map(|(id, _)| *id))
            .collect();
        let mut acquire_at: Vec<Vec<Acquirer>> = (0..n_live).map(|_| Vec::new()).collect();
        let mut release_at: Vec<Vec<usize>> = (0..n_live).map(|_| Vec::new()).collect();
        let mut gauges: Vec<Arc<InFlightGauge>> = Vec::new();
        // (acquire position, resolved first, resolved last) per group, for
        // the §III-D topology marks below.
        let mut topology: Vec<(usize, StageId, StageId)> = Vec::new();
        for &(first, last) in &self.interlocks {
            let Some(a) = ids.iter().position(|id| id.index() >= first.index()) else {
                continue;
            };
            let Some(r) = ids.iter().rposition(|id| id.index() <= last.index()) else {
                continue;
            };
            if a > r {
                continue;
            }
            let group = gauges.len();
            let gauge = Arc::new(InFlightGauge::default());
            let (tx, rx) = bounded(depth);
            for _ in 0..depth {
                tx.send(()).expect("prime interlock");
            }
            acquire_at[a].push(Acquirer {
                group,
                rx,
                tx,
                gauge: Arc::clone(&gauge),
            });
            release_at[r].push(group);
            gauges.push(gauge);
            topology.push((a, ids[a], ids[r]));
        }
        let n_groups = gauges.len();

        // Fused stages keep their crash sites: a pass-through stage has no
        // thread, but the fault plane still addresses it (a unified-memory
        // node can be told to die "at Stage"). Each fused id is probed by
        // the first live stage downstream of its slot, once per chunk
        // passage, in slot order, before that stage's own site.
        let mut crash_ids_at: Vec<Vec<StageId>> = (0..n_live).map(|_| Vec::new()).collect();
        for &fid in &self.fused {
            let pos = ids
                .iter()
                .position(|id| id.index() > fid.index())
                .unwrap_or(n_live - 1);
            crash_ids_at[pos].push(fid);
        }
        for (pos, &id) in ids.iter().enumerate() {
            crash_ids_at[pos].sort_by_key(|f| f.index());
            crash_ids_at[pos].push(id);
        }

        let probe_box = self.probe.take();
        let probe: Option<&dyn PipelineProbe> = probe_box.as_deref();
        let timers_arc = self.timers.take();
        let timers: Option<&StageTimers> = timers_arc.as_deref();
        let chunks_emitted = AtomicUsize::new(0);

        let kind = self.kind;
        let tracer = self.tracer.take();
        let events_for = |id: StageId| StageEvents {
            stage: id,
            lane: tracer.as_ref().map(|(t, node)| {
                t.lane(LaneId {
                    node: *node,
                    realm: Realm::Pipeline { kind, stage: id },
                })
            }),
            timers,
        };
        let source_events = events_for(source_id);

        // §III-D topology marks: one per token group, on the acquiring
        // stage's lane, emitted before any stage thread spawns so the mark
        // leads that lane and per-lane order stays deterministic. Post-hoc
        // analysis replays the buffer-token schedule from these instead of
        // guessing the group endpoints.
        for (group, &(pos, first, last)) in topology.iter().enumerate() {
            events_for(ids[pos]).emit(EventKind::Instant {
                mark: MarkId::TokenGroup {
                    group: group as u32,
                    first,
                    last,
                },
            });
        }

        let mut acquire_iter = acquire_at.into_iter();
        let source_acquires = acquire_iter.next().expect("source position");
        let source_releases = release_at[0].clone();
        let mut crash_iter = crash_ids_at.into_iter();
        let source_crash_ids = crash_iter.next().expect("source crash slot");

        let result = std::thread::scope(|scope| -> Result<(), E> {
            let mut links: Vec<Link<T>> = (0..n_live.saturating_sub(1))
                .map(|_| {
                    let (tx, rx) = bounded(1);
                    (Some(tx), Some(rx))
                })
                .collect();

            // ---- Source thread ----
            let source_tx = links.first_mut().and_then(|l| l.0.take());
            let chunks_emitted = &chunks_emitted;
            let source_handle = scope.spawn(move || -> Result<(), E> {
                let tx = source_tx;
                let events = source_events;
                let result = (|| -> Result<(), E> {
                    let mut seq = first_seq;
                    'produce: loop {
                        let mut permits: Vec<Option<Permit>> =
                            (0..n_groups).map(|_| None).collect();
                        for acq in &source_acquires {
                            events.token_wait_begin(acq.group, seq);
                            let got = acq.acquire();
                            events.token_wait_end(acq.group, seq);
                            match got {
                                Some(p) => permits[acq.group] = Some(p),
                                None => break 'produce,
                            }
                        }
                        let mut ctx = StageCtx::new(source_id, seq, probe);
                        if ctx.should_stop() {
                            break;
                        }
                        events.chunk_begin(seq);
                        let t0 = Instant::now();
                        let produced = match source.next_chunk(&mut ctx) {
                            Ok(p) => p,
                            Err(e) => {
                                events.chunk_abort(seq);
                                return Err(e);
                            }
                        };
                        let mut wall = t0.elapsed();
                        let Some(chunk) = produced else {
                            events.chunk_abort(seq);
                            break;
                        };
                        if let Some(extra) = probe.and_then(|p| p.gray_delay(source_id, wall)) {
                            std::thread::sleep(extra);
                            wall += extra;
                        }
                        // Probed after production: an injected Read crash
                        // dies holding the fresh claim (the survivors
                        // requeue it via liveness).
                        if let Some(p) = probe {
                            if source_crash_ids.iter().any(|&cid| p.crash_fires(cid)) {
                                p.kill();
                                events.chunk_abort(seq);
                                break;
                            }
                        }
                        if ctx.stopped {
                            events.chunk_abort(seq);
                            break;
                        }
                        events.chunk_end(seq, wall, ctx.take_timing());
                        chunks_emitted.fetch_add(1, Ordering::Relaxed);
                        for &g in &source_releases {
                            permits[g] = None;
                        }
                        match &tx {
                            Some(tx) => {
                                if tx
                                    .send(Envelope {
                                        seq,
                                        chunk,
                                        permits,
                                    })
                                    .is_err()
                                {
                                    break; // downstream stage gone
                                }
                            }
                            None => drop(chunk), // single-stage graph
                        }
                        seq += 1;
                    }
                    Ok(())
                })();
                if result.is_err() {
                    if let Some(p) = probe {
                        p.kill();
                    }
                }
                source.close();
                result
            });

            // ---- Stage threads ----
            let mut handles = Vec::with_capacity(stages.len());
            for (pos, (id, mut stage)) in stages.drain(..).enumerate().map(|(i, s)| (i + 1, s)) {
                let rx = links[pos - 1].1.take().expect("stage input link");
                let tx = links.get_mut(pos).and_then(|l| l.0.take());
                let acquires = acquire_iter.next().expect("stage position");
                let releases = release_at[pos].clone();
                let crash_ids = crash_iter.next().expect("stage crash slot");
                let stage_events = events_for(id);
                handles.push(scope.spawn(move || -> Result<(), E> {
                    let events = stage_events;
                    let mut last_seq = first_seq;
                    let result = (|| -> Result<(), E> {
                        'consume: while let Ok(env) = rx.recv() {
                            let Envelope {
                                seq,
                                chunk,
                                mut permits,
                            } = env;
                            last_seq = seq;
                            let mut ctx = StageCtx::new(id, seq, probe);
                            if ctx.should_stop() {
                                break;
                            }
                            if let Some(p) = probe {
                                if crash_ids.iter().any(|&cid| p.crash_fires(cid)) {
                                    p.kill();
                                    break;
                                }
                            }
                            for acq in &acquires {
                                events.token_wait_begin(acq.group, seq);
                                let got = acq.acquire();
                                events.token_wait_end(acq.group, seq);
                                match got {
                                    Some(p) => permits[acq.group] = Some(p),
                                    None => break 'consume,
                                }
                            }
                            // The chunk survived every probe on this
                            // thread, so it notionally passed the fused
                            // stages this thread fronts for (all but the
                            // last crash id, which is this stage's own).
                            for &fid in &crash_ids[..crash_ids.len() - 1] {
                                events.fused_passage(fid, seq);
                            }
                            events.chunk_begin(seq);
                            let t0 = Instant::now();
                            let out = match stage.run_chunk(chunk, &mut ctx) {
                                Ok(o) => o,
                                Err(e) => {
                                    events.chunk_abort(seq);
                                    return Err(e);
                                }
                            };
                            let mut wall = t0.elapsed();
                            if let Some(extra) = probe.and_then(|p| p.gray_delay(id, wall)) {
                                std::thread::sleep(extra);
                                wall += extra;
                            }
                            if ctx.stopped {
                                events.chunk_abort(seq);
                                break; // quiet unwind requested mid-chunk
                            }
                            events.chunk_end(seq, wall, ctx.take_timing());
                            for &g in &releases {
                                permits[g] = None;
                            }
                            if let Some(chunk) = out {
                                match &tx {
                                    Some(tx) => {
                                        if tx
                                            .send(Envelope {
                                                seq,
                                                chunk,
                                                permits,
                                            })
                                            .is_err()
                                        {
                                            break; // downstream stage gone
                                        }
                                    }
                                    None => drop(chunk), // last stage
                                }
                            }
                        }
                        let mut ctx = StageCtx::new(id, last_seq, probe);
                        events.finish_begin(last_seq);
                        let t0 = Instant::now();
                        if let Err(e) = stage.finish(&mut ctx) {
                            events.finish_abort(last_seq);
                            return Err(e);
                        }
                        events.finish_end(last_seq, t0.elapsed(), ctx.take_timing());
                        Ok(())
                    })();
                    if result.is_err() {
                        if let Some(p) = probe {
                            p.kill();
                        }
                    }
                    result
                }));
            }

            // Join in pipeline order; surface the first error, re-raise
            // panics only after every thread is accounted for.
            let mut first_err: Option<E> = None;
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in std::iter::once(source_handle).chain(handles) {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(p) => {
                        if panic.is_none() {
                            panic = Some(p);
                        }
                    }
                }
            }
            if let Some(p) = panic {
                resume_unwind(p);
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });

        result?;
        Ok(PipelineStats {
            stage_threads: n_live,
            fused: std::mem::take(&mut self.fused),
            chunks: chunks_emitted.load(Ordering::Relaxed),
            max_in_flight: gauges.iter().map(|g| g.high_water()).max().unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A source yielding 0..n.
    struct Counter {
        next: usize,
        n: usize,
        closed: Arc<AtomicBool>,
    }

    impl Source<usize, String> for Counter {
        fn next_chunk(&mut self, _ctx: &mut StageCtx<'_>) -> Result<Option<usize>, String> {
            if self.next == self.n {
                return Ok(None);
            }
            let v = self.next;
            self.next += 1;
            Ok(Some(v))
        }

        fn close(&mut self) {
            self.closed.store(true, Ordering::SeqCst);
        }
    }

    struct AddOne;
    impl Stage<usize, String> for AddOne {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            Ok(Some(c + 1))
        }
    }

    struct Fused;
    impl Stage<usize, String> for Fused {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            Ok(Some(c))
        }
        fn passthrough(&self) -> bool {
            true
        }
    }

    struct SinkSum<'a>(&'a AtomicUsize);
    impl Stage<usize, String> for SinkSum<'_> {
        fn run_chunk(
            &mut self,
            c: usize,
            _ctx: &mut StageCtx<'_>,
        ) -> Result<Option<usize>, String> {
            self.0.fetch_add(c, Ordering::SeqCst);
            Ok(None)
        }
    }

    #[test]
    fn fused_stages_spawn_no_threads_and_chunks_flow_in_order() {
        let sum = AtomicUsize::new(0);
        let closed = Arc::new(AtomicBool::new(false));
        let stats = PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 10,
                    closed: Arc::clone(&closed),
                },
            )
            .stage(StageId::Stage, Fused)
            .stage(StageId::Kernel, AddOne)
            .stage(StageId::Retrieve, Fused)
            .stage(StageId::Partition, SinkSum(&sum))
            .interlock(StageId::Input, StageId::Kernel)
            .interlock(StageId::Kernel, StageId::Partition)
            .run()
            .expect("pipeline run");
        assert_eq!(stats.stage_threads, 3);
        assert_eq!(stats.fused, vec![StageId::Stage, StageId::Retrieve]);
        assert_eq!(stats.chunks, 10);
        assert_eq!(sum.load(Ordering::SeqCst), (1..=10).sum::<usize>());
        assert!(closed.load(Ordering::SeqCst), "source close hook must run");
    }

    #[test]
    fn interlock_bounds_in_flight_chunks() {
        for (buffering, b) in [
            (Buffering::Single, 1),
            (Buffering::Double, 2),
            (Buffering::Triple, 3),
        ] {
            let sum = AtomicUsize::new(0);
            let stats = PipelineBuilder::new(PipelineKind::Map, buffering)
                .source(
                    StageId::Input,
                    Counter {
                        next: 0,
                        n: 32,
                        closed: Arc::new(AtomicBool::new(false)),
                    },
                )
                .stage(StageId::Kernel, AddOne)
                .stage(StageId::Partition, SinkSum(&sum))
                .interlock(StageId::Input, StageId::Kernel)
                .interlock(StageId::Kernel, StageId::Partition)
                .run()
                .expect("pipeline run");
            assert!(stats.max_in_flight >= 1);
            assert!(
                stats.max_in_flight <= b,
                "{buffering:?}: {} chunks in flight, interlock allows {b}",
                stats.max_in_flight
            );
        }
    }

    #[test]
    fn stage_error_unwinds_the_graph_and_wins_in_pipeline_order() {
        struct FailAt(usize);
        impl Stage<usize, String> for FailAt {
            fn run_chunk(
                &mut self,
                c: usize,
                _ctx: &mut StageCtx<'_>,
            ) -> Result<Option<usize>, String> {
                if c == self.0 {
                    return Err(format!("boom at {c}"));
                }
                Ok(Some(c))
            }
        }
        let sum = AtomicUsize::new(0);
        let closed = Arc::new(AtomicBool::new(false));
        let err = PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 100,
                    closed: Arc::clone(&closed),
                },
            )
            .stage(StageId::Kernel, FailAt(3))
            .stage(StageId::Partition, SinkSum(&sum))
            .interlock(StageId::Input, StageId::Kernel)
            .run()
            .expect_err("kernel error must surface");
        assert_eq!(err, "boom at 3");
        assert!(
            closed.load(Ordering::SeqCst),
            "close runs on failure paths too"
        );
    }

    #[test]
    fn timers_default_to_whole_call_and_honor_add_time() {
        struct Timed;
        impl Stage<usize, String> for Timed {
            fn run_chunk(
                &mut self,
                c: usize,
                ctx: &mut StageCtx<'_>,
            ) -> Result<Option<usize>, String> {
                ctx.add_time(Duration::from_millis(5), Duration::from_millis(9));
                Ok(Some(c))
            }
        }
        let sum = AtomicUsize::new(0);
        let timers = Arc::new(StageTimers::new());
        PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 4,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage(StageId::Kernel, Timed)
            .stage(StageId::Partition, SinkSum(&sum))
            .timers(Arc::clone(&timers), 0)
            .run()
            .expect("pipeline run");
        assert_eq!(timers.chunks(StageId::Input), 4);
        assert_eq!(timers.chunks(StageId::Kernel), 4);
        assert_eq!(timers.wall(StageId::Kernel), Duration::from_millis(20));
        assert_eq!(timers.modeled(StageId::Kernel), Duration::from_millis(36));
        // Default timing recorded something for the untimed stages.
        assert_eq!(timers.chunks(StageId::Partition), 4);
    }

    #[test]
    fn retry_helper_rolls_back_and_honors_the_budget() {
        let mut state = Vec::<u32>::new();
        let calls = AtomicUsize::new(0);
        let (value, retried) = run_task_with_retries(
            2,
            &mut state,
            |s| {
                s.push(7);
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                s.len()
            },
            |s| s.clear(),
        )
        .expect("within budget");
        assert_eq!(retried, 2);
        assert_eq!(
            value, 1,
            "rollback cleared partial output before the good attempt"
        );

        let mut state = ();
        let err = run_task_with_retries(1, &mut state, |_| -> usize { panic!("always") }, |_| {})
            .expect_err("budget exhausted");
        assert_eq!(err.attempts, 2);
    }

    #[test]
    fn fused_stage_crash_sites_are_probed_by_the_next_live_stage() {
        struct CrashAtFused {
            dead: Arc<AtomicBool>,
            passages: AtomicUsize,
        }
        impl PipelineProbe for CrashAtFused {
            fn should_abort(&self, _stage: StageId) -> bool {
                self.dead.load(Ordering::SeqCst)
            }
            fn crash_fires(&self, stage: StageId) -> bool {
                // The Stage slot is fused out of the graph below; its site
                // must still see passages.
                stage == StageId::Stage && self.passages.fetch_add(1, Ordering::SeqCst) == 1
            }
            fn kill(&self) {
                self.dead.store(true, Ordering::SeqCst);
            }
        }
        let dead = Arc::new(AtomicBool::new(false));
        let sum = AtomicUsize::new(0);
        PipelineBuilder::new(PipelineKind::Map, Buffering::Double)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 20,
                    closed: Arc::new(AtomicBool::new(false)),
                },
            )
            .stage(StageId::Stage, Fused)
            .stage(StageId::Kernel, AddOne)
            .stage(StageId::Partition, SinkSum(&sum))
            .probe(CrashAtFused {
                dead: Arc::clone(&dead),
                passages: AtomicUsize::new(0),
            })
            .run()
            .expect("injected crash drains quietly");
        assert!(dead.load(Ordering::SeqCst), "fused Stage site never fired");
        assert!(
            sum.load(Ordering::SeqCst) <= 2 + 3,
            "work after the crash must be discarded"
        );
    }

    #[test]
    fn probe_crash_unwinds_quietly_and_kill_is_sticky() {
        struct CrashAtKernel {
            dead: Arc<AtomicBool>,
            passages: AtomicUsize,
        }
        impl PipelineProbe for CrashAtKernel {
            fn should_abort(&self, _stage: StageId) -> bool {
                self.dead.load(Ordering::SeqCst)
            }
            fn crash_fires(&self, stage: StageId) -> bool {
                stage == StageId::Kernel && self.passages.fetch_add(1, Ordering::SeqCst) == 2
            }
            fn kill(&self) {
                self.dead.store(true, Ordering::SeqCst);
            }
        }
        let probe_dead = Arc::new(AtomicBool::new(false));
        let probe = CrashAtKernel {
            dead: Arc::clone(&probe_dead),
            passages: AtomicUsize::new(0),
        };
        let sum = AtomicUsize::new(0);
        let closed = Arc::new(AtomicBool::new(false));
        // The run itself succeeds (the crash is a quiet unwind — the
        // phase-level code turns the dead flag into NodeLost).
        PipelineBuilder::new(PipelineKind::Map, Buffering::Single)
            .source(
                StageId::Input,
                Counter {
                    next: 0,
                    n: 50,
                    closed: Arc::clone(&closed),
                },
            )
            .stage(StageId::Kernel, AddOne)
            .stage(StageId::Partition, SinkSum(&sum))
            .probe(probe)
            .run()
            .expect("injected crash drains quietly");
        assert!(closed.load(Ordering::SeqCst));
        // At most the chunks before the crash passage reached the sink; a
        // dead node's remaining in-flight chunks are discarded, so the
        // sink may quietly drop work already queued when the kill landed.
        assert!(sum.load(Ordering::SeqCst) <= 1 + 2);
        assert!(probe_dead.load(Ordering::SeqCst));
    }
}
