//! The Glasswing stage-graph executor.
//!
//! Both Glasswing pipelines — map (`Input → Stage → Kernel → Retrieve →
//! Partition`, paper §III-A) and reduce (`MergeRead → Stage → Kernel →
//! Retrieve → Output`, §III-C) — are instantiations of the same shape: a
//! pulling source followed by a chain of bounded stages, overlapped by the
//! buffering-level interlock of §III-D. This crate owns that shape once:
//!
//! * [`Source`] / [`Stage`] — the per-stage logic (one `next_chunk` /
//!   `run_chunk` call per chunk plus lifecycle hooks), written without any
//!   channel wiring, crash probing or timer bookkeeping;
//! * [`PipelineBuilder`] — wires N stages with bounded channels, circulates
//!   [`Buffering`]`::{Single,Double,Triple}` buffer tokens (`B` in-flight
//!   chunks per token group, enforced by the executor rather than ad-hoc
//!   channel capacities), and *fuses* pass-through stages out of the graph
//!   at build time (on unified-memory devices "the input stager is
//!   disabled" — the stage does not exist, rather than running as a no-op
//!   thread with channel hops);
//! * the four cross-cutting concerns previously copy-pasted per stage:
//!   crash-site probing between chunks ([`PipelineProbe`]), dead/abort-flag
//!   checking, [`StageTimers`] wall+modeled accounting, and error
//!   unwinding that drains and closes the whole graph deterministically;
//! * [`run_task_with_retries`] — the §III-E task re-execution loop
//!   ("if a task fails, its partial output is discarded and its input is
//!   rescheduled for processing") shared by both kernel stages.

pub mod executor;
pub mod timers;

pub use executor::{
    run_task_with_retries, token_pool, LaneSource, PipelineBuilder, PipelineProbe, PipelineStats,
    PoolGet, PoolPut, RetryExhausted, Source, Stage, StageCtx,
};
pub use timers::{PipelineKind, StageId, StageSample, StageTimers, TimerReport};

/// Pipeline buffering level (paper §III-D).
///
/// Each token group declared on a [`PipelineBuilder`] (the map pipeline's
/// *input group* Input→Kernel and *output group* Kernel→Partition) admits
/// this many chunks at a time. `Single` interlocks each group internally
/// (the two groups still overlap each other); `Triple` lets all five
/// stages run fully concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Buffering {
    /// One buffer set per group.
    Single,
    /// Two buffer sets per group (the paper's default configuration).
    Double,
    /// Three buffer sets per group.
    Triple,
}

impl Buffering {
    /// Number of buffer sets per group.
    #[inline]
    pub fn depth(self) -> usize {
        match self {
            Buffering::Single => 1,
            Buffering::Double => 2,
            Buffering::Triple => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_depths() {
        assert_eq!(Buffering::Single.depth(), 1);
        assert_eq!(Buffering::Double.depth(), 2);
        assert_eq!(Buffering::Triple.depth(), 3);
    }
}
