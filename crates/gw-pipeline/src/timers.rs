//! Per-stage pipeline instrumentation.
//!
//! The paper's Tables II/III and Figs. 4/5 are produced by "instrumenting
//! it with timers for each pipeline stage". [`StageTimers`] accumulates,
//! per stage, both the measured *wall* time and the device/storage-model
//! *modeled* time, plus per-chunk samples so a schedule model can replay
//! the pipeline under different device profiles. The executor owns all
//! `add` calls: a stage's whole `run_chunk` is timed by default, and a
//! stage that needs a narrower window (read+parse only, device-reported
//! kernel time) overrides it via [`crate::StageCtx::add_time`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// Which of the two Glasswing pipelines a stage descriptor belongs to.
/// Purely a display concern: both pipelines share the five [`StageId`]
/// slots, but the first and last stages do different jobs on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// Input → Stage → Kernel → Retrieve → Partition (paper §III-A).
    Map,
    /// MergeRead → Stage → Kernel → Retrieve → Output (paper §III-C).
    Reduce,
}

/// The five pipeline stages. Map and reduce pipelines share the enum; use
/// [`StageId::name_in`] to display a stage under the right pipeline
/// vocabulary (reduce: `merge-read/stage/kernel/retrieve/output`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Map: read input split / Reduce: final merge read.
    Input,
    /// Host→device staging (fused out of the graph on unified memory).
    Stage,
    /// Kernel execution.
    Kernel,
    /// Device→host retrieval (fused out of the graph on unified memory).
    Retrieve,
    /// Map: partition+sort+push / Reduce: output write.
    Partition,
}

impl StageId {
    /// All stages in pipeline order.
    pub const ALL: [StageId; 5] = [
        StageId::Input,
        StageId::Stage,
        StageId::Kernel,
        StageId::Retrieve,
        StageId::Partition,
    ];

    /// Stable index 0..5.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StageId::Input => 0,
            StageId::Stage => 1,
            StageId::Kernel => 2,
            StageId::Retrieve => 3,
            StageId::Partition => 4,
        }
    }

    /// Display name under the map-pipeline vocabulary (the historical
    /// default; reduce dumps should prefer [`StageId::name_in`]).
    pub fn name(self) -> &'static str {
        self.name_in(PipelineKind::Map)
    }

    /// Display name under `kind`'s vocabulary.
    pub fn name_in(self, kind: PipelineKind) -> &'static str {
        match (kind, self) {
            (PipelineKind::Map, StageId::Input) => "input",
            (PipelineKind::Map, StageId::Partition) => "partition",
            (PipelineKind::Reduce, StageId::Input) => "merge-read",
            (PipelineKind::Reduce, StageId::Partition) => "output",
            (_, StageId::Stage) => "stage",
            (_, StageId::Kernel) => "kernel",
            (_, StageId::Retrieve) => "retrieve",
        }
    }
}

#[derive(Debug, Default)]
struct StageAccum {
    wall_nanos: AtomicU64,
    modeled_nanos: AtomicU64,
    chunks: AtomicU64,
}

/// One stage's duration for one chunk (wall, modeled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSample {
    /// Measured host time.
    pub wall: Duration,
    /// Model-transformed time.
    pub modeled: Duration,
}

/// Accumulated per-stage timings for one pipeline instantiation.
#[derive(Debug, Default)]
pub struct StageTimers {
    stages: [StageAccum; 5],
    /// Per-chunk samples, stage-major, for schedule replay.
    samples: Mutex<Vec<[StageSample; 5]>>,
}

impl StageTimers {
    /// Fresh timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one chunk's pass through `stage`.
    pub fn add(&self, stage: StageId, chunk: usize, wall: Duration, modeled: Duration) {
        let acc = &self.stages[stage.index()];
        acc.wall_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        acc.modeled_nanos
            .fetch_add(modeled.as_nanos() as u64, Ordering::Relaxed);
        acc.chunks.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.samples.lock();
        if samples.len() <= chunk {
            samples.resize(chunk + 1, [StageSample::default(); 5]);
        }
        samples[chunk][stage.index()] = StageSample { wall, modeled };
    }

    /// Total wall time spent in `stage`.
    pub fn wall(&self, stage: StageId) -> Duration {
        Duration::from_nanos(
            self.stages[stage.index()]
                .wall_nanos
                .load(Ordering::Relaxed),
        )
    }

    /// Total modeled time spent in `stage`.
    pub fn modeled(&self, stage: StageId) -> Duration {
        Duration::from_nanos(
            self.stages[stage.index()]
                .modeled_nanos
                .load(Ordering::Relaxed),
        )
    }

    /// Number of chunks that passed through `stage`.
    pub fn chunks(&self, stage: StageId) -> u64 {
        self.stages[stage.index()].chunks.load(Ordering::Relaxed)
    }

    /// Per-chunk samples (chunk-major), for schedule replay.
    pub fn chunk_samples(&self) -> Vec<[StageSample; 5]> {
        self.samples.lock().clone()
    }

    /// Condensed report.
    pub fn report(&self) -> TimerReport {
        let mut wall = [Duration::ZERO; 5];
        let mut modeled = [Duration::ZERO; 5];
        for s in StageId::ALL {
            wall[s.index()] = self.wall(s);
            modeled[s.index()] = self.modeled(s);
        }
        TimerReport { wall, modeled }
    }
}

/// Snapshot of stage totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimerReport {
    /// Wall totals indexed by [`StageId::index`].
    pub wall: [Duration; 5],
    /// Modeled totals indexed by [`StageId::index`].
    pub modeled: [Duration; 5],
}

impl TimerReport {
    /// Wall total of a stage.
    pub fn wall(&self, stage: StageId) -> Duration {
        self.wall[stage.index()]
    }

    /// Modeled total of a stage.
    pub fn modeled(&self, stage: StageId) -> Duration {
        self.modeled[stage.index()]
    }

    /// Merge another report into this one (summing stage totals), used to
    /// aggregate across nodes.
    pub fn merge(&mut self, other: &TimerReport) {
        for i in 0..5 {
            self.wall[i] += other.wall[i];
            self.modeled[i] += other.modeled[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_stage() {
        let t = StageTimers::new();
        t.add(
            StageId::Kernel,
            0,
            Duration::from_millis(10),
            Duration::from_millis(1),
        );
        t.add(
            StageId::Kernel,
            1,
            Duration::from_millis(5),
            Duration::from_millis(2),
        );
        t.add(
            StageId::Input,
            0,
            Duration::from_millis(3),
            Duration::from_millis(3),
        );
        assert_eq!(t.wall(StageId::Kernel), Duration::from_millis(15));
        assert_eq!(t.modeled(StageId::Kernel), Duration::from_millis(3));
        assert_eq!(t.chunks(StageId::Kernel), 2);
        assert_eq!(t.wall(StageId::Input), Duration::from_millis(3));
        assert_eq!(t.wall(StageId::Stage), Duration::ZERO);
    }

    #[test]
    fn chunk_samples_are_positional() {
        let t = StageTimers::new();
        t.add(
            StageId::Partition,
            2,
            Duration::from_millis(7),
            Duration::from_millis(7),
        );
        let samples = t.chunk_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples[2][StageId::Partition.index()].wall,
            Duration::from_millis(7)
        );
        assert_eq!(samples[0][StageId::Partition.index()].wall, Duration::ZERO);
    }

    #[test]
    fn report_merges_across_nodes() {
        let a = StageTimers::new();
        a.add(
            StageId::Input,
            0,
            Duration::from_secs(1),
            Duration::from_secs(1),
        );
        let b = StageTimers::new();
        b.add(
            StageId::Input,
            0,
            Duration::from_secs(2),
            Duration::from_secs(2),
        );
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.wall(StageId::Input), Duration::from_secs(3));
    }

    #[test]
    fn per_pipeline_display_names() {
        assert_eq!(StageId::Input.name(), "input");
        assert_eq!(StageId::Input.name_in(PipelineKind::Reduce), "merge-read");
        assert_eq!(StageId::Partition.name_in(PipelineKind::Map), "partition");
        assert_eq!(StageId::Partition.name_in(PipelineKind::Reduce), "output");
        for mid in [StageId::Stage, StageId::Kernel, StageId::Retrieve] {
            assert_eq!(
                mid.name_in(PipelineKind::Map),
                mid.name_in(PipelineKind::Reduce)
            );
        }
    }
}
