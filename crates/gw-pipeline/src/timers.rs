//! Per-stage pipeline instrumentation.
//!
//! The paper's Tables II/III and Figs. 4/5 are produced by "instrumenting
//! it with timers for each pipeline stage". [`StageTimers`] accumulates,
//! per stage, both the measured *wall* time and the device/storage-model
//! *modeled* time, plus per-chunk samples so a schedule model can replay
//! the pipeline under different device profiles.
//!
//! Since the observability plane landed, the timers are a **derived
//! view** over the executor's `gw-trace` event stream: the executor
//! constructs each event once and feeds it both to the tracer lane and to
//! [`StageTimers::on_event`], so wall and modeled time come from one
//! source of truth. [`StageId`] and [`PipelineKind`] now live in
//! `gw-trace` (trace events address stages); they are re-exported here so
//! existing paths keep working.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use gw_trace::{Event, EventKind, MarkId, SpanId};
pub use gw_trace::{PipelineKind, StageId};

#[derive(Debug, Default)]
struct StageAccum {
    wall_nanos: AtomicU64,
    modeled_nanos: AtomicU64,
    chunks: AtomicU64,
}

/// One stage's duration for one chunk (wall, modeled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSample {
    /// Measured host time.
    pub wall: Duration,
    /// Model-transformed time.
    pub modeled: Duration,
}

/// Accumulated per-stage timings for one pipeline instantiation.
#[derive(Debug, Default)]
pub struct StageTimers {
    stages: [StageAccum; 5],
    /// Per-chunk samples, stage-major, for schedule replay.
    samples: Mutex<Vec<[StageSample; 5]>>,
}

impl StageTimers {
    /// Fresh timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one executor-emitted trace event into the aggregates. This is
    /// the *only* write path the executor uses: accounted chunk/finish
    /// span ends carry the (wall, modeled) pair, fused-passage instants
    /// record the zero-cost sample a fused stage contributes (so fused
    /// and unfused graphs report the same chunk counts and modeled
    /// totals), and everything else — token waits, aborted chunks,
    /// counters — is ignored.
    pub fn on_event(&self, stage: StageId, ev: &Event) {
        match ev.kind {
            EventKind::End {
                span: SpanId::Chunk { seq } | SpanId::Finish { seq },
                wall_ns,
                modeled_ns,
                accounted: true,
            } => self.add(
                stage,
                seq as usize,
                Duration::from_nanos(wall_ns),
                Duration::from_nanos(modeled_ns),
            ),
            EventKind::Instant {
                mark: MarkId::FusedPassage { fused, seq },
            } => self.add(fused, seq as usize, Duration::ZERO, Duration::ZERO),
            _ => {}
        }
    }

    /// Record one chunk's pass through `stage`.
    pub fn add(&self, stage: StageId, chunk: usize, wall: Duration, modeled: Duration) {
        let acc = &self.stages[stage.index()];
        acc.wall_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        acc.modeled_nanos
            .fetch_add(modeled.as_nanos() as u64, Ordering::Relaxed);
        acc.chunks.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.samples.lock();
        if samples.len() <= chunk {
            samples.resize(chunk + 1, [StageSample::default(); 5]);
        }
        samples[chunk][stage.index()] = StageSample { wall, modeled };
    }

    /// Total wall time spent in `stage`.
    pub fn wall(&self, stage: StageId) -> Duration {
        Duration::from_nanos(
            self.stages[stage.index()]
                .wall_nanos
                .load(Ordering::Relaxed),
        )
    }

    /// Total modeled time spent in `stage`.
    pub fn modeled(&self, stage: StageId) -> Duration {
        Duration::from_nanos(
            self.stages[stage.index()]
                .modeled_nanos
                .load(Ordering::Relaxed),
        )
    }

    /// Number of chunks that passed through `stage`.
    pub fn chunks(&self, stage: StageId) -> u64 {
        self.stages[stage.index()].chunks.load(Ordering::Relaxed)
    }

    /// Per-chunk samples (chunk-major), for schedule replay.
    pub fn chunk_samples(&self) -> Vec<[StageSample; 5]> {
        self.samples.lock().clone()
    }

    /// Condensed report.
    pub fn report(&self) -> TimerReport {
        let mut wall = [Duration::ZERO; 5];
        let mut modeled = [Duration::ZERO; 5];
        for s in StageId::ALL {
            wall[s.index()] = self.wall(s);
            modeled[s.index()] = self.modeled(s);
        }
        TimerReport { wall, modeled }
    }
}

/// Snapshot of stage totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimerReport {
    /// Wall totals indexed by [`StageId::index`].
    pub wall: [Duration; 5],
    /// Modeled totals indexed by [`StageId::index`].
    pub modeled: [Duration; 5],
}

impl TimerReport {
    /// Wall total of a stage.
    pub fn wall(&self, stage: StageId) -> Duration {
        self.wall[stage.index()]
    }

    /// Modeled total of a stage.
    pub fn modeled(&self, stage: StageId) -> Duration {
        self.modeled[stage.index()]
    }

    /// Merge another report into this one (summing stage totals), used to
    /// aggregate across nodes.
    pub fn merge(&mut self, other: &TimerReport) {
        for i in 0..5 {
            self.wall[i] += other.wall[i];
            self.modeled[i] += other.modeled[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_stage() {
        let t = StageTimers::new();
        t.add(
            StageId::Kernel,
            0,
            Duration::from_millis(10),
            Duration::from_millis(1),
        );
        t.add(
            StageId::Kernel,
            1,
            Duration::from_millis(5),
            Duration::from_millis(2),
        );
        t.add(
            StageId::Input,
            0,
            Duration::from_millis(3),
            Duration::from_millis(3),
        );
        assert_eq!(t.wall(StageId::Kernel), Duration::from_millis(15));
        assert_eq!(t.modeled(StageId::Kernel), Duration::from_millis(3));
        assert_eq!(t.chunks(StageId::Kernel), 2);
        assert_eq!(t.wall(StageId::Input), Duration::from_millis(3));
        assert_eq!(t.wall(StageId::Stage), Duration::ZERO);
    }

    #[test]
    fn chunk_samples_are_positional() {
        let t = StageTimers::new();
        t.add(
            StageId::Partition,
            2,
            Duration::from_millis(7),
            Duration::from_millis(7),
        );
        let samples = t.chunk_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples[2][StageId::Partition.index()].wall,
            Duration::from_millis(7)
        );
        assert_eq!(samples[0][StageId::Partition.index()].wall, Duration::ZERO);
    }

    #[test]
    fn report_merges_across_nodes() {
        let a = StageTimers::new();
        a.add(
            StageId::Input,
            0,
            Duration::from_secs(1),
            Duration::from_secs(1),
        );
        let b = StageTimers::new();
        b.add(
            StageId::Input,
            0,
            Duration::from_secs(2),
            Duration::from_secs(2),
        );
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.wall(StageId::Input), Duration::from_secs(3));
    }

    #[test]
    fn on_event_folds_accounted_spans_and_fused_passages_only() {
        let t = StageTimers::new();
        let end = |seq, wall_ns, accounted| Event {
            at_ns: 0,
            kind: EventKind::End {
                span: SpanId::Chunk { seq },
                wall_ns,
                modeled_ns: wall_ns * 2,
                accounted,
            },
        };
        t.on_event(StageId::Kernel, &end(0, 1_000_000, true));
        t.on_event(StageId::Kernel, &end(1, 5_000_000, true));
        // Aborted chunk and token waits must not count.
        t.on_event(StageId::Kernel, &end(2, 9_000_000, false));
        t.on_event(
            StageId::Kernel,
            &Event {
                at_ns: 0,
                kind: EventKind::Begin {
                    span: SpanId::TokenWait { group: 0, seq: 3 },
                },
            },
        );
        // A fused Stage passage observed by the Kernel thread lands as a
        // zero-cost sample against the *fused* stage.
        t.on_event(
            StageId::Kernel,
            &Event {
                at_ns: 0,
                kind: EventKind::Instant {
                    mark: MarkId::FusedPassage {
                        fused: StageId::Stage,
                        seq: 0,
                    },
                },
            },
        );
        assert_eq!(t.chunks(StageId::Kernel), 2);
        assert_eq!(t.wall(StageId::Kernel), Duration::from_millis(6));
        assert_eq!(t.modeled(StageId::Kernel), Duration::from_millis(12));
        assert_eq!(t.chunks(StageId::Stage), 1);
        assert_eq!(t.wall(StageId::Stage), Duration::ZERO);
    }

    #[test]
    fn on_event_accounted_finish_adds_a_sample() {
        let t = StageTimers::new();
        t.on_event(
            StageId::Partition,
            &Event {
                at_ns: 0,
                kind: EventKind::End {
                    span: SpanId::Finish { seq: 7 },
                    wall_ns: 3_000_000,
                    modeled_ns: 4_000_000,
                    accounted: true,
                },
            },
        );
        assert_eq!(t.chunks(StageId::Partition), 1);
        assert_eq!(t.wall(StageId::Partition), Duration::from_millis(3));
        assert_eq!(
            t.chunk_samples()[7][StageId::Partition.index()].modeled,
            Duration::from_millis(4)
        );
    }
}
