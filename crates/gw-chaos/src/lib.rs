//! Seeded, deterministic fault injection for the Glasswing engine.
//!
//! A [`FaultPlan`] derives a whole fault schedule from one RNG seed: a
//! node crash at a chosen pipeline site, a per-block storage read fault,
//! and a shuffle message drop or delay. The engine consults the plan at
//! well-defined sites through the trait hooks in `gw-storage`
//! ([`StorageFaultHook`]) and `gw-net` ([`NetFaultHook`]) plus explicit
//! crash-site probes in the pipelines — everything is pull-based, so an
//! unarmed engine pays nothing.
//!
//! Beyond the crash-style faults, a plan can schedule **gray failures**:
//! degradations that leave every node alive but slow. Three families,
//! drawn from the same seed ([`FaultPlan::gray_from_seed`]):
//!
//! * **slowdown** — a persistent per-node multiplier; every stage passage
//!   on the victim is throttled by `(factor − 1) × wall`
//!   ([`FaultPlan::gray_delay`], probed by the pipeline executor);
//! * **stall** — a one-shot transient hang of a chosen site passage;
//! * **flaky link** — a per-message probabilistic drop/delay profile on
//!   one directed link, decided deterministically from
//!   `(seed, link, message index)`.
//!
//! Determinism contract: two plans built from the same seed and node
//! count schedule identical faults ([`FaultPlan::describe`] is equal), and
//! each *discrete* fault (crash, read, net, stall) fires **at most once
//! per plan instance** — a plan is single-use; to replay a schedule,
//! build a fresh plan from the same seed. Slowdowns and flaky links are
//! *profiles*, not events: they apply for the plan's whole lifetime, and
//! a flaky link's per-message decisions replay identically for the same
//! message indices.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use gw_intermediate::SpillFaultHook;
pub use gw_intermediate::SpillOp;
use gw_net::{NetFaultAction, NetFaultHook};
use gw_storage::{NodeId, StorageFaultHook};
use gw_trace::{CounterId, LaneId, MarkId, Realm, Tracer};

/// SplitMix64 — a tiny deterministic RNG. In-repo so the fault plane
/// depends on no external crates and no global entropy.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` clamped to at least 1).
    pub fn gen_range(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.gen_range(100) < percent
    }
}

/// Pipeline site at which a planned node crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Input stage, after claiming a split (dies holding the claim).
    Read,
    /// Stage (H2D) stage.
    Stage,
    /// Map kernel stage.
    Kernel,
    /// Retrieve (D2H) stage.
    Retrieve,
    /// Partition/shuffle stage.
    Shuffle,
    /// Reduce kernel — injected as a reduce-task panic, not a node death
    /// (see [`FaultPlan::reduce_fault_fires`]).
    Reduce,
}

impl CrashSite {
    /// Stable lowercase name (used by [`FaultPlan::describe`]).
    pub fn name(self) -> &'static str {
        match self {
            CrashSite::Read => "read",
            CrashSite::Stage => "stage",
            CrashSite::Kernel => "kernel",
            CrashSite::Retrieve => "retrieve",
            CrashSite::Shuffle => "shuffle",
            CrashSite::Reduce => "reduce",
        }
    }

    fn from_index(i: u64) -> Self {
        match i % 6 {
            0 => CrashSite::Read,
            1 => CrashSite::Stage,
            2 => CrashSite::Kernel,
            3 => CrashSite::Retrieve,
            4 => CrashSite::Shuffle,
            _ => CrashSite::Reduce,
        }
    }

    /// The crash site probed when the map pipeline's executor passes a
    /// chunk through `stage` (the [`CrashSite::Reduce`] site has no map
    /// stage and is reached through
    /// [`FaultPlan::reduce_fault_fires`] instead).
    pub fn for_map_stage(stage: gw_pipeline::StageId) -> Self {
        match stage {
            gw_pipeline::StageId::Input => CrashSite::Read,
            gw_pipeline::StageId::Stage => CrashSite::Stage,
            gw_pipeline::StageId::Kernel => CrashSite::Kernel,
            gw_pipeline::StageId::Retrieve => CrashSite::Retrieve,
            gw_pipeline::StageId::Partition => CrashSite::Shuffle,
        }
    }
}

#[derive(Debug)]
struct CrashFault {
    node: u32,
    site: CrashSite,
    /// Passages of the site survived before the crash fires.
    after: u32,
    /// Lane filter: `Some(l)` counts and fires only on lane `l` of the
    /// site's stage (a widened stage runs several lanes); `None` (every
    /// seeded plan) targets the whole stage.
    lane: Option<u32>,
    seen: AtomicU32,
    fired: AtomicBool,
}

#[derive(Debug)]
struct ReadFault {
    block: usize,
    fired: AtomicBool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetFaultKind {
    Drop,
    Delay(Duration),
}

#[derive(Debug)]
struct NetFault {
    from: u32,
    to: u32,
    kind: NetFaultKind,
    /// Data messages on the (from, to) link let through before firing.
    nth: u32,
    seen: AtomicU32,
    fired: AtomicBool,
}

/// Persistent per-node slowdown: every stage passage on the victim is
/// stretched by `(factor_x100 − 100)%` of its measured wall time.
#[derive(Debug)]
struct SlowFault {
    node: u32,
    /// Slowdown factor × 100 (400 = the node runs 4× slower).
    factor_x100: u32,
    /// Lane filter: `Some(l)` throttles only lane `l`'s passages, leaving
    /// sibling lanes of a widened stage at full speed.
    lane: Option<u32>,
}

/// One-shot transient stall of a site passage on one node.
#[derive(Debug)]
struct StallFault {
    node: u32,
    site: CrashSite,
    /// Passages of the site survived before the stall fires.
    after: u32,
    /// Stall length, milliseconds.
    ms: u64,
    /// Lane filter, as on [`CrashFault::lane`].
    lane: Option<u32>,
    seen: AtomicU32,
    fired: AtomicBool,
}

/// One-shot spill-file I/O fault: fails the `nth` (0-based) probed
/// spill operation of the chosen kind. Spill faults never appear in
/// seeded plans — the store poisons and the job fails cleanly rather
/// than recovering, so the 20-seed sweeps (which assert success) stay
/// unaffected; explicit plans arm them via
/// [`FaultPlan::with_spill_fault`].
#[derive(Debug)]
struct SpillFault {
    op: SpillOp,
    nth: u32,
    seen: AtomicU32,
    fired: AtomicBool,
}

/// Probabilistic drop/delay profile on one directed link. Unlike
/// [`NetFault`] this is not one-shot: every data message on the link
/// rolls against the profile, with the outcome a pure function of
/// `(plan seed, link, message index)`.
#[derive(Debug)]
struct FlakyLink {
    from: u32,
    to: u32,
    /// Percent of messages dropped.
    drop_pct: u32,
    /// Percent of messages delayed (on top of `drop_pct`).
    delay_pct: u32,
    delay: Duration,
    seen: AtomicU32,
}

/// A deterministic, single-use schedule of injected faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    crash: Option<CrashFault>,
    read: Option<ReadFault>,
    net: Option<NetFault>,
    slow: Option<SlowFault>,
    stall: Option<StallFault>,
    flaky: Option<FlakyLink>,
    spill: Option<SpillFault>,
    tracer: RwLock<Option<Arc<Tracer>>>,
}

impl FaultPlan {
    /// Derive a full fault schedule from `seed` for an `nodes`-node
    /// cluster. Every plan schedules at least one fault.
    pub fn from_seed(seed: u64, nodes: u32) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan {
            seed,
            ..Default::default()
        };
        // ~60% of plans crash a node (or fault a reduce task); storage and
        // network faults each ~45%, so most seeds combine fault classes.
        if rng.chance(60) {
            plan.crash = Some(CrashFault {
                node: rng.gen_range(nodes.max(1) as u64) as u32,
                site: CrashSite::from_index(rng.next_u64()),
                after: rng.gen_range(3) as u32,
                lane: None,
                seen: AtomicU32::new(0),
                fired: AtomicBool::new(false),
            });
        }
        if rng.chance(45) {
            plan.read = Some(ReadFault {
                block: rng.gen_range(8) as usize,
                fired: AtomicBool::new(false),
            });
        }
        if rng.chance(45) && nodes > 1 {
            let from = rng.gen_range(nodes as u64) as u32;
            let to = (from + 1 + rng.gen_range(nodes as u64 - 1) as u32) % nodes;
            let kind = if rng.chance(50) {
                NetFaultKind::Drop
            } else {
                NetFaultKind::Delay(Duration::from_millis(5 + rng.gen_range(60)))
            };
            plan.net = Some(NetFault {
                from,
                to,
                kind,
                nth: rng.gen_range(4) as u32,
                seen: AtomicU32::new(0),
                fired: AtomicBool::new(false),
            });
        }
        if plan.crash.is_none() && plan.read.is_none() && plan.net.is_none() {
            plan.read = Some(ReadFault {
                block: rng.gen_range(8) as usize,
                fired: AtomicBool::new(false),
            });
        }
        plan
    }

    /// Derive a **gray-failure** schedule from `seed`: slowdowns, stalls
    /// and flaky links only — every node stays alive, so (unlike
    /// [`FaultPlan::from_seed`] schedules) every gray plan is recoverable
    /// and must reproduce byte-identical output. Every plan schedules at
    /// least one gray fault.
    pub fn gray_from_seed(seed: u64, nodes: u32) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xA5A5_5A5A_C3C3_3C3C);
        let mut plan = FaultPlan {
            seed,
            ..Default::default()
        };
        // ~55% slowdown, ~45% stall, ~45% flaky link: most seeds mix
        // degradation families.
        if rng.chance(55) {
            plan.slow = Some(SlowFault {
                node: rng.gen_range(nodes.max(1) as u64) as u32,
                factor_x100: 150 + 50 * rng.gen_range(8) as u32, // 1.5×..5×
                lane: None,
            });
        }
        if rng.chance(45) {
            plan.stall = Some(StallFault {
                node: rng.gen_range(nodes.max(1) as u64) as u32,
                site: CrashSite::from_index(rng.next_u64()),
                after: rng.gen_range(3) as u32,
                ms: 10 + rng.gen_range(90),
                lane: None,
                seen: AtomicU32::new(0),
                fired: AtomicBool::new(false),
            });
        }
        if rng.chance(45) && nodes > 1 {
            let from = rng.gen_range(nodes as u64) as u32;
            let to = (from + 1 + rng.gen_range(nodes as u64 - 1) as u32) % nodes;
            plan.flaky = Some(FlakyLink {
                from,
                to,
                drop_pct: 10 + rng.gen_range(30) as u32,
                delay_pct: 10 + rng.gen_range(30) as u32,
                delay: Duration::from_millis(1 + rng.gen_range(15)),
                seen: AtomicU32::new(0),
            });
        }
        if plan.slow.is_none() && plan.stall.is_none() && plan.flaky.is_none() {
            plan.slow = Some(SlowFault {
                node: rng.gen_range(nodes.max(1) as u64) as u32,
                factor_x100: 300,
                lane: None,
            });
        }
        plan
    }

    /// Explicit plan: crash `node` at `site` after surviving
    /// `after_chunks` passages of that site.
    pub fn crash(node: u32, site: CrashSite, after_chunks: u32) -> Self {
        FaultPlan {
            seed: 0,
            crash: Some(CrashFault {
                node,
                site,
                after: after_chunks,
                lane: None,
                seen: AtomicU32::new(0),
                fired: AtomicBool::new(false),
            }),
            ..Default::default()
        }
    }

    /// Empty plan to extend with the `with_*` builders.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Add a one-shot read fault on block index `block` (any file).
    pub fn with_read_fault(mut self, block: usize) -> Self {
        self.read = Some(ReadFault {
            block,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Drop the `nth` (0-based) data message on the `from → to` link.
    pub fn with_net_drop(mut self, from: u32, to: u32, nth: u32) -> Self {
        self.net = Some(NetFault {
            from,
            to,
            kind: NetFaultKind::Drop,
            nth,
            seen: AtomicU32::new(0),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Delay the `nth` (0-based) data message on the `from → to` link.
    pub fn with_net_delay(mut self, from: u32, to: u32, nth: u32, delay: Duration) -> Self {
        self.net = Some(NetFault {
            from,
            to,
            kind: NetFaultKind::Delay(delay),
            nth,
            seen: AtomicU32::new(0),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Slow `node` down persistently: every stage passage is stretched to
    /// `factor_x100 / 100` of its wall time (400 = the node runs 4× slower).
    pub fn with_slowdown(mut self, node: u32, factor_x100: u32) -> Self {
        self.slow = Some(SlowFault {
            node,
            factor_x100,
            lane: None,
        });
        self
    }

    /// Stall `node` for `ms` milliseconds, once, on its `after+1`-th
    /// passage of `site`.
    pub fn with_stall(mut self, node: u32, site: CrashSite, after: u32, ms: u64) -> Self {
        self.stall = Some(StallFault {
            node,
            site,
            after,
            ms,
            lane: None,
            seen: AtomicU32::new(0),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Pin the scheduled crash to one lane of its (widened) stage: only
    /// that lane's passages count toward `after`, and only that lane
    /// dies. Panics if no crash is scheduled yet.
    pub fn with_crash_lane(mut self, lane: u32) -> Self {
        self.crash
            .as_mut()
            .expect("with_crash_lane requires a scheduled crash")
            .lane = Some(lane);
        self
    }

    /// Pin the scheduled slowdown to one lane of every widened stage on
    /// the victim node. Panics if no slowdown is scheduled yet.
    pub fn with_slow_lane(mut self, lane: u32) -> Self {
        self.slow
            .as_mut()
            .expect("with_slow_lane requires a scheduled slowdown")
            .lane = Some(lane);
        self
    }

    /// Pin the scheduled stall to one lane of its stage. Panics if no
    /// stall is scheduled yet.
    pub fn with_stall_lane(mut self, lane: u32) -> Self {
        self.stall
            .as_mut()
            .expect("with_stall_lane requires a scheduled stall")
            .lane = Some(lane);
        self
    }

    /// Fail the `nth` (0-based) spill-file operation of kind `op` — a
    /// frame write on a merger thread, or a spill open/frame read on the
    /// compaction and reduce-input paths. One-shot; the store poisons and
    /// surfaces the error as `EngineError::Io` instead of panicking.
    pub fn with_spill_fault(mut self, op: SpillOp, nth: u32) -> Self {
        self.spill = Some(SpillFault {
            op,
            nth,
            seen: AtomicU32::new(0),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Make the `from → to` link flaky: each data message independently
    /// drops with probability `drop_pct`% or is delayed by `delay` with
    /// probability `delay_pct`%, decided deterministically per message.
    pub fn with_flaky_link(
        mut self,
        from: u32,
        to: u32,
        drop_pct: u32,
        delay_pct: u32,
        delay: Duration,
    ) -> Self {
        self.flaky = Some(FlakyLink {
            from,
            to,
            drop_pct,
            delay_pct,
            delay,
            seen: AtomicU32::new(0),
        });
        self
    }

    /// The seed the plan was derived from (0 for explicit plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed persistent slowdown, if any, as `(node, factor_x100)`.
    /// This is what lets telemetry tests check a live health finding
    /// against the plan's ground truth without re-deriving the seed.
    pub fn gray_slowdown(&self) -> Option<(u32, u32)> {
        self.slow.as_ref().map(|s| (s.node, s.factor_x100))
    }

    /// Arm (`Some`) or disarm (`None`) the observability tracer. Arming
    /// emits one `fault-armed` mark per scheduled fault on the chaos lane
    /// of the fault's node, and later firings emit their marks there too.
    pub fn arm_tracer(&self, tracer: Option<Arc<Tracer>>) {
        if let Some(t) = &tracer {
            if let Some(c) = &self.crash {
                t.lane(chaos_lane(c.node)).instant(MarkId::FaultArmed {
                    kind: if c.site == CrashSite::Reduce {
                        "task"
                    } else {
                        "crash"
                    },
                    detail: u64::from(c.after),
                });
            }
            if let Some(r) = &self.read {
                // A read fault is not pinned to a node; report it on the
                // cluster-wide lane of node 0.
                t.lane(chaos_lane(0)).instant(MarkId::FaultArmed {
                    kind: "read",
                    detail: r.block as u64,
                });
            }
            if let Some(f) = &self.net {
                t.lane(chaos_lane(f.from)).instant(MarkId::FaultArmed {
                    kind: match f.kind {
                        NetFaultKind::Drop => "net-drop",
                        NetFaultKind::Delay(_) => "net-delay",
                    },
                    detail: u64::from(f.nth),
                });
            }
            if let Some(s) = &self.slow {
                t.lane(chaos_lane(s.node)).instant(MarkId::FaultArmed {
                    kind: "slow",
                    detail: u64::from(s.factor_x100),
                });
            }
            if let Some(st) = &self.stall {
                t.lane(chaos_lane(st.node)).instant(MarkId::FaultArmed {
                    kind: "stall",
                    detail: st.ms,
                });
            }
            if let Some(f) = &self.flaky {
                t.lane(chaos_lane(f.from)).instant(MarkId::FaultArmed {
                    kind: "flaky",
                    detail: u64::from(f.drop_pct),
                });
            }
            if let Some(s) = &self.spill {
                // Not node-pinned: every store armed with the plan probes it.
                t.lane(chaos_lane(0)).instant(MarkId::FaultArmed {
                    kind: "spill",
                    detail: u64::from(s.nth),
                });
            }
        }
        *self.tracer.write() = tracer;
    }

    /// Emit `mark` on `node`'s chaos lane if a tracer is armed.
    fn trace_mark(&self, node: u32, mark: MarkId) {
        if let Some(t) = self.tracer.read().as_ref() {
            t.lane(chaos_lane(node)).instant(mark);
        }
    }

    /// Whether a whole-node crash is scheduled (at a map-side site).
    pub fn schedules_node_crash(&self) -> bool {
        self.crash
            .as_ref()
            .is_some_and(|c| c.site != CrashSite::Reduce)
    }

    /// Deterministic human-readable schedule, for reproducibility checks:
    /// equal seeds (and node counts) must yield equal descriptions.
    pub fn describe(&self) -> String {
        let mut parts = vec![format!("seed={:#x}", self.seed)];
        if let Some(c) = &self.crash {
            parts.push(format!(
                "crash(node={},site={},after={}{})",
                c.node,
                c.site.name(),
                c.after,
                lane_suffix(c.lane)
            ));
        }
        if let Some(r) = &self.read {
            parts.push(format!("read(block={})", r.block));
        }
        if let Some(n) = &self.net {
            let kind = match n.kind {
                NetFaultKind::Drop => "drop".to_string(),
                NetFaultKind::Delay(d) => format!("delay={}ms", d.as_millis()),
            };
            parts.push(format!("net({} {}->{},nth={})", kind, n.from, n.to, n.nth));
        }
        if let Some(s) = &self.slow {
            parts.push(format!(
                "slow(node={},x{}{})",
                s.node,
                s.factor_x100,
                lane_suffix(s.lane)
            ));
        }
        if let Some(st) = &self.stall {
            parts.push(format!(
                "stall(node={},site={},after={},ms={}{})",
                st.node,
                st.site.name(),
                st.after,
                st.ms,
                lane_suffix(st.lane)
            ));
        }
        if let Some(f) = &self.flaky {
            parts.push(format!(
                "flaky({}->{},drop={}%,delay={}%/{}ms)",
                f.from,
                f.to,
                f.drop_pct,
                f.delay_pct,
                f.delay.as_millis()
            ));
        }
        if let Some(s) = &self.spill {
            let op = match s.op {
                SpillOp::Write => "write",
                SpillOp::Read => "read",
            };
            parts.push(format!("spill({op},nth={})", s.nth));
        }
        parts.join(" ")
    }

    /// Whether the plan schedules any gray fault (slowdown, stall or
    /// flaky link).
    pub fn schedules_gray_fault(&self) -> bool {
        self.slow.is_some() || self.stall.is_some() || self.flaky.is_some()
    }

    /// Probe a map-pipeline crash site. Returns `true` exactly once — on
    /// the victim node's `after+1`-th passage of the scheduled site — after
    /// which the caller must treat the node as crashed. Equivalent to
    /// [`FaultPlan::crash_fires_lane`] on lane 0 of a single-lane stage
    /// (a lane-pinned fault still fires here when pinned to lane 0).
    pub fn crash_fires(&self, node: u32, site: CrashSite) -> bool {
        self.crash_fires_lane(node, site, 0)
    }

    /// Probe a map-pipeline crash site from lane `lane` of a (possibly
    /// widened) stage. A lane-pinned fault only counts and fires on its
    /// pinned lane — sibling lanes pass untouched and consume no
    /// passages; an unpinned fault counts passages across all lanes.
    pub fn crash_fires_lane(&self, node: u32, site: CrashSite, lane: u32) -> bool {
        let Some(c) = &self.crash else { return false };
        if c.site == CrashSite::Reduce
            || c.node != node
            || c.site != site
            || c.lane.is_some_and(|l| l != lane)
        {
            return false;
        }
        let seen = c.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = seen > c.after && !c.fired.swap(true, Ordering::Relaxed);
        if fires {
            self.trace_mark(
                node,
                MarkId::CrashFired {
                    site: c.site.name(),
                    after: u64::from(c.after),
                },
            );
        }
        fires
    }

    /// Probe the reduce fault for `node`. A [`CrashSite::Reduce`] schedule
    /// is injected as a reduce-task panic (recovered by the reduce retry
    /// budget), not as a node death: by the reduce phase a node's merged
    /// shuffle state is the only copy of its partitions, so whole-node
    /// reduce crashes are unrecoverable by re-execution alone (see
    /// DESIGN.md §3.5).
    pub fn reduce_fault_fires(&self, node: u32) -> bool {
        let Some(c) = &self.crash else { return false };
        let fires =
            c.site == CrashSite::Reduce && c.node == node && !c.fired.swap(true, Ordering::Relaxed);
        if fires {
            self.trace_mark(node, MarkId::TaskFaultFired);
        }
        fires
    }

    /// Probe the gray-failure plane after `node` passed `site` in `wall`
    /// time. Returns the extra time the caller must sleep to realise the
    /// scheduled degradation, or `None` when no gray fault applies (the
    /// common case — unarmed paths pay one branch per passage).
    ///
    /// Combines the one-shot stall (fires at most once per plan, emitting
    /// a `stall-fired` mark) with the persistent slowdown, which stretches
    /// every passage by `(factor − 1) × wall` and counts a
    /// [`CounterId::GraySlowdowns`] tick per throttled passage when a
    /// tracer is armed.
    pub fn gray_delay(&self, node: u32, site: CrashSite, wall: Duration) -> Option<Duration> {
        self.gray_delay_lane(node, site, 0, wall)
    }

    /// As [`FaultPlan::gray_delay`], probed from lane `lane` of a widened
    /// stage: lane-pinned stalls and slowdowns only touch their pinned
    /// lane (and consume no passages elsewhere).
    pub fn gray_delay_lane(
        &self,
        node: u32,
        site: CrashSite,
        lane: u32,
        wall: Duration,
    ) -> Option<Duration> {
        let mut total = Duration::ZERO;
        if let Some(st) = &self.stall {
            if st.node == node
                && st.site == site
                && st.lane.is_none_or(|l| l == lane)
                && !st.fired.load(Ordering::Relaxed)
            {
                let seen = st.seen.fetch_add(1, Ordering::Relaxed) + 1;
                if seen > st.after && !st.fired.swap(true, Ordering::Relaxed) {
                    total += Duration::from_millis(st.ms);
                    self.trace_mark(
                        node,
                        MarkId::StallFired {
                            site: site.name(),
                            ms: st.ms,
                        },
                    );
                }
            }
        }
        if let Some(s) = &self.slow {
            if s.node == node && s.factor_x100 > 100 && s.lane.is_none_or(|l| l == lane) {
                total += wall * (s.factor_x100 - 100) / 100;
                if let Some(t) = self.tracer.read().as_ref() {
                    t.lane(chaos_lane(node)).count(CounterId::GraySlowdowns, 1);
                }
            }
        }
        if total.is_zero() {
            None
        } else {
            Some(total)
        }
    }
}

/// `describe()` suffix for a lane-pinned fault (empty when unpinned, so
/// historical descriptions are unchanged).
fn lane_suffix(lane: Option<u32>) -> String {
    lane.map(|l| format!(",lane={l}")).unwrap_or_default()
}

/// Node `node`'s chaos lane.
fn chaos_lane(node: u32) -> LaneId {
    LaneId {
        job: 0,
        node,
        realm: Realm::Chaos,
    }
}

impl StorageFaultHook for FaultPlan {
    fn read_fault(&self, _path: &str, block: usize, source: NodeId) -> bool {
        let Some(r) = &self.read else { return false };
        let fires = r.block == block && !r.fired.swap(true, Ordering::Relaxed);
        if fires {
            self.trace_mark(
                source.0,
                MarkId::ReadFaultFired {
                    block: block as u64,
                },
            );
        }
        fires
    }
}

impl SpillFaultHook for FaultPlan {
    fn spill_fault(&self, op: SpillOp) -> bool {
        let Some(s) = &self.spill else { return false };
        if s.op != op || s.fired.load(Ordering::Relaxed) {
            return false;
        }
        let seen = s.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = seen > s.nth && !s.fired.swap(true, Ordering::Relaxed);
        if fires {
            // Spill faults are not pinned to a node (every store armed
            // with this plan probes it); report on the cluster lane.
            self.trace_mark(
                0,
                MarkId::SpillFaultFired {
                    op: match s.op {
                        SpillOp::Write => "write",
                        SpillOp::Read => "read",
                    },
                },
            );
        }
        fires
    }
}

impl NetFaultHook for FaultPlan {
    fn on_data_message(&self, from: NodeId, to: NodeId) -> NetFaultAction {
        if let Some(f) = &self.flaky {
            if f.from == from.0 && f.to == to.0 {
                let n = f.seen.fetch_add(1, Ordering::Relaxed);
                // The outcome is a pure function of (seed, link, message
                // index): re-running the same schedule rolls identically.
                let link = (u64::from(f.from) << 32) | u64::from(f.to);
                let mut rng = SplitMix64::new(
                    self.seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(n),
                );
                let roll = rng.gen_range(100) as u32;
                if roll < f.drop_pct {
                    self.trace_mark(from.0, MarkId::NetFaultFired { kind: "drop" });
                    return NetFaultAction::Drop;
                }
                if roll < f.drop_pct + f.delay_pct {
                    self.trace_mark(from.0, MarkId::NetFaultFired { kind: "delay" });
                    return NetFaultAction::Delay(f.delay);
                }
            }
        }
        let Some(f) = &self.net else {
            return NetFaultAction::Deliver;
        };
        if f.from != from.0 || f.to != to.0 || f.fired.load(Ordering::Relaxed) {
            return NetFaultAction::Deliver;
        }
        let seen = f.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if seen > f.nth && !f.fired.swap(true, Ordering::Relaxed) {
            match f.kind {
                NetFaultKind::Drop => {
                    self.trace_mark(from.0, MarkId::NetFaultFired { kind: "drop" });
                    NetFaultAction::Drop
                }
                NetFaultKind::Delay(d) => {
                    self.trace_mark(from.0, MarkId::NetFaultFired { kind: "delay" });
                    NetFaultAction::Delay(d)
                }
            }
        } else {
            NetFaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF, u64::MAX] {
            let a = FaultPlan::from_seed(seed, 4);
            let b = FaultPlan::from_seed(seed, 4);
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
        }
    }

    #[test]
    fn every_plan_schedules_at_least_one_fault() {
        for seed in 0..200u64 {
            let p = FaultPlan::from_seed(seed, 4);
            assert!(
                p.crash.is_some() || p.read.is_some() || p.net.is_some(),
                "seed {seed} scheduled nothing"
            );
        }
    }

    #[test]
    fn crash_fires_once_at_the_right_passage() {
        let p = FaultPlan::crash(2, CrashSite::Kernel, 2);
        // Wrong node / site: never fires, never consumes passages.
        assert!(!p.crash_fires(1, CrashSite::Kernel));
        assert!(!p.crash_fires(2, CrashSite::Shuffle));
        // Victim survives `after` passages, dies on the next, only once.
        assert!(!p.crash_fires(2, CrashSite::Kernel));
        assert!(!p.crash_fires(2, CrashSite::Kernel));
        assert!(p.crash_fires(2, CrashSite::Kernel));
        assert!(!p.crash_fires(2, CrashSite::Kernel));
    }

    #[test]
    fn reduce_site_fires_via_reduce_probe_only() {
        let p = FaultPlan::crash(1, CrashSite::Reduce, 0);
        assert!(!p.schedules_node_crash());
        assert!(!p.crash_fires(1, CrashSite::Kernel));
        assert!(!p.reduce_fault_fires(0));
        assert!(p.reduce_fault_fires(1));
        assert!(!p.reduce_fault_fires(1));
    }

    #[test]
    fn read_fault_fires_once_on_its_block() {
        let p = FaultPlan::empty().with_read_fault(3);
        assert!(!p.read_fault("/f", 0, NodeId(0)));
        assert!(p.read_fault("/f", 3, NodeId(1)));
        assert!(!p.read_fault("/f", 3, NodeId(1)));
    }

    #[test]
    fn net_fault_fires_on_nth_message_of_its_link() {
        let p = FaultPlan::empty().with_net_drop(1, 0, 2);
        // Other links unaffected.
        assert_eq!(
            p.on_data_message(NodeId(0), NodeId(1)),
            NetFaultAction::Deliver
        );
        // nth=2: two messages pass, the third drops, later ones pass.
        assert_eq!(
            p.on_data_message(NodeId(1), NodeId(0)),
            NetFaultAction::Deliver
        );
        assert_eq!(
            p.on_data_message(NodeId(1), NodeId(0)),
            NetFaultAction::Deliver
        );
        assert_eq!(
            p.on_data_message(NodeId(1), NodeId(0)),
            NetFaultAction::Drop
        );
        assert_eq!(
            p.on_data_message(NodeId(1), NodeId(0)),
            NetFaultAction::Deliver
        );
    }

    #[test]
    fn map_stage_crash_sites_cover_all_five_stages() {
        use gw_pipeline::StageId;
        let sites: Vec<CrashSite> = StageId::ALL
            .into_iter()
            .map(CrashSite::for_map_stage)
            .collect();
        assert_eq!(
            sites,
            vec![
                CrashSite::Read,
                CrashSite::Stage,
                CrashSite::Kernel,
                CrashSite::Retrieve,
                CrashSite::Shuffle,
            ]
        );
    }

    #[test]
    fn armed_tracer_records_arming_and_firing() {
        use gw_trace::LogicalKind;
        let tracer = Arc::new(Tracer::new());
        let p = FaultPlan::crash(2, CrashSite::Kernel, 1).with_read_fault(3);
        p.arm_tracer(Some(Arc::clone(&tracer)));
        assert!(!p.crash_fires(2, CrashSite::Kernel));
        assert!(p.crash_fires(2, CrashSite::Kernel));
        assert!(p.read_fault("/f", 3, NodeId(1)));
        let marks: Vec<(u32, MarkId)> = tracer
            .finish()
            .logical_events()
            .into_iter()
            .filter_map(|(lane, kind)| match kind {
                LogicalKind::Instant { mark } => Some((lane.node, mark)),
                _ => None,
            })
            .collect();
        assert!(marks.contains(&(
            2,
            MarkId::FaultArmed {
                kind: "crash",
                detail: 1
            }
        )));
        assert!(marks.contains(&(
            0,
            MarkId::FaultArmed {
                kind: "read",
                detail: 3
            }
        )));
        assert!(marks.contains(&(
            2,
            MarkId::CrashFired {
                site: "kernel",
                after: 1
            }
        )));
        assert!(marks.contains(&(1, MarkId::ReadFaultFired { block: 3 })));
    }

    #[test]
    fn gray_seed_is_deterministic_and_always_schedules() {
        for seed in 0..200u64 {
            let a = FaultPlan::gray_from_seed(seed, 4);
            let b = FaultPlan::gray_from_seed(seed, 4);
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
            assert!(a.schedules_gray_fault(), "seed {seed} scheduled nothing");
            assert!(
                a.crash.is_none() && a.read.is_none() && a.net.is_none(),
                "seed {seed} scheduled a non-gray fault"
            );
        }
    }

    #[test]
    fn slowdown_stretches_every_passage_proportionally() {
        let p = FaultPlan::empty().with_slowdown(1, 400);
        // 4× slower: a 10ms passage owes 30ms of extra sleep, every time.
        let wall = Duration::from_millis(10);
        assert_eq!(
            p.gray_delay(1, CrashSite::Kernel, wall),
            Some(Duration::from_millis(30))
        );
        assert_eq!(
            p.gray_delay(1, CrashSite::Read, wall),
            Some(Duration::from_millis(30))
        );
        // Other nodes run at full speed.
        assert_eq!(p.gray_delay(0, CrashSite::Kernel, wall), None);
    }

    #[test]
    fn stall_fires_once_at_the_right_passage() {
        let p = FaultPlan::empty().with_stall(2, CrashSite::Stage, 1, 25);
        let wall = Duration::from_millis(1);
        // Wrong node / site never stalls and never consumes passages.
        assert_eq!(p.gray_delay(1, CrashSite::Stage, wall), None);
        assert_eq!(p.gray_delay(2, CrashSite::Kernel, wall), None);
        // Victim survives `after` passages, stalls on the next, only once.
        assert_eq!(p.gray_delay(2, CrashSite::Stage, wall), None);
        assert_eq!(
            p.gray_delay(2, CrashSite::Stage, wall),
            Some(Duration::from_millis(25))
        );
        assert_eq!(p.gray_delay(2, CrashSite::Stage, wall), None);
    }

    #[test]
    fn flaky_link_rolls_per_message_deterministically() {
        let delay = Duration::from_millis(4);
        let mk = || FaultPlan::empty().with_flaky_link(1, 0, 30, 30, delay);
        let a = mk();
        let b = mk();
        let rolls_a: Vec<NetFaultAction> = (0..64)
            .map(|_| a.on_data_message(NodeId(1), NodeId(0)))
            .collect();
        let rolls_b: Vec<NetFaultAction> = (0..64)
            .map(|_| b.on_data_message(NodeId(1), NodeId(0)))
            .collect();
        assert_eq!(rolls_a, rolls_b, "same message index, same outcome");
        // With 30%/30% over 64 messages all three outcomes should appear.
        assert!(rolls_a.contains(&NetFaultAction::Drop));
        assert!(rolls_a.contains(&NetFaultAction::Delay(delay)));
        assert!(rolls_a.contains(&NetFaultAction::Deliver));
        // Other links are untouched.
        assert_eq!(
            a.on_data_message(NodeId(0), NodeId(1)),
            NetFaultAction::Deliver
        );
    }

    #[test]
    fn gray_firings_reach_an_armed_tracer() {
        use gw_trace::LogicalKind;
        let tracer = Arc::new(Tracer::new());
        let p = FaultPlan::empty()
            .with_slowdown(1, 300)
            .with_stall(1, CrashSite::Kernel, 0, 15);
        p.arm_tracer(Some(Arc::clone(&tracer)));
        assert!(p
            .gray_delay(1, CrashSite::Kernel, Duration::from_millis(2))
            .is_some());
        let trace = tracer.finish();
        let marks: Vec<MarkId> = trace
            .logical_events()
            .into_iter()
            .filter_map(|(_, kind)| match kind {
                LogicalKind::Instant { mark } => Some(mark),
                _ => None,
            })
            .collect();
        assert!(marks.contains(&MarkId::FaultArmed {
            kind: "slow",
            detail: 300
        }));
        assert!(marks.contains(&MarkId::FaultArmed {
            kind: "stall",
            detail: 15
        }));
        assert!(marks.contains(&MarkId::StallFired {
            site: "kernel",
            ms: 15
        }));
        assert_eq!(trace.metrics().counter_total(CounterId::GraySlowdowns), 1);
    }

    #[test]
    fn unarmed_gray_probe_is_silent() {
        let p = FaultPlan::empty();
        assert_eq!(
            p.gray_delay(0, CrashSite::Kernel, Duration::from_millis(5)),
            None
        );
        assert_eq!(
            p.on_data_message(NodeId(0), NodeId(1)),
            NetFaultAction::Deliver
        );
    }

    #[test]
    fn lane_pinned_crash_spares_sibling_lanes() {
        let p = FaultPlan::crash(2, CrashSite::Kernel, 1).with_crash_lane(1);
        assert!(p.describe().contains("lane=1"));
        // Sibling lanes never fire and never consume passages.
        assert!(!p.crash_fires_lane(2, CrashSite::Kernel, 0));
        assert!(!p.crash_fires_lane(2, CrashSite::Kernel, 0));
        assert!(!p.crash_fires_lane(2, CrashSite::Kernel, 2));
        // The pinned lane survives `after` of *its own* passages first.
        assert!(!p.crash_fires_lane(2, CrashSite::Kernel, 1));
        assert!(p.crash_fires_lane(2, CrashSite::Kernel, 1));
        assert!(!p.crash_fires_lane(2, CrashSite::Kernel, 1));
        // The single-lane probe is lane 0, so a lane-1 pin never fires it.
        let q = FaultPlan::crash(2, CrashSite::Kernel, 0).with_crash_lane(1);
        assert!(!q.crash_fires(2, CrashSite::Kernel));
        assert!(q.crash_fires_lane(2, CrashSite::Kernel, 1));
    }

    #[test]
    fn lane_pinned_gray_faults_only_touch_their_lane() {
        let wall = Duration::from_millis(10);
        let p = FaultPlan::empty().with_slowdown(1, 300).with_slow_lane(2);
        assert_eq!(p.gray_delay_lane(1, CrashSite::Kernel, 0, wall), None);
        assert_eq!(
            p.gray_delay_lane(1, CrashSite::Kernel, 2, wall),
            Some(Duration::from_millis(20))
        );
        // Legacy single-lane probe = lane 0: untouched by a lane-2 pin.
        assert_eq!(p.gray_delay(1, CrashSite::Kernel, wall), None);

        let st = FaultPlan::empty()
            .with_stall(2, CrashSite::Stage, 1, 25)
            .with_stall_lane(0);
        // Lane-1 passages consume nothing.
        assert_eq!(st.gray_delay_lane(2, CrashSite::Stage, 1, wall), None);
        assert_eq!(st.gray_delay_lane(2, CrashSite::Stage, 1, wall), None);
        // Lane 0 survives `after` of its own passages, stalls once.
        assert_eq!(st.gray_delay_lane(2, CrashSite::Stage, 0, wall), None);
        assert_eq!(
            st.gray_delay_lane(2, CrashSite::Stage, 0, wall),
            Some(Duration::from_millis(25))
        );
        assert_eq!(st.gray_delay_lane(2, CrashSite::Stage, 0, wall), None);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut uniq = xs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), xs.len());
    }
}
