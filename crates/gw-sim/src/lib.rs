//! Discrete-event cluster simulator for the Glasswing reproduction.
//!
//! The paper's horizontal-scalability experiments (Figs. 2 and 3) run five
//! applications on up to 64 DAS-4 nodes under three frameworks (Glasswing,
//! Hadoop, GPMR), on CPUs and GPUs, over HDFS and local file systems. This
//! crate simulates those experiments: a general discrete-event engine
//! ([`engine`]) with FIFO multi-server resources and counting semaphores,
//! plus per-framework job models that reproduce each system's execution
//! *structure*:
//!
//! * [`glasswing_model`] — the 5-stage pipeline with buffer interlocks,
//!   overlap of I/O/PCIe/kernel/partition, push shuffle during map,
//!   background merging (merge delay), and a pipelined reduce;
//! * [`hadoop_model`] — slot waves, per-task JVM startup, sequential
//!   in-task processing, pull shuffle strictly after map;
//! * [`gpmr_model`] — read-all then compute (no overlap), GPU-only,
//!   in-core intermediate data.
//!
//! Model parameters ([`params`]) are calibrated in two ways: device and
//! interconnect characteristics come from the published hardware specs
//! (`gw-device` profiles, GbE/IPoIB), and per-application service demands
//! (seconds per MB of input on the 16-thread Type-1 node) are set so the
//! single-node Glasswing-CPU times sit in the range the paper reports,
//! with every constant documented at its definition. The *shape* of the
//! output — who wins, by what factor, where curves cross — emerges from
//! the structural models, not from per-figure tuning.

pub mod engine;
pub mod glasswing_model;
pub mod gpmr_model;
pub mod hadoop_model;
pub mod params;
pub mod speculation;
pub mod sweep;

pub use engine::{ResourceId, SemaphoreId, Sim};
pub use params::{AppParams, ClusterParams, DeviceClass, StorageKind};
pub use speculation::{simulate_speculation, SpecOutcome, SpecParams};
pub use sweep::{simulate, FrameworkKind, SimResult};
