//! Unified entry point and node-count sweeps for the figures.

use serde::Serialize;

use crate::glasswing_model::simulate_glasswing;
use crate::gpmr_model::simulate_gpmr;
use crate::hadoop_model::simulate_hadoop;
use crate::params::{AppParams, ClusterParams};

/// Which framework model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameworkKind {
    /// The Glasswing DES model.
    Glasswing,
    /// The Hadoop analytic model.
    Hadoop,
    /// The GPMR analytic model (optionally with a kernel penalty).
    Gpmr {
        /// Map-kernel inefficiency multiplier (1000 = ×1.0, fixed-point
        /// ‰ to keep the enum `Eq`/`Copy`).
        penalty_permille: u32,
    },
}

impl FrameworkKind {
    /// GPMR with no penalty.
    pub const GPMR: FrameworkKind = FrameworkKind::Gpmr {
        penalty_permille: 1000,
    };

    /// GPMR with a kernel penalty factor.
    pub fn gpmr_with_penalty(factor: f64) -> Self {
        FrameworkKind::Gpmr {
            penalty_permille: (factor * 1000.0) as u32,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FrameworkKind::Glasswing => "Glasswing",
            FrameworkKind::Hadoop => "Hadoop",
            FrameworkKind::Gpmr { .. } => "GPMR",
        }
    }
}

/// Result of one simulated job.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimResult {
    /// Node count.
    pub nodes: usize,
    /// Total job time, seconds.
    pub total: f64,
    /// Map (or read+compute) portion.
    pub map_phase: f64,
    /// Shuffle/merge portion.
    pub merge_phase: f64,
    /// Reduce portion.
    pub reduce_phase: f64,
    /// GPMR only: compute-without-I/O total (Fig. 3(e)'s lower line).
    pub compute_only: Option<f64>,
}

/// Run one framework model.
pub fn simulate(
    framework: FrameworkKind,
    app: &AppParams,
    cluster: &ClusterParams,
    nodes: usize,
) -> SimResult {
    match framework {
        FrameworkKind::Glasswing => {
            let o = simulate_glasswing(app, cluster, nodes);
            SimResult {
                nodes,
                total: o.total,
                map_phase: o.map_phase,
                merge_phase: o.merge_delay,
                reduce_phase: o.reduce_phase,
                compute_only: None,
            }
        }
        FrameworkKind::Hadoop => {
            let o = simulate_hadoop(app, cluster, nodes);
            SimResult {
                nodes,
                total: o.total,
                map_phase: o.map_phase,
                merge_phase: o.shuffle_phase,
                reduce_phase: o.reduce_phase,
                compute_only: None,
            }
        }
        FrameworkKind::Gpmr { penalty_permille } => {
            let o = simulate_gpmr(app, cluster, nodes, penalty_permille as f64 / 1000.0);
            SimResult {
                nodes,
                total: o.total,
                map_phase: o.io_read + o.compute,
                merge_phase: o.exchange,
                reduce_phase: o.reduce + o.io_write,
                compute_only: Some(o.compute_only()),
            }
        }
    }
}

/// Sweep a framework over node counts; returns one result per count.
pub fn sweep(
    framework: FrameworkKind,
    app: &AppParams,
    cluster: &ClusterParams,
    node_counts: &[usize],
) -> Vec<SimResult> {
    node_counts
        .iter()
        .map(|&n| simulate(framework, app, cluster, n))
        .collect()
}

/// Speedup series relative to the first entry (the paper's definition:
/// "execution time of one slave node over the execution time of n slave
/// nodes of the same framework").
pub fn speedups(results: &[SimResult]) -> Vec<f64> {
    let base = results.first().map(|r| r.total).unwrap_or(1.0);
    results
        .iter()
        .map(|r| base / r.total * results[0].nodes as f64)
        .collect()
}

/// The node counts of the paper's Fig. 2/3 sweeps.
pub fn paper_node_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_counts() {
        let app = AppParams::wc();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let counts = paper_node_counts();
        let results = sweep(FrameworkKind::Glasswing, &app, &cluster, &counts);
        assert_eq!(results.len(), counts.len());
        for (r, &n) in results.iter().zip(&counts) {
            assert_eq!(r.nodes, n);
            assert!(r.total > 0.0);
        }
    }

    #[test]
    fn speedups_start_at_base() {
        let app = AppParams::pvc();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let results = sweep(FrameworkKind::Hadoop, &app, &cluster, &[1, 2, 4]);
        let s = speedups(&results);
        assert!((s[0] - 1.0).abs() < 1e-9);
        assert!(s[1] > 1.0);
        assert!(s[2] > s[1]);
    }

    #[test]
    fn gpmr_reports_compute_only() {
        let app = AppParams::km_few_centers();
        let cluster = ClusterParams::das4_gpu_local();
        let r = simulate(FrameworkKind::GPMR, &app, &cluster, 2);
        assert!(r.compute_only.unwrap() < r.total);
    }

    #[test]
    fn penalty_encoding_roundtrips() {
        let f = FrameworkKind::gpmr_with_penalty(6.0);
        match f {
            FrameworkKind::Gpmr { penalty_permille } => assert_eq!(penalty_permille, 6000),
            _ => unreachable!(),
        }
        assert_eq!(f.name(), "GPMR");
    }
}
