//! Analytic model of a Hadoop job on the same cluster.
//!
//! Hadoop's execution structure (the reasons the paper gives for the gap):
//!
//! 1. **No pipeline overlap** inside a task: a map task reads its split,
//!    then processes it, then sorts/spills — I/O and compute add up
//!    instead of overlapping ("Glasswing uses pipeline parallelism to
//!    overlap I/O and computation").
//! 2. **Coarse-grained parallelism with JVM overhead**: per-record
//!    processing costs `jvm_factor` more than the native fine-grained
//!    kernels.
//! 3. **Task startup**: every wave of tasks pays a JVM launch cost.
//! 4. **Pull shuffle**: intermediate data moves only after the map phase
//!    ends, adding a full network + merge term to the critical path.
//!
//! The model assumes the tuned deployment the paper describes ("a
//! parameter sweep ... consequently all cores of all nodes are occupied
//! maximally", well load-balanced, no speculative restarts).

use crate::params::{AppParams, ClusterParams};

/// Phase breakdown of a simulated Hadoop job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HadoopOutcome {
    /// Map phase: waves of (startup + read + process + sort).
    pub map_phase: f64,
    /// Shuffle: pull of remote fragments + merge, after map.
    pub shuffle_phase: f64,
    /// Reduce phase: process + write output.
    pub reduce_phase: f64,
    /// Total job time.
    pub total: f64,
}

/// Total reduce partitions of the job (one reducer wave per node here;
/// the paper's sweep picks the optimal count, which is O(cores), but the
/// fragment count only needs the node multiplier).
fn total_reduces_f(nodes: usize, _cluster: &ClusterParams) -> f64 {
    nodes as f64
}

/// Simulate a Hadoop job analytically.
pub fn simulate_hadoop(app: &AppParams, cluster: &ClusterParams, nodes: usize) -> HadoopOutcome {
    assert!(nodes > 0);
    let n = nodes as f64;
    let input_per_node = app.input_mb / n;
    let inter_per_node = app.input_mb * app.intermediate_ratio / n;
    let out_per_node = app.input_mb * app.output_ratio / n;

    // ---- Map phase ----
    // Tasks on one node; waves over the slot pool.
    let tasks_per_node = (input_per_node / app.chunk_mb).ceil().max(1.0);
    let waves = (tasks_per_node / cluster.hadoop_slots).ceil().max(1.0);
    // Node-aggregate demands (all slots busy): reading is serialized on
    // the node's storage path; processing occupies the cores.
    let jvm = cluster.hadoop_jvm_factor * app.hadoop_cost_factor;
    let read = input_per_node / cluster.read_bw();
    let process = input_per_node * app.map_sec_per_mb * jvm;
    // Task-end sort of map output (quicksort + spill), charged like the
    // Glasswing partition demand but with the JVM factor.
    let sort = inter_per_node * app.partition_sec_per_mb * jvm / cluster.hadoop_slots.min(4.0);
    // Map output is written to local disk at task end (it is served from
    // disk during the shuffle).
    let spill_write = inter_per_node / cluster.write_bw_mb;
    let startup = waves * cluster.hadoop_task_startup;
    // No overlap: the phases of a task add up.
    let map_phase = read + process + sort + spill_write + startup;

    // ---- Shuffle (pull, strictly after map) ----
    let remote_fraction = if nodes > 1 { (n - 1.0) / n } else { 0.0 };
    let pull = inter_per_node * remote_fraction / cluster.net_bw_mb;
    // Serving fragments from disk: every reducer fetches one fragment per
    // map task, so a node serves tasks_per_node × total_reduces fragments
    // with a seek each.
    let fragments = tasks_per_node * total_reduces_f(nodes, cluster);
    let seek = fragments * cluster.hadoop_shuffle_seek;
    let reread = inter_per_node / cluster.local_read_bw_mb;
    let merge = inter_per_node / cluster.merge_bw_mb;
    let shuffle_phase = pull + seek + reread + merge;

    // ---- Reduce phase ----
    let reduce_process = if app.has_reduce {
        inter_per_node * app.reduce_sec_per_mb * jvm
    } else {
        0.0
    };
    let write = out_per_node * app.output_replication / cluster.write_bw_mb;
    let reduce_startup = cluster.hadoop_task_startup;
    let reduce_phase = reduce_process + write + reduce_startup;

    HadoopOutcome {
        map_phase,
        shuffle_phase,
        reduce_phase,
        // Per-job fixed overhead (setup/teardown, heartbeat scheduling
        // lag) rides on top of the phases and does not shrink with nodes.
        total: map_phase + shuffle_phase + reduce_phase + cluster.hadoop_job_fixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glasswing_model::simulate_glasswing;
    use crate::params::AppParams;

    #[test]
    fn hadoop_scales_but_less_efficiently_than_glasswing() {
        let app = AppParams::wc();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let h1 = simulate_hadoop(&app, &cluster, 1).total;
        let h64 = simulate_hadoop(&app, &cluster, 64).total;
        assert!(h64 < h1);
        let g1 = simulate_glasswing(&app, &cluster, 1).total;
        let g64 = simulate_glasswing(&app, &cluster, 64).total;
        // Glasswing wins at both ends...
        assert!(
            g1 < h1,
            "single node: glasswing {g1:.0}s vs hadoop {h1:.0}s"
        );
        assert!(
            g64 < h64,
            "64 nodes: glasswing {g64:.0}s vs hadoop {h64:.0}s"
        );
        // ...and its parallel efficiency is better (paper: 61% vs 37% for
        // WC at 64 nodes) — so the ratio grows with scale.
        let ratio1 = h1 / g1;
        let ratio64 = h64 / g64;
        assert!(
            ratio64 > ratio1,
            "gap must grow with nodes: {ratio1:.2} -> {ratio64:.2}"
        );
    }

    #[test]
    fn single_node_gap_is_in_the_paper_band() {
        // Paper: single-node improvement factor of at least 1.2×, up to
        // ≈2.6× for WC.
        let cluster = ClusterParams::das4_cpu_hdfs();
        for app in [
            AppParams::pvc(),
            AppParams::wc(),
            AppParams::km_many_centers(),
        ] {
            let h = simulate_hadoop(&app, &cluster, 1).total;
            let g = simulate_glasswing(&app, &cluster, 1).total;
            let ratio = h / g;
            assert!(
                (1.15..4.0).contains(&ratio),
                "{}: hadoop/glasswing ratio {ratio:.2} out of band",
                app.name
            );
        }
    }

    #[test]
    fn shuffle_is_on_the_critical_path() {
        let app = AppParams::ts();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let out = simulate_hadoop(&app, &cluster, 16);
        assert!(out.shuffle_phase > 0.0);
        assert!(out.total >= out.map_phase + out.shuffle_phase);
    }

    #[test]
    fn startup_cost_grows_at_scale_with_fixed_input() {
        // With fixed total input, more nodes ⇒ fewer tasks per node ⇒
        // fewer waves, but at least one wave of startup always remains.
        let app = AppParams::wc();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let h64 = simulate_hadoop(&app, &cluster, 64);
        assert!(h64.map_phase >= cluster.hadoop_task_startup);
    }
}
