//! The discrete-event simulation engine.
//!
//! A minimal but general DES: a time-ordered event queue of boxed
//! continuations, FIFO multi-server resources (disks, NICs, pipeline
//! stages, compute devices), and counting semaphores (the pipeline's
//! buffer tokens). Deterministic: ties break by schedule order.
//!
//! The continuation style keeps the engine dependency-free (no async
//! runtime): a process is a chain of closures, each scheduling the next.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Simulated time in seconds.
pub type SimTime = f64;

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq): reverse the natural comparison.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// FIFO multi-server resource: `servers` parallel units, each serving one
/// request at a time.
struct Resource {
    /// Completion time of each server's current work.
    free_at: Vec<SimTime>,
}

/// Handle to a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceId(usize);

/// Counting semaphore with a FIFO waiter queue.
struct Semaphore {
    permits: usize,
    waiters: VecDeque<EventFn>,
}

/// Handle to a semaphore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemaphoreId(usize);

/// The simulator.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    resources: Vec<Resource>,
    semaphores: Vec<Semaphore>,
    events_executed: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Fresh simulator at t = 0.
    pub fn new() -> Self {
        Sim {
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            resources: Vec::new(),
            semaphores: Vec::new(),
            events_executed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events executed so far (sanity/inspection).
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Schedule `f` to run after `delay` seconds.
    pub fn schedule(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim) + 'static) {
        debug_assert!(delay >= 0.0, "negative delay");
        let at = self.now + delay.max(0.0);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Create a resource with `servers` parallel units.
    pub fn add_resource(&mut self, servers: usize) -> ResourceId {
        assert!(servers > 0);
        self.resources.push(Resource {
            free_at: vec![0.0; servers],
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Occupy `r` for `service` seconds (FIFO on the earliest-free server)
    /// and run `done` at completion. Returns the completion time.
    pub fn use_resource(
        &mut self,
        r: ResourceId,
        service: SimTime,
        done: impl FnOnce(&mut Sim) + 'static,
    ) -> SimTime {
        debug_assert!(service >= 0.0, "negative service time");
        let res = &mut self.resources[r.0];
        // Earliest-free server.
        let (idx, &free) = res
            .free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(Ordering::Equal))
            .expect("resource has servers");
        let start = free.max(self.now);
        let completes = start + service.max(0.0);
        res.free_at[idx] = completes;
        let delay = completes - self.now;
        self.schedule(delay, done);
        completes
    }

    /// When `r` would complete a request of `service` seconds submitted
    /// now, without occupying it (for inspection).
    pub fn peek_completion(&self, r: ResourceId, service: SimTime) -> SimTime {
        let free = self.resources[r.0]
            .free_at
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        free.max(self.now) + service
    }

    /// Create a semaphore with `permits` initial permits.
    pub fn add_semaphore(&mut self, permits: usize) -> SemaphoreId {
        self.semaphores.push(Semaphore {
            permits,
            waiters: VecDeque::new(),
        });
        SemaphoreId(self.semaphores.len() - 1)
    }

    /// Acquire one permit; `then` runs immediately (this tick) if a permit
    /// is available, else when one is released (FIFO).
    pub fn acquire(&mut self, s: SemaphoreId, then: impl FnOnce(&mut Sim) + 'static) {
        let sem = &mut self.semaphores[s.0];
        if sem.permits > 0 {
            sem.permits -= 1;
            self.schedule(0.0, then);
        } else {
            sem.waiters.push_back(Box::new(then));
        }
    }

    /// Release one permit, waking the oldest waiter if any.
    pub fn release(&mut self, s: SemaphoreId) {
        let sem = &mut self.semaphores[s.0];
        if let Some(waiter) = sem.waiters.pop_front() {
            // Permit transfers directly to the waiter.
            self.schedule(0.0, waiter);
        } else {
            sem.permits += 1;
        }
    }

    /// Run until the event queue is empty; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at + 1e-12 >= self.now, "time went backwards");
            self.now = ev.at.max(self.now);
            self.events_executed += 1;
            (ev.f)(self);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(3.0, 3u32), (1.0, 1), (2.0, 2)] {
            let log = Rc::clone(&log);
            sim.schedule(delay, move |_| log.borrow_mut().push(tag));
        }
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert!((end - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5u32 {
            let log = Rc::clone(&log);
            sim.schedule(1.0, move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_server_resource_serialises() {
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        let ends: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let ends = Rc::clone(&ends);
            sim.schedule(0.0, move |sim| {
                sim.use_resource(r, 2.0, move |sim| ends.borrow_mut().push(sim.now()));
            });
        }
        sim.run();
        assert_eq!(*ends.borrow(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn multi_server_resource_runs_in_parallel() {
        let mut sim = Sim::new();
        let r = sim.add_resource(2);
        let ends: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let ends = Rc::clone(&ends);
            sim.schedule(0.0, move |sim| {
                sim.use_resource(r, 2.0, move |sim| ends.borrow_mut().push(sim.now()));
            });
        }
        sim.run();
        assert_eq!(*ends.borrow(), vec![2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn semaphore_blocks_and_wakes_fifo() {
        let mut sim = Sim::new();
        let sem = sim.add_semaphore(1);
        let log: Rc<RefCell<Vec<(u32, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        // Two critical sections of 5s each; second must wait for release.
        for tag in 0..2u32 {
            let log = Rc::clone(&log);
            sim.schedule(0.0, move |sim| {
                sim.acquire(sem, move |sim| {
                    log.borrow_mut().push((tag, sim.now()));
                    sim.schedule(5.0, move |sim| sim.release(sem));
                });
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log[0], (0, 0.0));
        assert_eq!(log[1], (1, 5.0));
    }

    #[test]
    fn pipeline_of_resources_overlaps() {
        // Two-stage pipeline, 3 items, stage times 1s and 2s: classic
        // makespan = 1 + 3*2 = 7.
        let mut sim = Sim::new();
        let s1 = sim.add_resource(1);
        let s2 = sim.add_resource(1);
        let end: Rc<RefCell<f64>> = Rc::new(RefCell::new(0.0));
        for _ in 0..3 {
            let end = Rc::clone(&end);
            sim.schedule(0.0, move |sim| {
                sim.use_resource(s1, 1.0, move |sim| {
                    sim.use_resource(s2, 2.0, move |sim| {
                        *end.borrow_mut() = sim.now();
                    });
                });
            });
        }
        sim.run();
        assert!((*end.borrow() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn peek_completion_does_not_occupy() {
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        assert_eq!(sim.peek_completion(r, 5.0), 5.0);
        // Peeking twice gives the same answer (no reservation happened).
        assert_eq!(sim.peek_completion(r, 5.0), 5.0);
        sim.use_resource(r, 2.0, |_| {});
        assert_eq!(sim.peek_completion(r, 5.0), 7.0);
    }

    #[test]
    fn run_returns_final_time() {
        let mut sim = Sim::new();
        sim.schedule(10.0, |_| {});
        assert_eq!(sim.run(), 10.0);
        // Empty run keeps time.
        assert_eq!(sim.run(), 10.0);
    }
}
