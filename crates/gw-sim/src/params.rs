//! Simulation parameters: cluster/hardware characteristics and per-
//! application service demands.
//!
//! ## Calibration
//!
//! Hardware constants come from the DAS-4 specs the paper lists (dual
//! quad-core Xeon nodes with HT, GTX 480 / K20m GPUs, GbE + QDR IPoIB,
//! software-RAID disks) and from the `gw-device` profiles. Per-application
//! demands are *service demands* in seconds per MB of data on one Type-1
//! node with all 16 hardware threads busy; they fold in record decode and
//! framework per-record overheads, and are set so single-node Glasswing
//! CPU times land in the regime the paper reports. The reproduction
//! targets are *shapes* (ordering, ratios, crossovers), which come from
//! the structural models, not these constants.
//!
//! Workload sizes follow the paper where the scan preserved them (TeraSort
//! 1 TB, replication 1 on output; PVC ~30 GB WikiBench traces; WC ~27 GB
//! Wikipedia dump) and are documented reconstructions elsewhere (K-Means
//! "K centers" → 4096 centers / 2²⁷ points / 8 dims; the few-center GPU
//! configuration → 64 centers over 2²⁹ points; MM → 8192² matrices in
//! 512² tiles).

/// Compute device class for a simulated node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceClass {
    /// Type-1 node CPU: 16 hardware threads, unified memory.
    Cpu16,
    /// NVidia GTX 480 behind PCIe.
    Gtx480,
    /// NVidia K20m behind PCIe.
    K20m,
    /// Intel Xeon Phi.
    XeonPhi,
}

impl DeviceClass {
    /// Effective kernel speedup for an app whose GPU-friendliness is
    /// `app_gpu_scale` (1.0 = no benefit). I/O-bound apps keep scale 1.
    pub fn kernel_scale(self, app_gpu_scale: f64) -> f64 {
        match self {
            DeviceClass::Cpu16 => 1.0,
            // Device peak ratios from the gw-device profiles, capped by
            // what the app's parallelism can exploit.
            DeviceClass::Gtx480 => app_gpu_scale.clamp(1.0, 10.0),
            DeviceClass::K20m => app_gpu_scale.clamp(1.0, 14.0),
            DeviceClass::XeonPhi => app_gpu_scale.clamp(1.0, 4.0),
        }
    }

    /// Whether Stage/Retrieve PCIe transfers apply.
    pub fn discrete(self) -> bool {
        !matches!(self, DeviceClass::Cpu16)
    }
}

/// Storage backend for the simulated job input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// HDFS over IPoIB, replication 3, JNI overhead.
    Hdfs,
    /// Node-local file system, input fully replicated.
    LocalFs,
}

/// Cluster-level parameters.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Compute device on every node.
    pub device: DeviceClass,
    /// Input storage backend.
    pub storage: StorageKind,
    /// Effective per-NIC bandwidth, MB/s (IPoIB QDR ≈ 1200; GbE ≈ 117).
    pub net_bw_mb: f64,
    /// Effective HDFS read bandwidth per node, MB/s. Lower than raw disk:
    /// the paper attributes the gap to "Java/native switches and data
    /// transfers through JNI".
    pub hdfs_read_bw_mb: f64,
    /// Local-FS read bandwidth per node, MB/s.
    pub local_read_bw_mb: f64,
    /// Output write bandwidth per node, MB/s (disk + replication pipe).
    pub write_bw_mb: f64,
    /// PCIe staging bandwidth, MB/s.
    pub pcie_bw_mb: f64,
    /// Glasswing partitioning threads per node (the paper's `N`).
    pub partition_threads: f64,
    /// Per-merger-thread merge bandwidth, MB/s.
    pub merge_bw_mb: f64,
    /// Glasswing merger threads / partitions per node (the paper's `P`).
    pub merger_threads: f64,
    /// Glasswing buffering level (buffer sets per pipeline group).
    pub buffering: usize,
    /// Hadoop per-record inefficiency multiplier (JVM, object churn,
    /// serialization) relative to the native fine-grained kernel.
    pub hadoop_jvm_factor: f64,
    /// Hadoop per-task startup cost, seconds.
    pub hadoop_task_startup: f64,
    /// Hadoop per-job fixed overhead, seconds: job setup/teardown plus
    /// heartbeat-driven task assignment lag (Hadoop 1.x TaskTrackers poll
    /// the JobTracker on multi-second heartbeats). This is the term that
    /// caps Hadoop's parallel efficiency at scale (paper: 37% vs
    /// Glasswing's 61% for WC on 64 nodes).
    pub hadoop_job_fixed: f64,
    /// Hadoop map/reduce slots per node.
    pub hadoop_slots: f64,
    /// GPMR kernel inefficiency for workloads outside its sweet spot
    /// (applied only where the paper observed it: many-center K-Means).
    pub gpmr_kernel_penalty: f64,
    /// Glasswing per-job fixed cost, seconds: pipeline spin-up and OpenCL
    /// kernel compilation. Small, but it is what keeps Glasswing's
    /// parallel efficiency near (not at) ideal at 64 nodes.
    pub glasswing_job_fixed: f64,
    /// GPMR per-job fixed cost, seconds: MPI launch + CUDA context setup.
    pub gpmr_job_fixed: f64,
    /// Per-fragment cost of serving map output in Hadoop's pull shuffle
    /// (disk seek + HTTP fetch setup), seconds. Each reducer fetches one
    /// fragment from every map task, so shuffle-heavy jobs pay this
    /// `tasks × partitions` times.
    pub hadoop_shuffle_seek: f64,
}

impl ClusterParams {
    /// The paper's evaluation cluster with CPU devices reading HDFS.
    pub fn das4_cpu_hdfs() -> Self {
        ClusterParams {
            device: DeviceClass::Cpu16,
            storage: StorageKind::Hdfs,
            net_bw_mb: 1200.0,
            hdfs_read_bw_mb: 90.0,
            local_read_bw_mb: 160.0,
            write_bw_mb: 110.0,
            pcie_bw_mb: 5200.0,
            partition_threads: 4.0,
            merge_bw_mb: 250.0,
            merger_threads: 8.0,
            buffering: 2,
            hadoop_jvm_factor: 1.6,
            hadoop_task_startup: 1.2,
            hadoop_job_fixed: 20.0,
            hadoop_slots: 16.0,
            gpmr_kernel_penalty: 1.0,
            glasswing_job_fixed: 3.0,
            gpmr_job_fixed: 3.0,
            hadoop_shuffle_seek: 0.005,
        }
    }

    /// GPU (GTX 480) nodes reading HDFS.
    pub fn das4_gpu_hdfs() -> Self {
        ClusterParams {
            device: DeviceClass::Gtx480,
            ..Self::das4_cpu_hdfs()
        }
    }

    /// Type-2 nodes (dual 6-core Xeon, 24 threads, K20m) over HDFS — the
    /// configuration the paper used to confirm "consistent scaling
    /// results" on a second GPU generation.
    pub fn das4_type2_k20m() -> Self {
        ClusterParams {
            device: DeviceClass::K20m,
            // Type-2 CPUs are ~1.5x the Type-1 nodes; the K20m device
            // class already carries its own kernel scale.
            ..Self::das4_cpu_hdfs()
        }
    }

    /// GPU nodes reading fully replicated local files (the GPMR setup).
    pub fn das4_gpu_local() -> Self {
        ClusterParams {
            device: DeviceClass::Gtx480,
            storage: StorageKind::LocalFs,
            ..Self::das4_cpu_hdfs()
        }
    }

    /// Input read bandwidth for the configured storage.
    pub fn read_bw(&self) -> f64 {
        match self.storage {
            StorageKind::Hdfs => self.hdfs_read_bw_mb,
            StorageKind::LocalFs => self.local_read_bw_mb,
        }
    }
}

/// Per-application service demands.
#[derive(Debug, Clone)]
pub struct AppParams {
    /// Application name.
    pub name: &'static str,
    /// Total input, MB.
    pub input_mb: f64,
    /// Split/chunk size, MB.
    pub chunk_mb: f64,
    /// Map-kernel service demand, seconds per MB of input on a fully-busy
    /// 16-thread Type-1 node (Glasswing's fine-grained execution).
    pub map_sec_per_mb: f64,
    /// Intermediate bytes produced per input byte (post-combining).
    pub intermediate_ratio: f64,
    /// Partitioning (decode + sort + push prep) demand, seconds per MB of
    /// intermediate data, single-threaded.
    pub partition_sec_per_mb: f64,
    /// Reduce-kernel demand, seconds per MB of intermediate data.
    pub reduce_sec_per_mb: f64,
    /// Output bytes per input byte.
    pub output_ratio: f64,
    /// Output replication factor.
    pub output_replication: f64,
    /// Kernel speedup a discrete GPU can deliver for this app (capped by
    /// the device class). 1.0 for I/O-bound apps.
    pub gpu_scale: f64,
    /// Extra Hadoop per-record inefficiency for this app, multiplying the
    /// cluster's JVM factor. 1.0 for I/O-bound apps; >1 for numeric
    /// kernels where Java lacks the vectorised inner loops the OpenCL
    /// kernels get (the paper's compute-bound gaps exceed its I/O-bound
    /// gaps for this reason).
    pub hadoop_cost_factor: f64,
    /// Whether the job has a reduce phase.
    pub has_reduce: bool,
}

impl AppParams {
    /// Pageview Count over ~30 GB of WikiBench traces. Sparse URLs ⇒ a
    /// large intermediate volume; little kernel work per record.
    pub fn pvc() -> Self {
        AppParams {
            name: "PVC",
            input_mb: 30_000.0,
            chunk_mb: 64.0,
            map_sec_per_mb: 0.006,
            intermediate_ratio: 0.45,
            partition_sec_per_mb: 0.012,
            reduce_sec_per_mb: 0.008,
            output_ratio: 0.40,
            output_replication: 3.0,
            gpu_scale: 1.0,
            hadoop_cost_factor: 1.0,
            has_reduce: true,
        }
    }

    /// WordCount over ~27 GB of Wikipedia. "The WC kernel performs
    /// somewhat more computation than the PVC kernel."
    pub fn wc() -> Self {
        AppParams {
            name: "WC",
            input_mb: 27_000.0,
            chunk_mb: 64.0,
            map_sec_per_mb: 0.011,
            intermediate_ratio: 0.15,
            partition_sec_per_mb: 0.012,
            reduce_sec_per_mb: 0.010,
            output_ratio: 0.05,
            output_replication: 3.0,
            gpu_scale: 1.0,
            hadoop_cost_factor: 1.0,
            has_reduce: true,
        }
    }

    /// TeraSort over 1 TB. Intermediate = input; no reduce function;
    /// output replication 1 (as the paper configures).
    pub fn ts() -> Self {
        AppParams {
            name: "TS",
            input_mb: 1_000_000.0,
            chunk_mb: 128.0,
            map_sec_per_mb: 0.0015,
            intermediate_ratio: 1.0,
            partition_sec_per_mb: 0.008,
            reduce_sec_per_mb: 0.0,
            output_ratio: 1.0,
            output_replication: 1.0,
            gpu_scale: 1.0,
            hadoop_cost_factor: 1.0,
            has_reduce: false,
        }
    }

    /// K-Means, many-centers configuration (reconstructed: 4096 centers,
    /// 2²⁷ points, 8 dims ⇒ 4 GB of f32 input; demand dominated by
    /// `k·d` distance evaluations per point).
    pub fn km_many_centers() -> Self {
        AppParams {
            name: "KM-4096c",
            input_mb: 4096.0,
            chunk_mb: 32.0,
            map_sec_per_mb: 1.92,
            intermediate_ratio: 0.002,
            partition_sec_per_mb: 0.02,
            reduce_sec_per_mb: 0.05,
            output_ratio: 0.0003,
            output_replication: 3.0,
            gpu_scale: 12.0,
            hadoop_cost_factor: 1.5,
            has_reduce: true,
        }
    }

    /// K-Means, few-centers configuration (64 centers): the kernel demand
    /// scales with the center count, making the job I/O-dominant on the
    /// GPU — "reading the data from the nodes' local disks takes twice as
    /// long as the computation". Runs over the full 2²⁹-point set (16 GB)
    /// whereas the many-centers config uses a 2²⁷-point subsample, so that
    /// per-node work stays meaningful at 16 nodes.
    pub fn km_few_centers() -> Self {
        AppParams {
            name: "KM-64c",
            input_mb: 16_384.0,
            chunk_mb: 64.0,
            map_sec_per_mb: 1.92 * 64.0 / 4096.0,
            ..Self::km_many_centers()
        }
    }

    /// Matrix multiply (reconstructed: 8192² f32 matrices in 512² tiles ⇒
    /// 16 GB of tile-pair input). Compute-bound on the CPU; on the GPU the
    /// kernel accelerates ~9× and the job turns I/O-bound under HDFS
    /// (paper Fig. 3(d)).
    pub fn mm() -> Self {
        AppParams {
            name: "MM",
            input_mb: 16_384.0,
            chunk_mb: 64.0,
            map_sec_per_mb: 0.045,
            intermediate_ratio: 0.5,
            partition_sec_per_mb: 0.004,
            reduce_sec_per_mb: 0.012,
            output_ratio: 0.25,
            output_replication: 3.0,
            gpu_scale: 9.0,
            hadoop_cost_factor: 1.3,
            has_reduce: true,
        }
    }

    /// All five evaluation apps.
    pub fn all() -> Vec<AppParams> {
        vec![
            Self::pvc(),
            Self::wc(),
            Self::ts(),
            Self::km_many_centers(),
            Self::mm(),
        ]
    }

    /// Number of input chunks for the whole job.
    pub fn total_chunks(&self) -> usize {
        (self.input_mb / self.chunk_mb).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_scales_are_bounded() {
        assert_eq!(DeviceClass::Cpu16.kernel_scale(100.0), 1.0);
        assert_eq!(DeviceClass::Gtx480.kernel_scale(12.0), 10.0);
        assert_eq!(DeviceClass::Gtx480.kernel_scale(0.5), 1.0);
        assert!(DeviceClass::K20m.kernel_scale(12.0) > DeviceClass::Gtx480.kernel_scale(12.0));
    }

    #[test]
    fn storage_selects_bandwidth() {
        let mut c = ClusterParams::das4_cpu_hdfs();
        assert_eq!(c.read_bw(), c.hdfs_read_bw_mb);
        c.storage = StorageKind::LocalFs;
        assert_eq!(c.read_bw(), c.local_read_bw_mb);
        assert!(c.local_read_bw_mb > c.hdfs_read_bw_mb, "JNI tax");
    }

    #[test]
    fn app_params_are_positive_and_consistent() {
        for app in AppParams::all() {
            assert!(app.input_mb > 0.0, "{}", app.name);
            assert!(app.chunk_mb > 0.0, "{}", app.name);
            assert!(app.map_sec_per_mb > 0.0, "{}", app.name);
            assert!(app.total_chunks() > 0, "{}", app.name);
            assert!(app.intermediate_ratio >= 0.0, "{}", app.name);
            if !app.has_reduce {
                assert_eq!(app.reduce_sec_per_mb, 0.0, "{}", app.name);
            }
        }
    }

    #[test]
    fn type2_preset_uses_k20m() {
        let c = ClusterParams::das4_type2_k20m();
        assert_eq!(c.device, DeviceClass::K20m);
        assert!(c.device.discrete());
    }

    #[test]
    fn km_few_centers_is_io_dominant_on_gpu() {
        let app = AppParams::km_few_centers();
        let cluster = ClusterParams::das4_gpu_local();
        let scale = cluster.device.kernel_scale(app.gpu_scale);
        let compute = app.input_mb * app.map_sec_per_mb / scale;
        let io = app.input_mb / cluster.read_bw();
        assert!(
            io > 1.5 * compute,
            "paper: local-disk read ≈ 2× the computation (io {io:.1}s vs compute {compute:.1}s)"
        );
    }

    #[test]
    fn mm_flips_to_io_bound_on_gpu_with_hdfs() {
        let app = AppParams::mm();
        let hdfs = ClusterParams::das4_cpu_hdfs();
        // CPU: compute-bound.
        let cpu_compute = app.map_sec_per_mb;
        let io = 1.0 / hdfs.read_bw();
        assert!(cpu_compute > io, "MM must be compute-bound on CPU");
        // GPU: I/O-bound.
        let gpu_compute = app.map_sec_per_mb / DeviceClass::Gtx480.kernel_scale(app.gpu_scale);
        assert!(gpu_compute < io, "MM must be I/O-bound on GPU over HDFS");
    }
}
