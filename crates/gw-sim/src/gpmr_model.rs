//! Analytic model of a GPMR job.
//!
//! Structure per the paper's observation: "GPMR first reads all data,
//! then starts its computation pipeline; its total time is the sum of
//! computation and I/O" — no overlap between phases. GPMR runs GPU-only,
//! reads fully replicated local files, keeps intermediate data in core,
//! and (for matmul) "does not store or transfer intermediate data between
//! nodes" — its phases are: read-all, map kernels (+PCIe), in-core
//! exchange, reduce kernels, write.

use crate::params::{AppParams, ClusterParams};

/// Phase breakdown of a simulated GPMR job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpmrOutcome {
    /// Reading all input before any computation.
    pub io_read: f64,
    /// Map kernels + PCIe staging/retrieval.
    pub compute: f64,
    /// Exchange + sort of intermediate data.
    pub exchange: f64,
    /// Reduce kernels.
    pub reduce: f64,
    /// Output write.
    pub io_write: f64,
    /// Total job time (strict sum — the defining property).
    pub total: f64,
}

impl GpmrOutcome {
    /// Compute-only time (the paper plots GPMR's compute and
    /// compute-plus-I/O as separate lines in Fig. 3(e)).
    pub fn compute_only(&self) -> f64 {
        self.compute + self.exchange + self.reduce
    }
}

/// Simulate a GPMR job analytically. `kernel_penalty` multiplies the map
/// kernel demand, reproducing the paper's observation that GPMR's K-Means
/// "is optimized for a small number of centers and is not expected to run
/// efficiently for larger numbers" (1.0 = no penalty).
pub fn simulate_gpmr(
    app: &AppParams,
    cluster: &ClusterParams,
    nodes: usize,
    kernel_penalty: f64,
) -> GpmrOutcome {
    assert!(nodes > 0);
    let n = nodes as f64;
    let input_per_node = app.input_mb / n;
    let inter_per_node = app.input_mb * app.intermediate_ratio / n;
    let out_per_node = app.input_mb * app.output_ratio / n;
    let scale = cluster.device.kernel_scale(app.gpu_scale);

    // Phase 1: read everything (local FS, fully replicated).
    let io_read = input_per_node / cluster.local_read_bw_mb;
    // Phase 2: map kernels + staging both ways.
    let pcie = (input_per_node + inter_per_node) / cluster.pcie_bw_mb;
    let compute = input_per_node * app.map_sec_per_mb * kernel_penalty / scale + pcie;
    // Phase 3: exchange + sort (in-core).
    let remote_fraction = if nodes > 1 { (n - 1.0) / n } else { 0.0 };
    let exchange =
        inter_per_node * remote_fraction / cluster.net_bw_mb + inter_per_node / cluster.merge_bw_mb;
    // Phase 4: reduce kernels.
    let reduce = if app.has_reduce {
        inter_per_node * app.reduce_sec_per_mb / scale
    } else {
        0.0
    };
    // Phase 5: write (local FS, replication 1 — GPMR's setup).
    let io_write = out_per_node / cluster.write_bw_mb;

    GpmrOutcome {
        io_read,
        compute,
        exchange,
        reduce,
        io_write,
        total: io_read + compute + exchange + reduce + io_write + cluster.gpmr_job_fixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glasswing_model::simulate_glasswing;
    use crate::params::{AppParams, ClusterParams, StorageKind};

    #[test]
    fn total_is_sum_of_phases() {
        let app = AppParams::km_few_centers();
        let cluster = ClusterParams::das4_gpu_local();
        let o = simulate_gpmr(&app, &cluster, 4, 1.0);
        let sum = o.io_read
            + o.compute
            + o.exchange
            + o.reduce
            + o.io_write
            + ClusterParams::das4_gpu_local().gpmr_job_fixed;
        assert!((o.total - sum).abs() < 1e-9);
    }

    #[test]
    fn glasswing_beats_gpmr_by_overlap_on_io_dominant_km() {
        // Paper Fig. 3(e): with few centers KM is I/O-dominant; Glasswing's
        // total ≈ max(compute, I/O) while GPMR's = compute + I/O, giving
        // GPMR ≈ 1.5× Glasswing across cluster sizes.
        let app = AppParams::km_few_centers();
        let mut cluster = ClusterParams::das4_gpu_local();
        cluster.storage = StorageKind::LocalFs;
        for nodes in [1usize, 4, 16] {
            let gpmr = simulate_gpmr(&app, &cluster, nodes, 1.0);
            let gw = simulate_glasswing(&app, &cluster, nodes);
            let ratio = gpmr.total / gw.total;
            assert!(
                (1.2..2.2).contains(&ratio),
                "nodes={nodes}: GPMR/Glasswing ratio {ratio:.2} outside the ≈1.5× band \
                 (gpmr {:.1}s, gw {:.1}s)",
                gpmr.total,
                gw.total
            );
        }
    }

    #[test]
    fn many_centers_penalty_hurts_gpmr() {
        let app = AppParams::km_many_centers();
        let cluster = ClusterParams::das4_gpu_local();
        let fair = simulate_gpmr(&app, &cluster, 4, 1.0);
        let penalised = simulate_gpmr(&app, &cluster, 4, 6.0);
        assert!(penalised.total > fair.total * 2.0);
    }

    #[test]
    fn compute_only_excludes_io() {
        let app = AppParams::km_few_centers();
        let cluster = ClusterParams::das4_gpu_local();
        let o = simulate_gpmr(&app, &cluster, 2, 1.0);
        assert!(o.compute_only() < o.total);
        assert!(o.compute_only() > 0.0);
    }
}
