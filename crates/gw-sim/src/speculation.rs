//! DES model of speculative re-execution under a gray slowdown.
//!
//! Mirrors the real engine's speculation controller (gw-core
//! `coordinator.rs`, DESIGN.md §3.8) closely enough that the simulated and
//! measured speedup have the same *shape*:
//!
//! * nodes pull splits from a shared queue and hold up to `depth` claims
//!   in flight (the pipeline's buffering level) — claims queued behind the
//!   running task are exactly the ones a winning clone lets the straggler
//!   **skip**;
//! * an idle node clones the oldest outstanding claim once its age exceeds
//!   `max(min_runtime, median × threshold_pct / 100)`, subject to a launch
//!   budget and backoff;
//! * races resolve first-finisher-wins; a running attempt can *not* be
//!   cancelled mid-task (kernels are uninterruptible), so the loser drains
//!   before its node moves on — which is why the makespan gain comes from
//!   skipped queued tasks, not from aborting the straggler.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::{Sim, SimTime};

/// Scenario parameters for the speculation model.
#[derive(Debug, Clone)]
pub struct SpecParams {
    /// Cluster size.
    pub nodes: usize,
    /// Total input splits.
    pub splits: usize,
    /// Service time of one split on a healthy node, seconds.
    pub task_time: SimTime,
    /// Claims a node holds in flight (the pipeline buffering depth).
    pub depth: usize,
    /// Node degraded by `slow_factor` (`None` = healthy cluster).
    pub slow_node: Option<usize>,
    /// Slowdown multiplier for the degraded node (4.0 = 4× slower).
    pub slow_factor: f64,
    /// Speculation controller switch.
    pub speculation: bool,
    /// Straggler threshold as a percent of the median completed-claim
    /// duration (150 = 1.5× the median).
    pub threshold_pct: u32,
    /// Claim-age floor below which no clone is launched, seconds.
    pub min_runtime: SimTime,
    /// Maximum clones launched per job.
    pub budget: usize,
    /// Minimum pause between clone launches, seconds.
    pub backoff: SimTime,
}

impl SpecParams {
    /// A 4-node scenario with the controller's default-shaped policy.
    pub fn new(nodes: usize, splits: usize, task_time: SimTime) -> Self {
        SpecParams {
            nodes,
            splits,
            task_time,
            depth: 2,
            slow_node: None,
            slow_factor: 1.0,
            speculation: false,
            threshold_pct: 150,
            min_runtime: task_time / 10.0,
            budget: 8,
            backoff: task_time / 20.0,
        }
    }
}

/// Outcome of one simulated job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecOutcome {
    /// Time the last attempt drained (the job makespan).
    pub makespan: SimTime,
    /// Clones launched.
    pub launched: usize,
    /// Clones that finished before their primary.
    pub won: usize,
    /// Clones cancelled because the primary finished first.
    pub cancelled: usize,
    /// Queued tasks skipped because another attempt had already completed
    /// their split.
    pub superseded: usize,
}

impl SpecOutcome {
    /// Whether every launched clone is accounted for (no node deaths in
    /// this model, so `failed` is always zero).
    pub fn balanced(&self) -> bool {
        self.launched == self.won + self.cancelled
    }
}

struct State {
    p: SpecParams,
    next_split: usize,
    completed: usize,
    complete: Vec<bool>,
    claimed_at: Vec<SimTime>,
    claimant: Vec<usize>,
    spec: Vec<Option<usize>>,
    queues: Vec<VecDeque<usize>>,
    busy: Vec<bool>,
    durations: Vec<SimTime>,
    last_launch: Option<SimTime>,
    launched: usize,
    won: usize,
    cancelled: usize,
    superseded: usize,
    drained_at: SimTime,
}

impl State {
    fn service(&self, node: usize) -> SimTime {
        if self.p.slow_node == Some(node) {
            self.p.task_time * self.p.slow_factor
        } else {
            self.p.task_time
        }
    }

    /// `max(min_runtime, median × threshold_pct / 100)`, or `None` while
    /// fewer than 3 claims have completed (no baseline yet) — the same
    /// rule as the real controller.
    fn threshold(&self) -> Option<SimTime> {
        if self.durations.len() < 3 {
            return None;
        }
        let mut sorted = self.durations.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        Some((median * f64::from(self.p.threshold_pct) / 100.0).max(self.p.min_runtime))
    }
}

enum Action {
    Skip,
    Run { split: usize, primary: bool },
    Poll,
    Done,
}

fn node_tick(sim: &mut Sim, st: &Rc<RefCell<State>>, node: usize) {
    loop {
        let action = {
            let mut s = st.borrow_mut();
            // Refill the claim queue up to the buffering depth.
            while s.queues[node].len() < s.p.depth && s.next_split < s.p.splits {
                let split = s.next_split;
                s.next_split += 1;
                s.claimed_at[split] = sim.now();
                s.claimant[split] = node;
                s.queues[node].push_back(split);
            }
            if s.busy[node] {
                return;
            }
            if let Some(split) = s.queues[node].pop_front() {
                if s.complete[split] {
                    // A clone won this queued task while it waited: skip
                    // its kernel entirely (the engine's superseded skip).
                    s.superseded += 1;
                    Action::Skip
                } else {
                    s.busy[node] = true;
                    Action::Run {
                        split,
                        primary: true,
                    }
                }
            } else if s.completed == s.p.splits {
                Action::Done
            } else if s.p.speculation
                && s.launched < s.p.budget
                && s.last_launch.is_none_or(|at| sim.now() - at >= s.p.backoff)
            {
                match s.threshold() {
                    Some(threshold) => {
                        let candidate = (0..s.next_split)
                            .filter(|&sp| {
                                !s.complete[sp]
                                    && s.claimant[sp] != node
                                    && s.spec[sp].is_none()
                                    && sim.now() - s.claimed_at[sp] > threshold
                            })
                            .max_by(|&a, &b| {
                                s.claimed_at[b].partial_cmp(&s.claimed_at[a]).unwrap()
                            });
                        match candidate {
                            Some(split) => {
                                s.spec[split] = Some(node);
                                s.launched += 1;
                                s.last_launch = Some(sim.now());
                                s.busy[node] = true;
                                Action::Run {
                                    split,
                                    primary: false,
                                }
                            }
                            None => Action::Poll,
                        }
                    }
                    None => Action::Poll,
                }
            } else {
                Action::Poll
            }
        };
        match action {
            Action::Skip => continue,
            Action::Run { split, primary } => {
                let service = st.borrow().service(node);
                let st = Rc::clone(st);
                sim.schedule(service, move |sim| on_done(sim, &st, node, split, primary));
                return;
            }
            Action::Poll => {
                let poll = st.borrow().p.task_time / 8.0;
                let st = Rc::clone(st);
                sim.schedule(poll, move |sim| node_tick(sim, &st, node));
                return;
            }
            Action::Done => return,
        }
    }
}

fn on_done(sim: &mut Sim, st: &Rc<RefCell<State>>, node: usize, split: usize, primary: bool) {
    {
        let mut s = st.borrow_mut();
        s.busy[node] = false;
        // Even a losing attempt occupies its node until here: kernels
        // cannot be cancelled mid-task.
        s.drained_at = sim.now();
        if !s.complete[split] {
            s.complete[split] = true;
            s.completed += 1;
            let dur = sim.now() - s.claimed_at[split];
            s.durations.push(dur);
            if primary {
                if s.spec[split].take().is_some() {
                    s.cancelled += 1;
                }
            } else {
                s.won += 1;
            }
        }
    }
    node_tick(sim, st, node);
}

/// Simulate one job under `p` and return its makespan and speculation
/// accounting. Fully deterministic: equal parameters give equal outcomes.
pub fn simulate_speculation(p: &SpecParams) -> SpecOutcome {
    assert!(p.nodes > 0 && p.splits > 0 && p.depth > 0);
    let mut sim = Sim::new();
    let st = Rc::new(RefCell::new(State {
        next_split: 0,
        completed: 0,
        complete: vec![false; p.splits],
        claimed_at: vec![0.0; p.splits],
        claimant: vec![usize::MAX; p.splits],
        spec: vec![None; p.splits],
        queues: vec![VecDeque::new(); p.nodes],
        busy: vec![false; p.nodes],
        durations: Vec::new(),
        last_launch: None,
        launched: 0,
        won: 0,
        cancelled: 0,
        superseded: 0,
        drained_at: 0.0,
        p: p.clone(),
    }));
    for node in 0..p.nodes {
        let st = Rc::clone(&st);
        sim.schedule(0.0, move |sim| node_tick(sim, &st, node));
    }
    sim.run();
    let s = st.borrow();
    SpecOutcome {
        makespan: s.drained_at,
        launched: s.launched,
        won: s.won,
        cancelled: s.cancelled,
        superseded: s.superseded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // 10 splits over 4 nodes: the healthy nodes drain their share early
    // enough to go idle while the straggler still holds a queued split —
    // the window where speculation pays. The threshold is set to the
    // median itself: recorded durations are claim ages (queue wait
    // included, like the real controller), so 150% of the median would
    // delay the clone past the straggler's own dequeue of its queued
    // split.
    fn degraded(speculation: bool, slow_factor: f64) -> SpecParams {
        let mut p = SpecParams::new(4, 10, 1.0);
        p.slow_node = Some(0);
        p.slow_factor = slow_factor;
        p.speculation = speculation;
        p.threshold_pct = 100;
        p
    }

    #[test]
    fn model_is_deterministic() {
        let p = degraded(true, 4.0);
        assert_eq!(simulate_speculation(&p), simulate_speculation(&p));
    }

    #[test]
    fn speculation_beats_baseline_under_4x_slowdown() {
        let off = simulate_speculation(&degraded(false, 4.0));
        let on = simulate_speculation(&degraded(true, 4.0));
        assert!(
            on.makespan < off.makespan,
            "speculation {on:?} must beat baseline {off:?}"
        );
        assert!(on.launched >= 1);
        assert!(on.won >= 1, "the straggler's queued work must be won");
        assert!(on.balanced(), "{on:?}");
        assert_eq!(off.launched, 0);
    }

    #[test]
    fn speedup_grows_with_the_slowdown() {
        let gain = |factor: f64| {
            let off = simulate_speculation(&degraded(false, factor));
            let on = simulate_speculation(&degraded(true, factor));
            off.makespan - on.makespan
        };
        assert!(
            gain(4.0) >= gain(2.0),
            "a harsher slowdown must gain at least as much"
        );
    }

    #[test]
    fn healthy_cluster_is_not_hurt() {
        let mut off = SpecParams::new(4, 16, 1.0);
        off.speculation = false;
        let mut on = off.clone();
        on.speculation = true;
        let off = simulate_speculation(&off);
        let on = simulate_speculation(&on);
        // Clones may launch near the tail, but first-finisher-wins keeps
        // them harmless: the makespan never regresses by more than one
        // task's drain.
        assert!(
            on.makespan <= off.makespan + 1.0 + 1e-9,
            "{on:?} vs {off:?}"
        );
        assert!(on.balanced());
    }

    #[test]
    fn budget_bounds_launches() {
        let mut p = degraded(true, 8.0);
        p.budget = 1;
        let out = simulate_speculation(&p);
        assert!(out.launched <= 1, "{out:?}");
        assert!(out.balanced());
    }
}
