//! DES model of a Glasswing job.
//!
//! Each node runs the 5-stage map pipeline as a chain of FIFO resources
//! (input disk, PCIe stager, kernel, PCIe retriever, partitioner) with the
//! §III-D buffer-token interlocks as semaphores, a NIC egress resource for
//! the push shuffle, and a multi-server merger resource absorbing
//! intermediate runs in the background. The reduce phase — which starts
//! only after every peer has finished mapping *and* the local mergers have
//! drained — is evaluated with the pipelined-stage bound
//! `max(stage totals) + fill`, the same steady-state property the real
//! engine's schedule model exhibits.

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::{ResourceId, SemaphoreId, Sim};
use crate::params::{AppParams, ClusterParams};

/// Outcome of one simulated Glasswing job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlasswingOutcome {
    /// End of the map phase across all nodes (incl. push shuffle sends).
    pub map_phase: f64,
    /// Merge delay: merger drain time after global map completion (max
    /// over nodes).
    pub merge_delay: f64,
    /// Reduce-phase duration (max over nodes).
    pub reduce_phase: f64,
    /// Total job time.
    pub total: f64,
}

/// Per-chunk stage service times (seconds) under a configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChunkDemand {
    /// Input read (occupies the node's disk).
    pub input: f64,
    /// Host→device staging.
    pub stage: f64,
    /// Map kernel.
    pub kernel: f64,
    /// Device→host retrieval.
    pub retrieve: f64,
    /// Partition (decode + sort, over N threads).
    pub partition: f64,
    /// Durability write of the chunk's intermediate data (paper §III-E:
    /// map output "is stored persistently on disk"); contends with input
    /// reads on the node's disk.
    pub durability: f64,
    /// Push-shuffle send of the chunk's remote share.
    pub send: f64,
    /// Merge work the chunk generates at its destination.
    pub merge: f64,
}

/// Compute the per-chunk service demands for `app` on `cluster` with
/// `nodes` nodes.
pub fn chunk_demand(app: &AppParams, cluster: &ClusterParams, nodes: usize) -> ChunkDemand {
    let chunk = app.chunk_mb;
    let inter = chunk * app.intermediate_ratio;
    let scale = cluster.device.kernel_scale(app.gpu_scale);
    let discrete = cluster.device.discrete();
    let remote_fraction = if nodes > 1 {
        (nodes as f64 - 1.0) / nodes as f64
    } else {
        0.0
    };
    ChunkDemand {
        input: chunk / cluster.read_bw(),
        stage: if discrete {
            chunk / cluster.pcie_bw_mb
        } else {
            0.0
        },
        kernel: chunk * app.map_sec_per_mb / scale,
        retrieve: if discrete {
            inter / cluster.pcie_bw_mb
        } else {
            0.0
        },
        partition: inter * app.partition_sec_per_mb / cluster.partition_threads,
        durability: inter / cluster.write_bw_mb,
        send: inter * remote_fraction / cluster.net_bw_mb,
        merge: inter / cluster.merge_bw_mb,
    }
}

struct NodeIds {
    /// The node's disk: serves the Input stage *and* durability writes,
    /// so the two contend as on real hardware.
    disk: ResourceId,
    stage: ResourceId,
    kernel: ResourceId,
    retrieve: ResourceId,
    partition: ResourceId,
    nic: ResourceId,
    merger: ResourceId,
    in_tok: SemaphoreId,
    out_tok: SemaphoreId,
}

#[derive(Default)]
struct State {
    /// Per node: chunks whose partition+send have completed.
    chunks_done: Vec<usize>,
    /// Per node: total chunks assigned.
    chunks_assigned: Vec<usize>,
    /// Chunks completed across all nodes.
    chunks_done_total: usize,
    /// Per node: time the map phase (incl. sends) finished.
    map_end: Vec<f64>,
    /// Per node: completion time of the last merger job.
    merger_last: Vec<f64>,
    /// Per node: merger jobs scheduled but not yet completed.
    merger_outstanding: Vec<usize>,
    /// Every node's map phase has completed.
    global_map_done: bool,
    /// Per node: reduce pipeline launched.
    reduce_started: Vec<bool>,
    /// Per node: reduce chunks to process.
    reduce_chunks: Vec<usize>,
    /// Per node: reduce chunks completed.
    reduce_done: Vec<usize>,
    /// Per node: reduce start time (after merge drain).
    reduce_start: Vec<f64>,
    /// Per node: reduce completion time.
    reduce_end: Vec<f64>,
}

/// Per-chunk reduce-pipeline service times.
#[derive(Debug, Clone, Copy)]
pub struct ReduceDemand {
    /// Final k-way merge read of the chunk (one merger thread).
    pub read: f64,
    /// Host→device staging.
    pub stage: f64,
    /// Reduce kernel.
    pub kernel: f64,
    /// Device→host retrieval.
    pub retrieve: f64,
    /// Output write (incl. replication traffic) on the node's disk.
    pub write: f64,
}

/// Compute the per-chunk reduce demands.
pub fn reduce_demand(app: &AppParams, cluster: &ClusterParams) -> ReduceDemand {
    let inter_chunk = app.chunk_mb * app.intermediate_ratio;
    let out_chunk = app.chunk_mb * app.output_ratio;
    let scale = cluster.device.kernel_scale(app.gpu_scale);
    let discrete = cluster.device.discrete();
    ReduceDemand {
        read: inter_chunk / cluster.merge_bw_mb,
        stage: if discrete {
            inter_chunk / cluster.pcie_bw_mb
        } else {
            0.0
        },
        kernel: if app.has_reduce {
            inter_chunk * app.reduce_sec_per_mb / scale
        } else {
            0.0
        },
        retrieve: if discrete {
            out_chunk / cluster.pcie_bw_mb
        } else {
            0.0
        },
        write: out_chunk * app.output_replication / cluster.write_bw_mb,
    }
}

/// Launch one node's reduce pipeline (its map phase and merge backlog are
/// complete). Reuses the node's stage/kernel/retrieve/disk resources and
/// buffer-token semaphores — all idle once map ended.
fn start_reduce(
    sim: &mut Sim,
    ids: &Rc<Vec<NodeIds>>,
    state: &Rc<RefCell<State>>,
    node: usize,
    rd: ReduceDemand,
) {
    {
        let mut s = state.borrow_mut();
        debug_assert!(!s.reduce_started[node]);
        s.reduce_started[node] = true;
        s.reduce_start[node] = sim.now();
        if s.reduce_chunks[node] == 0 {
            s.reduce_end[node] = sim.now();
            return;
        }
    }
    let rchunks = state.borrow().reduce_chunks[node];
    for _ in 0..rchunks {
        let ids = Rc::clone(ids);
        let state = Rc::clone(state);
        sim.schedule(0.0, move |sim| {
            let nid = &ids[node];
            let in_tok = nid.in_tok;
            let out_tok = nid.out_tok;
            let (merger_r, stage_r, kernel_r, retrieve_r, disk_r) =
                (nid.merger, nid.stage, nid.kernel, nid.retrieve, nid.disk);
            sim.acquire(in_tok, move |sim| {
                sim.use_resource(merger_r, rd.read, move |sim| {
                    sim.use_resource(stage_r, rd.stage, move |sim| {
                        sim.acquire(out_tok, move |sim| {
                            sim.use_resource(kernel_r, rd.kernel, move |sim| {
                                sim.release(in_tok);
                                sim.use_resource(retrieve_r, rd.retrieve, move |sim| {
                                    sim.use_resource(disk_r, rd.write, move |sim| {
                                        sim.release(out_tok);
                                        let mut s = state.borrow_mut();
                                        s.reduce_done[node] += 1;
                                        if s.reduce_done[node] == s.reduce_chunks[node] {
                                            s.reduce_end[node] = sim.now();
                                        }
                                    });
                                });
                            });
                        });
                    });
                });
            });
        });
    }
}

/// Check (and fire) the reduce-start condition for `node`: every node's
/// map phase done, and this node's merge backlog drained.
fn maybe_start_reduce(
    sim: &mut Sim,
    ids: &Rc<Vec<NodeIds>>,
    state: &Rc<RefCell<State>>,
    node: usize,
    rd: ReduceDemand,
) {
    let ready = {
        let s = state.borrow();
        s.global_map_done && s.merger_outstanding[node] == 0 && !s.reduce_started[node]
    };
    if ready {
        start_reduce(sim, ids, state, node, rd);
    }
}

/// Simulate the full job — map ∥ merge, then the pipelined reduce — with
/// the DES; returns the phase breakdown.
pub fn simulate_glasswing(
    app: &AppParams,
    cluster: &ClusterParams,
    nodes: usize,
) -> GlasswingOutcome {
    assert!(nodes > 0);
    let demand = chunk_demand(app, cluster, nodes);
    let rdemand = reduce_demand(app, cluster);
    let total_chunks = app.total_chunks();
    let mut sim = Sim::new();

    let ids: Rc<Vec<NodeIds>> = Rc::new(
        (0..nodes)
            .map(|_| NodeIds {
                disk: sim.add_resource(1),
                stage: sim.add_resource(1),
                kernel: sim.add_resource(1),
                retrieve: sim.add_resource(1),
                partition: sim.add_resource(1),
                nic: sim.add_resource(1),
                merger: sim.add_resource(cluster.merger_threads.max(1.0) as usize),
                in_tok: sim.add_semaphore(cluster.buffering.max(1)),
                out_tok: sim.add_semaphore(cluster.buffering.max(1)),
            })
            .collect(),
    );

    let state = Rc::new(RefCell::new(State {
        chunks_done: vec![0; nodes],
        chunks_assigned: vec![0; nodes],
        chunks_done_total: 0,
        map_end: vec![0.0; nodes],
        merger_last: vec![0.0; nodes],
        merger_outstanding: vec![0; nodes],
        global_map_done: false,
        reduce_started: vec![false; nodes],
        reduce_chunks: vec![0; nodes],
        reduce_done: vec![0; nodes],
        reduce_start: vec![0.0; nodes],
        reduce_end: vec![0.0; nodes],
    }));

    // Round-robin chunk assignment (locality-aware scheduling keeps reads
    // local under replication 3, so assignment order is all that matters).
    // Reduce work lands where the merge work landed (dest = c % nodes).
    for c in 0..total_chunks {
        let mut s = state.borrow_mut();
        s.chunks_assigned[c % nodes] += 1;
        s.reduce_chunks[c % nodes] += 1;
    }

    // Launch every map chunk's pipeline chain at t=0; FIFO semaphores and
    // resources preserve per-node chunk order.
    for c in 0..total_chunks {
        let node = c % nodes;
        let dest = c % nodes.max(1); // merge-work destination (uniform)
        let ids = Rc::clone(&ids);
        let state = Rc::clone(&state);
        sim.schedule(0.0, move |sim| {
            let nid = &ids[node];
            let in_tok = nid.in_tok;
            let out_tok = nid.out_tok;
            let (disk_r, stage_r, kernel_r, retrieve_r, partition_r, nic_r) = (
                nid.disk,
                nid.stage,
                nid.kernel,
                nid.retrieve,
                nid.partition,
                nid.nic,
            );
            let merger_r = ids[dest].merger;
            let ids2 = Rc::clone(&ids);
            sim.acquire(in_tok, move |sim| {
                sim.use_resource(disk_r, demand.input, move |sim| {
                    sim.use_resource(stage_r, demand.stage, move |sim| {
                        sim.acquire(out_tok, move |sim| {
                            sim.use_resource(kernel_r, demand.kernel, move |sim| {
                                sim.release(in_tok);
                                sim.use_resource(retrieve_r, demand.retrieve, move |sim| {
                                    sim.use_resource(partition_r, demand.partition, move |sim| {
                                        // Durability copy to the local
                                        // disk, then the push over the NIC.
                                        sim.use_resource(disk_r, demand.durability, move |sim| {
                                            sim.use_resource(nic_r, demand.send, move |sim| {
                                                sim.release(out_tok);
                                                // Background merge at the
                                                // destination node.
                                                state.borrow_mut().merger_outstanding[dest] += 1;
                                                let st = Rc::clone(&state);
                                                let ids3 = Rc::clone(&ids2);
                                                sim.use_resource(
                                                    merger_r,
                                                    demand.merge,
                                                    move |sim| {
                                                        {
                                                            let mut s = st.borrow_mut();
                                                            s.merger_last[dest] =
                                                                s.merger_last[dest].max(sim.now());
                                                            s.merger_outstanding[dest] -= 1;
                                                        }
                                                        maybe_start_reduce(
                                                            sim, &ids3, &st, dest, rdemand,
                                                        );
                                                    },
                                                );
                                                let all_done = {
                                                    let mut s = state.borrow_mut();
                                                    s.chunks_done[node] += 1;
                                                    s.chunks_done_total += 1;
                                                    if s.chunks_done[node]
                                                        == s.chunks_assigned[node]
                                                    {
                                                        s.map_end[node] = sim.now();
                                                    }
                                                    if s.chunks_done_total == total_chunks {
                                                        s.global_map_done = true;
                                                        true
                                                    } else {
                                                        false
                                                    }
                                                };
                                                if all_done {
                                                    for n in 0..nodes {
                                                        maybe_start_reduce(
                                                            sim, &ids2, &state, n, rdemand,
                                                        );
                                                    }
                                                }
                                            });
                                        });
                                    });
                                });
                            });
                        });
                    });
                });
            });
        });
    }

    // A zero-chunk job completes instantly.
    if total_chunks == 0 {
        return GlasswingOutcome {
            map_phase: 0.0,
            merge_delay: 0.0,
            reduce_phase: 0.0,
            total: cluster.glasswing_job_fixed,
        };
    }

    sim.run();

    let s = state.borrow();
    debug_assert!(s.reduce_started.iter().all(|&r| r), "reduce never started");
    debug_assert!(
        s.reduce_done
            .iter()
            .zip(&s.reduce_chunks)
            .all(|(d, c)| d == c),
        "reduce chunks unfinished"
    );
    let map_phase = s.map_end.iter().cloned().fold(0.0, f64::max);
    // Merge delay: how long past global map completion the slowest node's
    // reduce start slipped (merger backlog drain).
    let merge_delay = s
        .reduce_start
        .iter()
        .map(|&r| (r - map_phase).max(0.0))
        .fold(0.0, f64::max);
    let sim_end = s.reduce_end.iter().cloned().fold(0.0, f64::max);
    let reduce_phase = (sim_end - map_phase - merge_delay).max(0.0);

    GlasswingOutcome {
        map_phase,
        merge_delay,
        reduce_phase,
        // Per-job fixed cost: pipeline spin-up + OpenCL kernel compilation.
        total: sim_end + cluster.glasswing_job_fixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{AppParams, ClusterParams, StorageKind};

    #[test]
    fn single_node_map_is_bounded_by_dominant_stage() {
        let app = AppParams::wc();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let out = simulate_glasswing(&app, &cluster, 1);
        let d = chunk_demand(&app, &cluster, 1);
        let chunks = app.total_chunks() as f64;
        let dominant = d.input.max(d.kernel).max(d.partition) * chunks;
        let serial: f64 = (d.input + d.stage + d.kernel + d.retrieve + d.partition) * chunks;
        assert!(out.map_phase >= dominant * 0.99, "{out:?}");
        assert!(
            out.map_phase < serial * 0.8,
            "pipeline must overlap stages: {} vs serial {}",
            out.map_phase,
            serial
        );
    }

    #[test]
    fn scaling_reduces_time_and_speedup_is_sublinear() {
        let app = AppParams::wc();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let t1 = simulate_glasswing(&app, &cluster, 1).total;
        let t16 = simulate_glasswing(&app, &cluster, 16).total;
        let t64 = simulate_glasswing(&app, &cluster, 64).total;
        assert!(t16 < t1);
        assert!(t64 < t16);
        let speedup64 = t1 / t64;
        assert!(
            speedup64 > 16.0 && speedup64 <= 64.0,
            "speedup at 64 nodes: {speedup64:.1}"
        );
    }

    #[test]
    fn gpu_accelerates_compute_bound_km_but_not_pvc() {
        let cpu = ClusterParams::das4_cpu_hdfs();
        let gpu = ClusterParams::das4_gpu_hdfs();
        let km = AppParams::km_many_centers();
        let km_cpu = simulate_glasswing(&km, &cpu, 1).total;
        let km_gpu = simulate_glasswing(&km, &gpu, 1).total;
        assert!(
            km_gpu * 5.0 < km_cpu,
            "KM should gain ≥5× on GPU: {km_cpu:.1} vs {km_gpu:.1}"
        );
        let pvc = AppParams::pvc();
        let pvc_cpu = simulate_glasswing(&pvc, &cpu, 4).total;
        let pvc_gpu = simulate_glasswing(&pvc, &gpu, 4).total;
        assert!(
            pvc_gpu > pvc_cpu * 0.8,
            "I/O-bound PVC should not gain much: {pvc_cpu:.1} vs {pvc_gpu:.1}"
        );
    }

    #[test]
    fn local_fs_beats_hdfs_for_io_bound_gpu_jobs() {
        let hdfs = ClusterParams::das4_gpu_hdfs();
        let mut local = ClusterParams::das4_gpu_hdfs();
        local.storage = StorageKind::LocalFs;
        let mm = AppParams::mm();
        let t_hdfs = simulate_glasswing(&mm, &hdfs, 4).total;
        let t_local = simulate_glasswing(&mm, &local, 4).total;
        assert!(
            t_local < t_hdfs,
            "paper Fig 3(d): local FS below HDFS ({t_local:.1} vs {t_hdfs:.1})"
        );
    }

    #[test]
    fn merge_delay_is_small_relative_to_map() {
        let app = AppParams::ts();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let out = simulate_glasswing(&app, &cluster, 16);
        assert!(out.merge_delay < out.map_phase * 0.5, "{out:?}");
    }

    #[test]
    fn deterministic() {
        let app = AppParams::pvc();
        let cluster = ClusterParams::das4_cpu_hdfs();
        let a = simulate_glasswing(&app, &cluster, 8);
        let b = simulate_glasswing(&app, &cluster, 8);
        assert_eq!(a, b);
    }
}
