//! Kernel output collection mechanisms (paper §III-F).
//!
//! "Glasswing implements two mechanisms for collecting and storing such
//! output. The first mechanism uses a shared buffer pool to store all
//! output data. The second mechanism provides a hash table implementation
//! to store the key/value pairs. Glasswing provides support for an
//! application-specific combiner stage ... only for the second mechanism."
//!
//! Both collectors are written against the same concurrency model as their
//! OpenCL originals:
//!
//! * [`BufferPoolCollector`] — "each thread allocates space via a single
//!   atomic operation": a sharded bump arena; fast emits, but every
//!   occurrence is stored, so downstream partitioning must decode every
//!   record individually (Table II config (iii): fastest kernel, dominant
//!   partitioning stage).
//! * [`HashTableCollector`] — per-key storage with optional in-place
//!   combining. Emits contend on bucket locks (the analogue of the paper's
//!   "threads must loop multiple times before they allocate space"), so
//!   the kernel stage is slower, but intermediate volume shrinks
//!   dramatically (Table II configs (i)/(ii)).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gw_storage::varint;

use crate::api::Combiner;
use crate::hash::hash_bytes;

/// Which collection mechanism a job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectorKind {
    /// Shared buffer pool (simple output collection).
    BufferPool,
    /// Concurrent hash table (enables the combiner).
    HashTable,
}

/// A kernel-output collector. `emit` is called concurrently from work
/// items; `for_each_part` and `reset` are called by the pipeline after the
/// kernel completes (no concurrent emits).
pub trait Collector: Send + Sync {
    /// Store one key/value pair.
    fn emit(&self, key: &[u8], value: &[u8]);

    /// Visit the `part`-th of `parts` disjoint slices of the collected
    /// records. Visiting all `parts` slices yields every record exactly
    /// once. Used by the partitioning stage's parallel decode.
    fn for_each_part(&self, part: usize, parts: usize, f: &mut dyn FnMut(&[u8], &[u8]));

    /// Clear for reuse by the next chunk (buffer recycling).
    fn reset(&mut self);

    /// Records currently held (post-combining for the hash table).
    fn records(&self) -> usize;

    /// Approximate payload bytes currently held.
    fn bytes(&self) -> usize;
}

/// Visit every collected record (convenience over [`Collector::for_each_part`]).
pub fn for_each_record(c: &dyn Collector, f: &mut dyn FnMut(&[u8], &[u8])) {
    c.for_each_part(0, 1, f);
}

// ---------------------------------------------------------------------------
// Shared buffer pool
// ---------------------------------------------------------------------------

/// Raw arena storage written by concurrent work items at disjoint offsets.
struct RawBuf {
    ptr: *mut u8,
    cap: usize,
}

// SAFETY: writers only touch disjoint `[off, off+len)` ranges reserved via
// an atomic fetch_add, and readers only run after all writers finished
// (enforced by the pipeline's kernel→partition ordering).
unsafe impl Send for RawBuf {}
unsafe impl Sync for RawBuf {}

impl RawBuf {
    fn new(cap: usize) -> Self {
        let mut vec = vec![0u8; cap];
        let ptr = vec.as_mut_ptr();
        std::mem::forget(vec);
        RawBuf { ptr, cap }
    }
}

impl Drop for RawBuf {
    fn drop(&mut self) {
        // SAFETY: reconstitutes the Vec forgotten in `new`.
        unsafe { drop(Vec::from_raw_parts(self.ptr, self.cap, self.cap)) };
    }
}

struct Shard {
    buf: RawBuf,
    /// Next free offset (may exceed `cap` after failed reservations).
    used: AtomicUsize,
    /// End of the last successfully written record (reservations succeed
    /// in prefix order, so this is a valid parse boundary).
    valid_end: AtomicUsize,
    /// Slow path for records that no longer fit in the arena.
    overflow: Mutex<Vec<u8>>,
}

impl Shard {
    fn new(cap: usize) -> Self {
        Shard {
            buf: RawBuf::new(cap),
            used: AtomicUsize::new(0),
            valid_end: AtomicUsize::new(0),
            overflow: Mutex::new(Vec::new()),
        }
    }
}

/// The shared-buffer-pool collector: sharded atomic bump allocation.
pub struct BufferPoolCollector {
    shards: Vec<Shard>,
    records: AtomicUsize,
    bytes: AtomicUsize,
    next_shard: AtomicUsize,
}

impl BufferPoolCollector {
    /// Create with `capacity` total bytes across `shards` shards.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per = (capacity / shards).max(256);
        BufferPoolCollector {
            shards: (0..shards).map(|_| Shard::new(per)).collect(),
            records: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn encode_header(key: &[u8], value: &[u8]) -> ([u8; 20], usize) {
        let mut hdr = [0u8; 20];
        let mut tmp = Vec::with_capacity(20);
        varint::write_len(&mut tmp, key.len());
        varint::write_len(&mut tmp, value.len());
        hdr[..tmp.len()].copy_from_slice(&tmp);
        (hdr, tmp.len())
    }
}

impl Collector for BufferPoolCollector {
    fn emit(&self, key: &[u8], value: &[u8]) {
        let (hdr, hdr_len) = Self::encode_header(key, value);
        let total = hdr_len + key.len() + value.len();
        // Spread emitters over shards round-robin; a shard keeps serving
        // until full (one atomic op per allocation, as in the paper).
        let shard_idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[shard_idx];
        let off = shard.used.fetch_add(total, Ordering::Relaxed);
        if off + total <= shard.buf.cap {
            // SAFETY: `[off, off+total)` is exclusively ours (fetch_add)
            // and within capacity.
            unsafe {
                let dst = shard.buf.ptr.add(off);
                std::ptr::copy_nonoverlapping(hdr.as_ptr(), dst, hdr_len);
                std::ptr::copy_nonoverlapping(key.as_ptr(), dst.add(hdr_len), key.len());
                std::ptr::copy_nonoverlapping(
                    value.as_ptr(),
                    dst.add(hdr_len + key.len()),
                    value.len(),
                );
            }
            shard.valid_end.fetch_max(off + total, Ordering::Release);
        } else {
            // Arena exhausted: append under the shard lock.
            let mut ovf = shard.overflow.lock();
            ovf.extend_from_slice(&hdr[..hdr_len]);
            ovf.extend_from_slice(key);
            ovf.extend_from_slice(value);
        }
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(total, Ordering::Relaxed);
    }

    fn for_each_part(&self, part: usize, parts: usize, f: &mut dyn FnMut(&[u8], &[u8])) {
        for (s, shard) in self.shards.iter().enumerate() {
            if s % parts != part {
                continue;
            }
            let end = shard.valid_end.load(Ordering::Acquire).min(shard.buf.cap);
            // SAFETY: all writers finished; `[0, end)` holds complete records.
            let main = unsafe { std::slice::from_raw_parts(shard.buf.ptr, end) };
            let ovf = shard.overflow.lock();
            for region in [main, ovf.as_slice()] {
                let mut rest = region;
                while !rest.is_empty() {
                    let (klen, n1) = varint::read_len(rest).expect("corrupt arena record");
                    let (vlen, n2) = varint::read_len(&rest[n1..]).expect("corrupt arena record");
                    let body = &rest[n1 + n2..];
                    f(&body[..klen], &body[klen..klen + vlen]);
                    rest = &body[klen + vlen..];
                }
            }
        }
    }

    fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.used.store(0, Ordering::Relaxed);
            shard.valid_end.store(0, Ordering::Relaxed);
            shard.overflow.get_mut().clear();
        }
        self.records.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.next_shard.store(0, Ordering::Relaxed);
    }

    fn records(&self) -> usize {
        self.records.load(Ordering::Relaxed)
    }

    fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Hash table
// ---------------------------------------------------------------------------

enum Payload {
    /// Combined accumulator (combiner mode): one value per key.
    Combined(Vec<u8>),
    /// Encoded value list `varint(len) value ...` with its count.
    Values(Vec<u8>, usize),
}

struct HtEntry {
    key: Vec<u8>,
    payload: Payload,
}

/// The hash-table collector with optional in-kernel combiner.
pub struct HashTableCollector {
    buckets: Vec<Mutex<Vec<HtEntry>>>,
    combiner: Option<Arc<dyn Combiner>>,
    emits: AtomicUsize,
    records: AtomicUsize,
    bytes: AtomicUsize,
}

impl HashTableCollector {
    /// Create with `buckets` chains; `combiner` enables combining mode.
    pub fn new(buckets: usize, combiner: Option<Arc<dyn Combiner>>) -> Self {
        let buckets = buckets.max(1);
        HashTableCollector {
            buckets: (0..buckets).map(|_| Mutex::new(Vec::new())).collect(),
            combiner,
            emits: AtomicUsize::new(0),
            records: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Total emit calls (pre-combining), for contention analysis.
    pub fn emits(&self) -> usize {
        self.emits.load(Ordering::Relaxed)
    }
}

impl Collector for HashTableCollector {
    fn emit(&self, key: &[u8], value: &[u8]) {
        self.emits.fetch_add(1, Ordering::Relaxed);
        let b = crate::hash::bucket_of(hash_bytes(key), self.buckets.len());
        let mut bucket = self.buckets[b].lock();
        if let Some(entry) = bucket.iter_mut().find(|e| e.key == key) {
            match &mut entry.payload {
                Payload::Combined(acc) => {
                    let before = acc.len();
                    self.combiner
                        .as_ref()
                        .expect("combined payload without combiner")
                        .combine(key, acc, value);
                    // Accumulator may grow or shrink; adjust byte estimate.
                    let after = acc.len();
                    if after >= before {
                        self.bytes.fetch_add(after - before, Ordering::Relaxed);
                    } else {
                        self.bytes.fetch_sub(before - after, Ordering::Relaxed);
                    }
                }
                Payload::Values(values, count) => {
                    varint::write_len(values, value.len());
                    values.extend_from_slice(value);
                    *count += 1;
                    self.records.fetch_add(1, Ordering::Relaxed);
                    self.bytes.fetch_add(value.len() + 1, Ordering::Relaxed);
                }
            }
        } else {
            let payload = if self.combiner.is_some() {
                Payload::Combined(value.to_vec())
            } else {
                let mut values = Vec::with_capacity(value.len() + 2);
                varint::write_len(&mut values, value.len());
                values.extend_from_slice(value);
                Payload::Values(values, 1)
            };
            self.bytes
                .fetch_add(key.len() + value.len() + 2, Ordering::Relaxed);
            self.records.fetch_add(1, Ordering::Relaxed);
            bucket.push(HtEntry {
                key: key.to_vec(),
                payload,
            });
        }
    }

    fn for_each_part(&self, part: usize, parts: usize, f: &mut dyn FnMut(&[u8], &[u8])) {
        for (b, bucket) in self.buckets.iter().enumerate() {
            if b % parts != part {
                continue;
            }
            let bucket = bucket.lock();
            for entry in bucket.iter() {
                match &entry.payload {
                    Payload::Combined(acc) => f(&entry.key, acc),
                    Payload::Values(values, count) => {
                        // The compacting pass: values of one key are stored
                        // contiguously; decode each occurrence.
                        let mut rest = values.as_slice();
                        let mut seen = 0usize;
                        while !rest.is_empty() {
                            let (vlen, n) =
                                varint::read_len(rest).expect("corrupt hash-table values");
                            f(&entry.key, &rest[n..n + vlen]);
                            rest = &rest[n + vlen..];
                            seen += 1;
                        }
                        debug_assert_eq!(seen, *count);
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        for bucket in &mut self.buckets {
            bucket.get_mut().clear();
        }
        self.emits.store(0, Ordering::Relaxed);
        self.records.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }

    fn records(&self) -> usize {
        self.records.load(Ordering::Relaxed)
    }

    fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_all(c: &dyn Collector) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        for_each_record(c, &mut |k, v| out.push((k.to_vec(), v.to_vec())));
        out.sort();
        out
    }

    fn collect_parts(c: &dyn Collector, parts: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        for p in 0..parts {
            c.for_each_part(p, parts, &mut |k, v| out.push((k.to_vec(), v.to_vec())));
        }
        out.sort();
        out
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        fn combine(&self, _key: &[u8], acc: &mut Vec<u8>, value: &[u8]) {
            let a = u64::from_le_bytes(acc.as_slice().try_into().unwrap());
            let b = u64::from_le_bytes(value.try_into().unwrap());
            acc.copy_from_slice(&(a + b).to_le_bytes());
        }
    }

    #[test]
    fn buffer_pool_stores_every_occurrence() {
        let c = BufferPoolCollector::new(4096, 4);
        c.emit(b"a", b"1");
        c.emit(b"a", b"2");
        c.emit(b"b", b"3");
        assert_eq!(c.records(), 3);
        let all = collect_all(&c);
        assert_eq!(
            all,
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"2".to_vec()),
                (b"b".to_vec(), b"3".to_vec()),
            ]
        );
    }

    #[test]
    fn buffer_pool_partitioned_read_covers_everything_once() {
        let c = BufferPoolCollector::new(1 << 16, 8);
        for i in 0..500 {
            c.emit(format!("k{i}").as_bytes(), &[i as u8]);
        }
        for parts in [1, 2, 3, 8] {
            assert_eq!(collect_parts(&c, parts).len(), 500, "parts={parts}");
        }
    }

    #[test]
    fn buffer_pool_overflow_path_keeps_records() {
        // Tiny capacity forces the overflow path.
        let c = BufferPoolCollector::new(256, 1);
        for i in 0..200 {
            c.emit(format!("key-{i:04}").as_bytes(), b"valuevalue");
        }
        assert_eq!(c.records(), 200);
        assert_eq!(collect_all(&c).len(), 200);
    }

    #[test]
    fn buffer_pool_concurrent_emits_are_all_kept() {
        let c = std::sync::Arc::new(BufferPoolCollector::new(1 << 18, 8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.emit(format!("t{t}-{i}").as_bytes(), &[t as u8]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.records(), 8000);
        assert_eq!(collect_all(c.as_ref()).len(), 8000);
    }

    #[test]
    fn buffer_pool_reset_recycles() {
        let mut c = BufferPoolCollector::new(4096, 2);
        c.emit(b"x", b"1");
        c.reset();
        assert_eq!(c.records(), 0);
        assert!(collect_all(&c).is_empty());
        c.emit(b"y", b"2");
        assert_eq!(collect_all(&c), vec![(b"y".to_vec(), b"2".to_vec())]);
    }

    #[test]
    fn hash_table_without_combiner_keeps_values_grouped() {
        let c = HashTableCollector::new(16, None);
        c.emit(b"w", &1u64.to_le_bytes());
        c.emit(b"w", &2u64.to_le_bytes());
        c.emit(b"x", &3u64.to_le_bytes());
        assert_eq!(c.records(), 3);
        assert_eq!(c.emits(), 3);
        let all = collect_all(&c);
        assert_eq!(all.len(), 3);
        assert_eq!(all.iter().filter(|(k, _)| k == b"w").count(), 2);
    }

    #[test]
    fn hash_table_with_combiner_aggregates() {
        let c = HashTableCollector::new(16, Some(Arc::new(SumCombiner)));
        for _ in 0..10 {
            c.emit(b"w", &1u64.to_le_bytes());
        }
        c.emit(b"x", &5u64.to_le_bytes());
        assert_eq!(c.records(), 2, "one record per distinct key");
        assert_eq!(c.emits(), 11);
        let all = collect_all(&c);
        let w = all.iter().find(|(k, _)| k == b"w").unwrap();
        assert_eq!(u64::from_le_bytes(w.1.as_slice().try_into().unwrap()), 10);
    }

    #[test]
    fn hash_table_concurrent_combining_is_correct() {
        let c = std::sync::Arc::new(HashTableCollector::new(64, Some(Arc::new(SumCombiner))));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        let key = format!("k{}", i % 10);
                        c.emit(key.as_bytes(), &1u64.to_le_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let all = collect_all(c.as_ref());
        assert_eq!(all.len(), 10);
        for (_, v) in all {
            assert_eq!(u64::from_le_bytes(v.as_slice().try_into().unwrap()), 800);
        }
    }

    #[test]
    fn hash_table_partitioned_read_is_disjoint_and_complete() {
        let c = HashTableCollector::new(32, None);
        for i in 0..300 {
            c.emit(format!("k{i}").as_bytes(), b"v");
        }
        for parts in [1, 2, 5] {
            assert_eq!(collect_parts(&c, parts).len(), 300, "parts={parts}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Both collection mechanisms hold the same record multiset
            /// (no combiner), for arbitrary emit sequences.
            #[test]
            fn collectors_are_equivalent(
                emits in proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..8),
                     proptest::collection::vec(any::<u8>(), 0..8)), 0..200))
            {
                let pool = BufferPoolCollector::new(1 << 16, 4);
                let table = HashTableCollector::new(64, None);
                for (k, v) in &emits {
                    pool.emit(k, v);
                    table.emit(k, v);
                }
                prop_assert_eq!(collect_all(&pool), collect_all(&table));
                prop_assert_eq!(pool.records(), emits.len());
                prop_assert_eq!(table.records(), emits.len());
            }

            /// Partitioned reads are a partition: disjoint and complete,
            /// for any number of parts.
            #[test]
            fn partitioned_reads_partition(
                n_emits in 0usize..300,
                parts in 1usize..10)
            {
                let pool = BufferPoolCollector::new(1 << 14, 3);
                let table = HashTableCollector::new(16, None);
                for i in 0..n_emits {
                    let k = format!("k{i}");
                    pool.emit(k.as_bytes(), b"v");
                    table.emit(k.as_bytes(), b"v");
                }
                prop_assert_eq!(collect_parts(&pool, parts).len(), n_emits);
                prop_assert_eq!(collect_parts(&table, parts).len(), n_emits);
            }
        }
    }

    #[test]
    fn hash_table_reset_recycles() {
        let mut c = HashTableCollector::new(8, None);
        c.emit(b"x", b"1");
        c.reset();
        assert_eq!(c.records(), 0);
        assert!(collect_all(&c).is_empty());
    }
}
