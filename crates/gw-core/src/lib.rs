//! The Glasswing engine — a MapReduce framework that scales *vertically*
//! (fine-grained, device-level parallelism via an OpenCL-like kernel model)
//! and *horizontally* (a pipelined, push-shuffle cluster runtime).
//!
//! Rust reproduction of the system described in:
//!
//! > Ismail El-Helw, Rutger Hofman, Henri E. Bal.
//! > *Scaling MapReduce Vertically and Horizontally.* SC 2014.
//!
//! ## Architecture (paper §III)
//!
//! A job has three phases. The **map phase** and the **reduce phase** are
//! both instantiations of the 5-stage Glasswing pipeline
//! ([`map_pipeline`], [`reduce_pipeline`]); the **merge phase** runs
//! concurrently with map, exchanging partitions between nodes
//! (`gw-net`) and merging them (`gw-intermediate`), and continues after map
//! completion until all data has arrived and been merged (the *merge
//! delay*).
//!
//! ```text
//! map:    Input → Stage → Kernel → Retrieve → Partition
//! reduce: MergeRead → Stage → Kernel → Retrieve → Output
//! ```
//!
//! Stages communicate through recycling buffer pools; the pool sizes are
//! the paper's single/double/triple **buffering levels** ([`config::Buffering`]).
//! Kernels execute on a compute [`gw_device::Device`]; for unified-memory
//! devices the Stage and Retrieve stages are disabled.
//!
//! Map output is harvested by one of two **collectors** (paper §III-F): a
//! shared buffer pool with atomic allocation, or a concurrent hash table
//! with optional in-kernel combiner ([`collect`]).
//!
//! The [`cluster::Cluster`] runtime executes a job over `n` in-process
//! nodes, with a locality-aware split [`coordinator`], per-node
//! [`timers::StageTimers`], and a [`schedule`] model that converts per-chunk
//! stage durations into pipeline makespans (used to validate the pipeline
//! and to model accelerator timing).

pub mod api;
pub mod cluster;
pub mod collect;
pub mod config;
pub mod coordinator;
pub mod hash;
pub mod map_pipeline;
pub mod reduce_pipeline;
pub mod schedule;
pub mod timers;

pub use api::{Combiner, Emit, GwApp};
pub use cluster::{read_job_output, Cluster, JobReport, NodeReport, RunScope};
pub use collect::{BufferPoolCollector, Collector, CollectorKind, HashTableCollector};
pub use config::{Buffering, JobConfig, LanePlan, SpeculationConfig, TimingMode};
pub use coordinator::{Coordinator, SpeculationReport};
pub use schedule::{pipeline_makespan, ChunkTimes};
pub use timers::{PipelineKind, StageId, StageTimers, TimerReport};

pub use gw_chaos::{CrashSite, FaultPlan};
pub use gw_storage::NodeId;
pub use gw_trace::{
    validate_json, Advice, Anomalies, CounterId, CriticalPath, Event, EventKind, Interference,
    JobActivity, JobOverlap, LaneId, LogicalKind, MarkId, MetricsSummary, NodePerf, OverlapMatrix,
    PerfAnalysis, PipelinePerf, ReadClass, Realm, ServiceStats, SpanId, StagePerf, Straggler,
    Trace, Tracer,
};

/// Errors surfaced by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Underlying storage failure.
    Storage(gw_storage::StorageError),
    /// Underlying device failure.
    Device(gw_device::DeviceError),
    /// I/O failure (spills, durability copies).
    Io(std::io::Error),
    /// Invalid job configuration.
    Config(String),
    /// A task kept failing after exhausting its re-execution budget
    /// (paper §III-E: failed tasks are discarded and re-executed; the
    /// budget bounds deterministic failures).
    TaskFailed(String),
    /// A node died mid-job and its work could not be recovered onto the
    /// survivors (or, on the dead node's own thread, the local death
    /// itself — tolerated and accounted by the cluster runtime).
    NodeLost(String),
    /// The job exceeded its configured wall-clock deadline
    /// ([`JobConfig::job_deadline`]) and was aborted by the watchdog.
    JobTimeout(std::time::Duration),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Device(e) => write!(f, "device error: {e}"),
            EngineError::Io(e) => write!(f, "io error: {e}"),
            EngineError::Config(msg) => write!(f, "config error: {msg}"),
            EngineError::TaskFailed(msg) => write!(f, "task failed: {msg}"),
            EngineError::NodeLost(msg) => write!(f, "node lost: {msg}"),
            EngineError::JobTimeout(d) => {
                write!(
                    f,
                    "job exceeded deadline of {:.3}s and was aborted",
                    d.as_secs_f64()
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Device(e) => Some(e),
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gw_storage::StorageError> for EngineError {
    fn from(e: gw_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}
impl From<gw_device::DeviceError> for EngineError {
    fn from(e: gw_device::DeviceError) -> Self {
        EngineError::Device(e)
    }
}
impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn fault_variants_display_their_cause() {
        let lost = EngineError::NodeLost("node 2 stopped heartbeating".into());
        assert_eq!(lost.to_string(), "node lost: node 2 stopped heartbeating");

        let timeout = EngineError::JobTimeout(std::time::Duration::from_millis(1500));
        let msg = timeout.to_string();
        assert!(msg.contains("deadline"), "{msg}");
        assert!(msg.contains("1.500"), "{msg}");
    }

    #[test]
    fn source_chains_to_the_underlying_layer() {
        let io = EngineError::Io(std::io::Error::other("disk gone"));
        assert!(io
            .source()
            .is_some_and(|s| s.to_string().contains("disk gone")));

        let storage = EngineError::Storage(gw_storage::StorageError::AllReplicasLost(
            "/wc/in block 3".into(),
        ));
        assert!(storage
            .source()
            .is_some_and(|s| s.to_string().contains("all replicas lost")));

        assert!(EngineError::Config("bad".into()).source().is_none());
        assert!(EngineError::NodeLost("n1".into()).source().is_none());
    }
}
