//! Analytical pipeline-schedule model.
//!
//! Given the per-chunk duration of each of the five stages and a buffering
//! level, compute when each stage of each chunk runs and the resulting
//! makespan. This encodes the paper's interlock semantics (§III-D):
//!
//! * a stage processes one chunk at a time;
//! * stage `s` of chunk `c` starts after stage `s-1` of chunk `c`;
//! * with `B` input buffers, Input of chunk `c` must wait until Kernel has
//!   finished chunk `c-B` (which frees an input buffer);
//! * with `B` output buffers, Kernel of chunk `c` must wait until
//!   Partition has finished chunk `c-B` (frees an output buffer).
//!
//! Under single buffering each group serialises internally — "the map
//! elapsed time equals the sum of the input stage and the kernel stage" —
//! while under double/triple buffering "the total elapsed time is very
//! close to the kernel execution time, which is the dominant pipeline
//! stage".
//!
//! The model is used three ways: validating the real pipeline's measured
//! elapsed time, replaying measured chunk times under a different device
//! profile (Table III(b)'s GPU column), and powering the cluster
//! simulator's per-node service model.

use std::time::Duration;

use crate::config::Buffering;
use crate::timers::StageId;

/// Per-chunk stage durations, in pipeline order
/// `[input, stage, kernel, retrieve, partition]`.
pub type ChunkTimes = [Duration; 5];

/// Completion schedule of a pipeline run.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// `end[c][s]` = completion time of stage `s` for chunk `c`,
    /// measured from pipeline start.
    pub end: Vec<[Duration; 5]>,
}

impl Schedule {
    /// Total elapsed time (completion of the last chunk's last stage).
    pub fn makespan(&self) -> Duration {
        self.end
            .last()
            .map(|stages| stages[StageId::Partition.index()])
            .unwrap_or(Duration::ZERO)
    }
}

/// Compute the full schedule for `chunks` under buffering level `buffering`.
pub fn pipeline_schedule(chunks: &[ChunkTimes], buffering: Buffering) -> Schedule {
    let b = buffering.depth();
    let n = chunks.len();
    let mut end = vec![[Duration::ZERO; 5]; n];
    let zero = Duration::ZERO;
    for c in 0..n {
        let t = &chunks[c];
        // Completion of my predecessor chunk in each stage (stage busy).
        let prev = if c > 0 { end[c - 1] } else { [zero; 5] };
        // Buffer-release constraints: the input group ends at Kernel, the
        // output group at Partition (the executor's interlock endpoints).
        let input_buffer_free = if c >= b {
            end[c - b][StageId::Kernel.index()]
        } else {
            zero
        };
        let output_buffer_free = if c >= b {
            end[c - b][StageId::Partition.index()]
        } else {
            zero
        };

        // Input: needs the input stage idle + a free input buffer.
        let start_input = prev[0].max(input_buffer_free);
        end[c][0] = start_input + t[0];
        // Stage: after my input, stage idle.
        let start_stage = end[c][0].max(prev[1]);
        end[c][1] = start_stage + t[1];
        // Kernel: after my staging, kernel idle, and a free output buffer.
        let start_kernel = end[c][1].max(prev[2]).max(output_buffer_free);
        end[c][2] = start_kernel + t[2];
        // Retrieve: after my kernel, retrieve idle.
        let start_retrieve = end[c][2].max(prev[3]);
        end[c][3] = start_retrieve + t[3];
        // Partition: after my retrieve, partition idle.
        let start_partition = end[c][3].max(prev[4]);
        end[c][4] = start_partition + t[4];
    }
    Schedule { end }
}

/// Makespan only.
pub fn pipeline_makespan(chunks: &[ChunkTimes], buffering: Buffering) -> Duration {
    pipeline_schedule(chunks, buffering).makespan()
}

/// Uniform chunks helper: `n` identical chunks.
pub fn uniform_chunks(n: usize, times: ChunkTimes) -> Vec<ChunkTimes> {
    vec![times; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_pipeline_is_zero() {
        assert_eq!(pipeline_makespan(&[], Buffering::Double), Duration::ZERO);
    }

    #[test]
    fn single_chunk_is_sum_of_stages() {
        let t = [ms(1), ms(2), ms(3), ms(4), ms(5)];
        for b in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            assert_eq!(pipeline_makespan(&[t], b), ms(15));
        }
    }

    #[test]
    fn double_buffering_converges_to_dominant_stage() {
        // Kernel dominates (paper Table II, configs (i)/(ii)): elapsed ≈
        // kernel total + pipeline fill/drain.
        let chunks = uniform_chunks(50, [ms(4), ms(0), ms(10), ms(0), ms(3)]);
        let makespan = pipeline_makespan(&chunks, Buffering::Double);
        let kernel_total = ms(10 * 50);
        let slack = makespan - kernel_total;
        assert!(
            slack <= ms(10),
            "pipeline should hide non-dominant stages; slack {slack:?}"
        );
    }

    #[test]
    fn single_buffering_serialises_input_group() {
        // Paper: "the map elapsed time equals the sum of the input stage
        // and the kernel stage" under single buffering (stage/retrieve
        // disabled, partition smaller).
        let chunks = uniform_chunks(40, [ms(5), ms(0), ms(8), ms(0), ms(2)]);
        let single = pipeline_makespan(&chunks, Buffering::Single);
        let expect = ms((5 + 8) * 40);
        let diff = single.abs_diff(expect);
        assert!(
            diff <= ms(13),
            "single buffering should cost input+kernel per chunk: got {single:?}, expect {expect:?}"
        );
    }

    #[test]
    fn more_buffering_never_hurts() {
        let chunks: Vec<ChunkTimes> = (0..30)
            .map(|i| {
                [
                    ms(3 + i % 5),
                    ms(1),
                    ms(6 + (i * 7) % 4),
                    ms(1),
                    ms(4 + i % 3),
                ]
            })
            .collect();
        let single = pipeline_makespan(&chunks, Buffering::Single);
        let double = pipeline_makespan(&chunks, Buffering::Double);
        let triple = pipeline_makespan(&chunks, Buffering::Triple);
        assert!(double <= single);
        assert!(triple <= double);
    }

    #[test]
    fn makespan_is_at_least_every_stage_total() {
        let chunks = uniform_chunks(20, [ms(2), ms(1), ms(5), ms(1), ms(7)]);
        let makespan = pipeline_makespan(&chunks, Buffering::Triple);
        for s in 0..5 {
            let total: Duration = chunks.iter().map(|c| c[s]).sum();
            assert!(makespan >= total, "stage {s} total exceeds makespan");
        }
    }

    #[test]
    fn input_and_output_groups_overlap_even_with_single_buffering() {
        // One input-group-heavy load and partition-heavy tail: with a
        // single buffer per group, partition of chunk c overlaps input of
        // chunk c+1 (the groups share no buffers).
        let chunks = uniform_chunks(30, [ms(5), ms(0), ms(5), ms(0), ms(10)]);
        let makespan = pipeline_makespan(&chunks, Buffering::Single);
        // Serial would be 20ms/chunk = 600ms; the steady-state period with
        // overlapping groups is 15ms/chunk (kernel waits for the previous
        // partition, which overlaps the next input) ⇒ ≈455ms.
        assert!(makespan < ms(500), "groups failed to overlap: {makespan:?}");
        assert!(
            makespan >= ms(440),
            "model changed unexpectedly: {makespan:?}"
        );
    }

    #[test]
    fn triple_buffering_enables_full_concurrency() {
        // All stages equal: with triple buffering the pipeline becomes a
        // clean systolic array; makespan ≈ (n + 4) * t.
        let t = ms(2);
        let chunks = uniform_chunks(50, [t; 5]);
        let makespan = pipeline_makespan(&chunks, Buffering::Triple);
        assert_eq!(makespan, ms(2 * (50 + 4)));
    }
}
