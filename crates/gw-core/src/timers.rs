//! Per-stage pipeline instrumentation — re-exported from `gw-pipeline`.
//!
//! The timer types moved into the shared stage-graph executor crate (the
//! executor owns all `add` calls now); this module keeps the historical
//! `gw_core::timers::*` paths alive for existing consumers.

pub use gw_pipeline::{PipelineKind, StageId, StageSample, StageTimers, TimerReport};
