//! The 5-stage reduce pipeline (paper §III-C).
//!
//! ```text
//! MergeRead → Stage → Kernel → Retrieve → Output
//! ```
//!
//! The first stage "performs one last merge operation and supplies the
//! pipeline with a consistent view of the intermediate data": a k-way
//! loser-tree merge (`gw_intermediate::MergeIter`, one comparison per
//! tree level per record) over the partition's cached and spilled runs,
//! grouped by key.
//!
//! Reduce-side fine-grained parallelism, exactly as the paper describes:
//!
//! * the pipeline "is capable of processing multiple keys concurrently" —
//!   each kernel launch carries up to `reduce_concurrent_keys` keys;
//! * "Glasswing provides the possibility to have each reduce kernel thread
//!   process multiple keys sequentially" (`reduce_keys_per_thread`) to
//!   amortise kernel-invocation overhead (Fig. 5);
//! * "If the number of values to be reduced for one key is too large for
//!   one kernel invocation, some state must be saved across kernel calls.
//!   Glasswing provides scratch buffers for each key to store such state"
//!   — value lists longer than `reduce_max_values_per_chunk` span several
//!   chunks, with a per-key scratch buffer carried between invocations.
//!
//! Jobs without a reduce function (TeraSort) bypass the kernel: the merged,
//! sorted intermediate stream is written directly — "its output is fully
//! processed by the end of the intermediate data shuffle".

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::bounded;
use parking_lot::Mutex;

use gw_device::{Device, KernelFn, NdRange, WorkItemCtx};
use gw_intermediate::{GroupedMerge, IntermediateStore, MergeIter};
use gw_storage::split::{FileStore, RecordBlockBuilder};
use gw_storage::NodeId;

use crate::api::{Emit, GwApp};
use crate::collect::{for_each_record, BufferPoolCollector, Collector};
use crate::config::{JobConfig, TimingMode};
use crate::coordinator::{Coordinator, NodeChaos};
use crate::timers::{StageId, StageTimers};
use crate::EngineError;

/// Saved scratch entries for one chunk's keys (`None` = key had no
/// scratch state), restored when a failed reduce attempt rolls back.
type ScratchSnapshot = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// One key's slice of values within a reduce chunk.
struct Group<'r> {
    key: &'r [u8],
    values: Vec<&'r [u8]>,
    /// Whether this is the key's final value chunk.
    last: bool,
}

/// One work-item assignment: `part` of `parts` cooperating on a group
/// (parts > 1 = the paper's parallel single-key reduction).
#[derive(Debug, Clone, Copy)]
struct Assignment {
    group: usize,
    part: usize,
    parts: usize,
}

/// A batch of up to `reduce_concurrent_keys` groups.
struct ReduceChunk<'r> {
    seq: usize,
    groups: Vec<Group<'r>>,
    assignments: Vec<Assignment>,
    bytes: usize,
}

/// Kernel output en route to the writer.
struct ReduceOut {
    seq: usize,
    collector: Box<dyn Collector>,
}

/// Outcome of a node's reduce phase.
#[derive(Debug, Clone, Default)]
pub struct ReducePhaseReport {
    /// Local partitions reduced.
    pub partitions: usize,
    /// Distinct keys processed.
    pub keys: usize,
    /// Output records written.
    pub records_out: usize,
    /// Kernel launches performed.
    pub launches: usize,
    /// Key-chunks reduced cooperatively by multiple work items (the
    /// paper's parallel single-key reduction).
    pub parallel_key_splits: usize,
    /// Reduce kernel launches that failed and were re-executed within the
    /// `max_task_retries` budget.
    pub tasks_retried: usize,
    /// Output files written (paths).
    pub output_files: Vec<String>,
    /// Wall-clock duration of the phase.
    pub elapsed: Duration,
}

/// Everything a node needs to run its reduce phase.
pub struct ReducePhase<'a> {
    /// Job configuration.
    pub cfg: &'a JobConfig,
    /// This node.
    pub node: NodeId,
    /// Cluster size.
    pub nodes: u32,
    /// The application.
    pub app: Arc<dyn GwApp>,
    /// The node's compute device.
    pub device: Arc<Device>,
    /// Output storage.
    pub store: Arc<dyn FileStore>,
    /// The node's intermediate store (post merge phase).
    pub intermediate: Arc<IntermediateStore>,
    /// Split/partition coordinator: the reduce phase asks it which global
    /// partitions this node owns (adopted partitions included).
    pub coordinator: Arc<Coordinator>,
    /// Stage timers to fill.
    pub timers: Arc<StageTimers>,
    /// Fault-injection context (supervised jobs only).
    pub chaos: Option<NodeChaos>,
}

impl ReducePhase<'_> {
    /// Run reduction over every global partition this node owns.
    pub fn run(self) -> Result<ReducePhaseReport, EngineError> {
        let start = Instant::now();
        let mut report = ReducePhaseReport::default();
        let mut chunk_seq = 0usize;
        let total_partitions = self.cfg.partitions_per_node * self.nodes;
        for gp in 0..total_partitions {
            if self.coordinator.owner_of(gp, self.nodes) != self.node.0 {
                continue;
            }
            if self.coordinator.aborted() {
                return Err(EngineError::NodeLost("job aborted during reduce".into()));
            }
            let path = format!("{}/part-r-{gp:05}", self.cfg.output);
            let runs = self.intermediate.partition_runs(gp);
            report.partitions += 1;
            if self.app.has_reduce() {
                self.reduce_partition(&runs, &path, &mut report, &mut chunk_seq)?;
            } else {
                self.passthrough_partition(&runs, &path, &mut report, &mut chunk_seq)?;
            }
            report.output_files.push(path);
        }
        report.elapsed = start.elapsed();
        Ok(report)
    }

    /// Shuffle-only job: write the merged sorted stream directly.
    fn passthrough_partition(
        &self,
        runs: &[gw_intermediate::Run],
        path: &str,
        report: &mut ReducePhaseReport,
        chunk_seq: &mut usize,
    ) -> Result<(), EngineError> {
        let t0 = Instant::now();
        let mut builder = RecordBlockBuilder::new(self.cfg.output_block_size);
        let mut records = 0usize;
        for (k, v) in MergeIter::new(runs.iter()) {
            builder.append(k, v);
            records += 1;
        }
        let merge_wall = t0.elapsed();
        self.timers
            .add(StageId::Input, *chunk_seq, merge_wall, merge_wall);
        let t1 = Instant::now();
        let sample = self
            .store
            .write_blocks(path, self.node, builder.finish(), self.cfg.output_replication)?;
        let write_wall = t1.elapsed();
        let write_modeled = match self.cfg.timing {
            TimingMode::Wall => write_wall,
            TimingMode::Modeled => write_wall + sample.modeled,
        };
        self.timers
            .add(StageId::Partition, *chunk_seq, write_wall, write_modeled);
        *chunk_seq += 1;
        report.records_out += records;
        report.keys += records;
        Ok(())
    }

    /// Full 5-stage pipelined reduction of one partition.
    fn reduce_partition<'r>(
        &self,
        runs: &'r [gw_intermediate::Run],
        path: &str,
        report: &mut ReducePhaseReport,
        chunk_seq: &mut usize,
    ) -> Result<(), EngineError> {
        let cfg = self.cfg;
        let b = cfg.buffering.depth();
        let base_seq = *chunk_seq;
        // Parallel single-key reduction is available only when the app
        // declares an associative state merge (probed with empty states,
        // which the contract requires to act as identities).
        let threads_per_key = if cfg.reduce_threads_per_key > 1
            && self.app.merge_states(&mut Vec::new(), &[])
        {
            cfg.reduce_threads_per_key
        } else {
            1
        };

        // Interlocks: B chunk tokens (input group), B collectors (output).
        let (in_token_tx, in_token_rx) = bounded::<()>(b);
        for _ in 0..b {
            in_token_tx.send(()).expect("prime reduce tokens");
        }
        let (out_pool_tx, out_pool_rx) = bounded::<Box<dyn Collector>>(b);
        for _ in 0..b {
            out_pool_tx
                .send(Box::new(BufferPoolCollector::new(
                    cfg.collector_capacity,
                    cfg.partition_threads.max(8),
                )))
                .expect("prime reduce collectors");
        }

        let (chunk_tx, chunk_rx) = bounded::<ReduceChunk<'r>>(1);
        let (staged_tx, staged_rx) = bounded::<ReduceChunk<'r>>(1);
        let (kernel_tx, kernel_rx) = bounded::<ReduceOut>(1);
        let (retrieved_tx, retrieved_rx) = bounded::<ReduceOut>(1);

        // Per-key scratch state persisting across kernel invocations
        // (device-resident in real Glasswing; keyed map here). Keys within
        // a chunk are distinct and chunks flow FIFO through the single
        // kernel stage, so per-key access is serialized.
        let scratch: Mutex<HashMap<Vec<u8>, Vec<u8>>> = Mutex::new(HashMap::new());

        // Fault-injection context, probed once per kernel attempt.
        let chaos = self.chaos.clone();

        let keys_seen = AtomicUsize::new(0);
        let launches = AtomicUsize::new(0);
        let records_out = AtomicUsize::new(0);
        let parallel_splits = AtomicUsize::new(0);
        let tasks_retried = AtomicUsize::new(0);

        std::thread::scope(|scope| -> Result<(), EngineError> {
            // ---------------- Stage 1: MergeRead ----------------
            let merge_handle = {
                let timers = Arc::clone(&self.timers);
                let keys_seen = &keys_seen;
                scope.spawn(move || -> Result<usize, EngineError> {
                    let mut seq = base_seq;
                    let mut groups: Vec<Group<'r>> = Vec::new();
                    let mut assignments: Vec<Assignment> = Vec::new();
                    let mut bytes = 0usize;
                    let mut build_started = Instant::now();
                    let flush =
                        |groups: &mut Vec<Group<'r>>,
                         assignments: &mut Vec<Assignment>,
                         bytes: &mut usize,
                         seq: &mut usize,
                         build_started: &mut Instant|
                         -> Result<(), EngineError> {
                        if groups.is_empty() {
                            return Ok(());
                        }
                        let wall = build_started.elapsed();
                        timers.add(StageId::Input, *seq, wall, wall);
                        if in_token_rx.recv().is_err() {
                            return Err(EngineError::TaskFailed(
                                "reduce pipeline stage failed".into(),
                            ));
                        }
                        if chunk_tx
                            .send(ReduceChunk {
                                seq: *seq,
                                groups: std::mem::take(groups),
                                assignments: std::mem::take(assignments),
                                bytes: std::mem::take(bytes),
                            })
                            .is_err()
                        {
                            // Downstream stage failed; surface its error.
                            return Err(EngineError::TaskFailed(
                                "reduce pipeline stage failed".into(),
                            ));
                        }
                        *seq += 1;
                        *build_started = Instant::now();
                        Ok(())
                    };
                    for (key, values) in GroupedMerge::new(runs.iter()) {
                        keys_seen.fetch_add(1, Ordering::Relaxed);
                        let mut idx = 0usize;
                        while idx < values.len() {
                            let end = (idx + cfg.reduce_max_values_per_chunk).min(values.len());
                            let slice = values[idx..end].to_vec();
                            bytes += key.len() + slice.iter().map(|v| v.len()).sum::<usize>();
                            // Split large value chunks over cooperating
                            // work items when the app supports it.
                            let parts = if threads_per_key > 1 && slice.len() >= 2 * threads_per_key
                            {
                                threads_per_key
                            } else {
                                1
                            };
                            let g = groups.len();
                            for part in 0..parts {
                                assignments.push(Assignment { group: g, part, parts });
                            }
                            let last = end == values.len();
                            groups.push(Group {
                                key,
                                values: slice,
                                last,
                            });
                            idx = end;
                            // A key's scratch state is only consistent
                            // across *launches*: a continued (non-final)
                            // slice must close this chunk so its successor
                            // lands in a later launch (otherwise two work
                            // items could race on the key's state). Also
                            // flush when the chunk is full.
                            if !last || groups.len() >= cfg.reduce_concurrent_keys {
                                flush(
                                    &mut groups,
                                    &mut assignments,
                                    &mut bytes,
                                    &mut seq,
                                    &mut build_started,
                                )?;
                            }
                        }
                    }
                    flush(
                        &mut groups,
                        &mut assignments,
                        &mut bytes,
                        &mut seq,
                        &mut build_started,
                    )?;
                    // `chunk_tx` drops with this thread, closing the channel.
                    Ok(seq)
                })
            };

            // ---------------- Stage 2: Stage (H2D) ----------------
            let stage_handle = {
                let device = Arc::clone(&self.device);
                let timers = Arc::clone(&self.timers);
                let timing = cfg.timing;
                scope.spawn(move || -> Result<(), EngineError> {
                    while let Ok(chunk) = chunk_rx.recv() {
                        if !device.unified_memory() {
                            let t0 = Instant::now();
                            let wall = t0.elapsed();
                            let modeled = match timing {
                                TimingMode::Wall => wall,
                                TimingMode::Modeled => {
                                    device.profile().transfer_time(chunk.bytes, true)
                                }
                            };
                            timers.add(StageId::Stage, chunk.seq, wall, modeled);
                        }
                        if staged_tx.send(chunk).is_err() {
                            break; // downstream stage gone
                        }
                    }
                    drop(staged_tx);
                    Ok(())
                })
            };

            // ---------------- Stage 3: Kernel ----------------
            let kernel_handle = {
                let device = Arc::clone(&self.device);
                let app = Arc::clone(&self.app);
                let timers = Arc::clone(&self.timers);
                let scratch = &scratch;
                let chaos = &chaos;
                let launches = &launches;
                let parallel_splits = &parallel_splits;
                let tasks_retried = &tasks_retried;
                let node = self.node;
                scope.spawn(move || -> Result<(), EngineError> {
                    let retries = cfg.max_task_retries;
                    while let Ok(chunk) = staged_rx.recv() {
                        let Ok(mut collector) = out_pool_rx.recv() else { break };
                        // Snapshot the scratch states this chunk can touch,
                        // so a failed attempt rolls back and re-executes
                        // (paper §III-E, extended to the reduce side).
                        let snapshot: Option<ScratchSnapshot> = if retries > 0 {
                            let s = scratch.lock();
                            Some(
                                chunk
                                    .groups
                                    .iter()
                                    .map(|g| (g.key.to_vec(), s.get(g.key).cloned()))
                                    .collect(),
                            )
                        } else {
                            None
                        };
                        let coop_groups = chunk
                            .assignments
                            .iter()
                            .filter(|a| a.parts > 1 && a.part == 0)
                            .count();
                        let mut attempt = 0usize;
                        let stats = loop {
                            let result = {
                                let emit_target: &dyn Collector = collector.as_ref();
                                let groups = &chunk.groups;
                                let assignments = &chunk.assignments;
                                let kpt = cfg.reduce_keys_per_thread;
                                let n_items = assignments.len().div_ceil(kpt);
                                let app = &app;
                                // Per-(group, part) partial states for groups
                                // reduced cooperatively.
                                let partials: Vec<Mutex<Vec<Option<Vec<u8>>>>> = groups
                                    .iter()
                                    .map(|_| Mutex::new(Vec::new()))
                                    .collect();
                                for a in assignments {
                                    if a.parts > 1 {
                                        let mut slot = partials[a.group].lock();
                                        if slot.is_empty() {
                                            slot.resize(a.parts, None);
                                        }
                                    }
                                }
                                let partials = &partials;
                                let kernel = KernelFn(move |ctx: &WorkItemCtx| {
                                    let emit = Emit::new(emit_target);
                                    let lo = ctx.global_id() * kpt;
                                    let hi = (lo + kpt).min(assignments.len());
                                    for a in &assignments[lo..hi] {
                                        let group = &groups[a.group];
                                        if a.parts == 1 {
                                            // Fetch the key's scratch state (if
                                            // any earlier chunk left one).
                                            let mut state = scratch
                                                .lock()
                                                .remove(group.key)
                                                .unwrap_or_default();
                                            app.reduce(
                                                group.key,
                                                &group.values,
                                                &mut state,
                                                group.last,
                                                &emit,
                                            );
                                            if !group.last {
                                                scratch.lock().insert(group.key.to_vec(), state);
                                            }
                                        } else {
                                            // Cooperative partial reduction over
                                            // this part's slice of the values;
                                            // merging and the final emit happen
                                            // after the launch.
                                            let n = group.values.len();
                                            let lo_v = a.part * n / a.parts;
                                            let hi_v = (a.part + 1) * n / a.parts;
                                            let mut state = if a.part == 0 {
                                                scratch
                                                    .lock()
                                                    .remove(group.key)
                                                    .unwrap_or_default()
                                            } else {
                                                Vec::new()
                                            };
                                            app.reduce(
                                                group.key,
                                                &group.values[lo_v..hi_v],
                                                &mut state,
                                                false,
                                                &emit,
                                            );
                                            partials[a.group].lock()[a.part] = Some(state);
                                        }
                                    }
                                });
                                let range = NdRange::new(
                                    n_items.max(1),
                                    cfg.work_group.min(n_items.max(1)),
                                )
                                .map_err(EngineError::Device)?;
                                // The whole attempt — injected-fault probe,
                                // kernel launch, cooperative-state merge and
                                // final emits — is one unwind scope, so a
                                // failure anywhere rolls back as a unit.
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if let Some(cx) = chaos {
                                        if cx.plan.reduce_fault_fires(node.0) {
                                            panic!("injected reduce-site fault");
                                        }
                                    }
                                    let stats = device.launch(range, &kernel);
                                    // Merge cooperative partial states and
                                    // finish each parallel group with one
                                    // last=true call.
                                    let emit = Emit::new(emit_target);
                                    for (g, slots) in partials.iter().enumerate() {
                                        let mut slots = slots.lock();
                                        if slots.is_empty() {
                                            continue;
                                        }
                                        let group = &groups[g];
                                        let mut acc = slots[0].take().expect("part 0 state");
                                        for slot in slots.iter_mut().skip(1) {
                                            let other = slot.take().expect("partial state");
                                            let merged = app.merge_states(&mut acc, &other);
                                            debug_assert!(merged, "merge support changed mid-job");
                                        }
                                        if group.last {
                                            app.reduce(group.key, &[], &mut acc, true, &emit);
                                        } else {
                                            scratch.lock().insert(group.key.to_vec(), acc);
                                        }
                                    }
                                    stats
                                }))
                            };
                            match result {
                                Ok(stats) => {
                                    launches.fetch_add(1, Ordering::Relaxed);
                                    parallel_splits.fetch_add(coop_groups, Ordering::Relaxed);
                                    break stats;
                                }
                                Err(_) if attempt < retries => {
                                    // Discard the attempt's partial output,
                                    // restore the scratch states it consumed,
                                    // and re-execute (paper §III-E: "its
                                    // partial output is discarded and its
                                    // input is rescheduled for processing").
                                    attempt += 1;
                                    tasks_retried.fetch_add(1, Ordering::Relaxed);
                                    collector.reset();
                                    let snap = snapshot.as_ref().expect("snapshot taken");
                                    let mut s = scratch.lock();
                                    for (key, state) in snap {
                                        match state {
                                            Some(state) => {
                                                s.insert(key.clone(), state.clone());
                                            }
                                            None => {
                                                s.remove(key.as_slice());
                                            }
                                        }
                                    }
                                }
                                Err(_) => {
                                    return Err(EngineError::TaskFailed(format!(
                                        "reduce kernel for chunk {} failed after {} attempt(s)",
                                        chunk.seq,
                                        attempt + 1
                                    )));
                                }
                            }
                        };
                        let modeled = match cfg.timing {
                            TimingMode::Wall => stats.wall,
                            TimingMode::Modeled => stats.modeled,
                        };
                        timers.add(StageId::Kernel, chunk.seq, stats.wall, modeled);
                        // Kernel done with the chunk: release its token.
                        let _ = in_token_tx.send(());
                        if kernel_tx
                            .send(ReduceOut {
                                seq: chunk.seq,
                                collector,
                            })
                            .is_err()
                        {
                            break; // downstream stage gone
                        }
                    }
                    drop(kernel_tx);
                    Ok(())
                })
            };

            // ---------------- Stage 4: Retrieve (D2H) ----------------
            let retrieve_handle = {
                let device = Arc::clone(&self.device);
                let timers = Arc::clone(&self.timers);
                let timing = cfg.timing;
                scope.spawn(move || -> Result<(), EngineError> {
                    while let Ok(out) = kernel_rx.recv() {
                        if !device.unified_memory() {
                            let t0 = Instant::now();
                            let bytes = out.collector.bytes();
                            let wall = t0.elapsed();
                            let modeled = match timing {
                                TimingMode::Wall => wall,
                                TimingMode::Modeled => {
                                    device.profile().transfer_time(bytes, false)
                                }
                            };
                            timers.add(StageId::Retrieve, out.seq, wall, modeled);
                        }
                        if retrieved_tx.send(out).is_err() {
                            break; // downstream stage gone
                        }
                    }
                    drop(retrieved_tx);
                    Ok(())
                })
            };

            // ---------------- Stage 5: Output ----------------
            let output_handle = {
                let store = Arc::clone(&self.store);
                let timers = Arc::clone(&self.timers);
                let node = self.node;
                let records_out = &records_out;
                scope.spawn(move || -> Result<(), EngineError> {
                    let mut builder = RecordBlockBuilder::new(cfg.output_block_size);
                    let mut last_seq = base_seq;
                    while let Ok(mut out) = retrieved_rx.recv() {
                        let t0 = Instant::now();
                        for_each_record(out.collector.as_ref(), &mut |k, v| {
                            builder.append(k, v);
                            records_out.fetch_add(1, Ordering::Relaxed);
                        });
                        let wall = t0.elapsed();
                        timers.add(StageId::Partition, out.seq, wall, wall);
                        last_seq = out.seq;
                        out.collector.reset();
                        let _ = out_pool_tx.send(out.collector);
                    }
                    // Final write of the partition's output file.
                    let t1 = Instant::now();
                    let sample =
                        store.write_blocks(path, node, builder.finish(), cfg.output_replication)?;
                    let wall = t1.elapsed();
                    let modeled = match cfg.timing {
                        TimingMode::Wall => wall,
                        TimingMode::Modeled => wall + sample.modeled,
                    };
                    timers.add(StageId::Partition, last_seq, wall, modeled);
                    Ok(())
                })
            };

            let final_seq = merge_handle.join().expect("merge-read stage panicked")?;
            stage_handle.join().expect("stage stage panicked")?;
            kernel_handle.join().expect("kernel stage panicked")?;
            retrieve_handle.join().expect("retrieve stage panicked")?;
            output_handle.join().expect("output stage panicked")?;
            *chunk_seq = final_seq.max(base_seq + 1);
            Ok(())
        })?;

        debug_assert!(
            scratch.into_inner().is_empty(),
            "scratch states must all be consumed by their final chunk"
        );
        report.keys += keys_seen.load(Ordering::Relaxed);
        report.launches += launches.load(Ordering::Relaxed);
        report.records_out += records_out.load(Ordering::Relaxed);
        report.parallel_key_splits += parallel_splits.load(Ordering::Relaxed);
        report.tasks_retried += tasks_retried.load(Ordering::Relaxed);
        Ok(())
    }
}
