//! The 5-stage reduce pipeline (paper §III-C), as thin stage definitions
//! on the shared `gw-pipeline` executor.
//!
//! ```text
//! MergeRead → Stage → Kernel → Retrieve → Output
//! ```
//!
//! The first stage "performs one last merge operation and supplies the
//! pipeline with a consistent view of the intermediate data": an
//! **external** k-way loser-tree merge (`gw_intermediate::
//! GroupedCursorMerge`, one comparison per tree level per record) over
//! streaming cursors — one decoded frame per spill file plus the
//! still-cached runs — grouped by key. Peak memory is `k` frames plus
//! one in-flight chunk arena, never the partition size (paper §III-B's
//! larger-than-memory intermediate data; DESIGN.md §3.10). As in the map
//! pipeline, all channel wiring, the §III-D token interlock, fault
//! probing, timers and unwinding live in [`gw_pipeline`]; the Stage and
//! Retrieve stages fuse out of the graph on unified-memory devices.
//!
//! Reduce-side fine-grained parallelism, exactly as the paper describes:
//!
//! * the pipeline "is capable of processing multiple keys concurrently" —
//!   each kernel launch carries up to `reduce_concurrent_keys` keys;
//! * "Glasswing provides the possibility to have each reduce kernel thread
//!   process multiple keys sequentially" (`reduce_keys_per_thread`) to
//!   amortise kernel-invocation overhead (Fig. 5);
//! * "If the number of values to be reduced for one key is too large for
//!   one kernel invocation, some state must be saved across kernel calls.
//!   Glasswing provides scratch buffers for each key to store such state"
//!   — value lists longer than `reduce_max_values_per_chunk` span several
//!   chunks, with a per-key scratch buffer carried between invocations.
//!
//! Jobs without a reduce function (TeraSort) bypass the kernel: the merged,
//! sorted intermediate stream is written directly — "its output is fully
//! processed by the end of the intermediate data shuffle".
//!
//! Every reduce stage runs **single-lane**, deliberately: the reduce
//! kernel carries per-key scratch state across the value chunks of one
//! key, so a key's chunks must arrive FIFO at a single kernel instance —
//! widened lanes would interleave a key's chunk sequence across
//! instances and tear that state. `JobConfig::lane_plan` therefore only
//! addresses the map pipeline (see DESIGN.md §3.9); reduce-side
//! parallelism comes from the per-key/per-chunk knobs above instead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use gw_device::{Device, KernelFn, NdRange, WorkItemCtx};
use gw_intermediate::{CursorMerge, GroupedCursorMerge, IntermediateStore, RunCursor};
use gw_pipeline::{
    run_task_with_retries, token_pool, PipelineBuilder, PipelineKind, PoolGet, PoolPut, Source,
    Stage, StageCtx,
};
use gw_storage::split::{FileStore, RecordBlockBuilder};
use gw_storage::NodeId;
use gw_trace::Tracer;

use crate::api::{Emit, GwApp};
use crate::collect::{for_each_record, BufferPoolCollector, Collector};
use crate::config::{JobConfig, TimingMode};
use crate::coordinator::{Coordinator, NodeChaos, ReduceTaskProbe};
use crate::timers::{StageId, StageTimers};
use crate::EngineError;

/// Saved scratch entries for one chunk's keys (`None` = key had no
/// scratch state), restored when a failed reduce attempt rolls back.
type ScratchSnapshot = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// One key's slice of values within a reduce chunk, borrowed from the
/// chunk's arena for the duration of a kernel launch.
struct Group<'r> {
    key: &'r [u8],
    values: Vec<&'r [u8]>,
    /// Whether this is the key's final value chunk.
    last: bool,
}

/// Arena-relative form of [`Group`]: `(offset, len)` spans into
/// [`ReduceChunk::arena`]. Owning the bytes (instead of borrowing the
/// merged runs) is what lets chunks outlive any in-memory view of the
/// partition — upstream, the merge now streams from disk frame by frame.
struct OwnedGroup {
    key: (u32, u32),
    values: Vec<(u32, u32)>,
    /// Whether this is the key's final value chunk.
    last: bool,
}

/// One work-item assignment: `part` of `parts` cooperating on a group
/// (parts > 1 = the paper's parallel single-key reduction).
#[derive(Debug, Clone, Copy)]
struct Assignment {
    group: usize,
    part: usize,
    parts: usize,
}

/// A batch of up to `reduce_concurrent_keys` groups travelling the graph,
/// annotated with its kernel-output collector once past the Kernel stage.
/// Self-contained: key/value bytes live in the chunk's own arena, so the
/// pipeline holds at most B chunks of intermediate data in memory.
struct ReduceChunk {
    arena: Vec<u8>,
    groups: Vec<OwnedGroup>,
    assignments: Vec<Assignment>,
    bytes: usize,
    collector: Option<Box<dyn Collector>>,
}

impl ReduceChunk {
    /// Borrowed [`Group`] views over the arena for one kernel launch.
    fn views<'a>(arena: &'a [u8], groups: &[OwnedGroup]) -> Vec<Group<'a>> {
        groups
            .iter()
            .map(|g| Group {
                key: &arena[g.key.0 as usize..][..g.key.1 as usize],
                values: g
                    .values
                    .iter()
                    .map(|&(off, len)| &arena[off as usize..][..len as usize])
                    .collect(),
                last: g.last,
            })
            .collect()
    }
}

/// Outcome of a node's reduce phase.
#[derive(Debug, Clone, Default)]
pub struct ReducePhaseReport {
    /// Local partitions reduced.
    pub partitions: usize,
    /// Distinct keys processed.
    pub keys: usize,
    /// Output records written.
    pub records_out: usize,
    /// Kernel launches performed.
    pub launches: usize,
    /// Key-chunks reduced cooperatively by multiple work items (the
    /// paper's parallel single-key reduction).
    pub parallel_key_splits: usize,
    /// Reduce kernel launches that failed and were re-executed within the
    /// `max_task_retries` budget.
    pub tasks_retried: usize,
    /// Output files written (paths).
    pub output_files: Vec<String>,
    /// Wall-clock duration of the phase.
    pub elapsed: std::time::Duration,
}

/// MergeRead stage: pull key-group slices off the grouped external merge
/// and batch them into chunks, copying only the slice's bytes into the
/// chunk's arena. Oversized value lists arrive pre-sliced at
/// `reduce_max_values_per_chunk` from the merge itself, so nothing here
/// ever holds a whole key's value list.
struct ReduceMergeRead<'a> {
    merge: GroupedCursorMerge,
    cfg: &'a JobConfig,
    threads_per_key: usize,
    keys_seen: &'a AtomicUsize,
}

impl Source<ReduceChunk, EngineError> for ReduceMergeRead<'_> {
    fn next_chunk(&mut self, _ctx: &mut StageCtx<'_>) -> Result<Option<ReduceChunk>, EngineError> {
        let mut arena: Vec<u8> = Vec::new();
        let mut groups: Vec<OwnedGroup> = Vec::new();
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut bytes = 0usize;
        loop {
            let fresh = self.merge.at_key_start();
            let Some(slice) = self
                .merge
                .next_slice(self.cfg.reduce_max_values_per_chunk, &mut arena)
                .map_err(EngineError::Io)?
            else {
                break;
            };
            if fresh {
                self.keys_seen.fetch_add(1, Ordering::Relaxed);
            }
            bytes +=
                slice.key.1 as usize + slice.values.iter().map(|&(_, l)| l as usize).sum::<usize>();
            // Split large value chunks over cooperating work items when
            // the app supports it.
            let parts =
                if self.threads_per_key > 1 && slice.values.len() >= 2 * self.threads_per_key {
                    self.threads_per_key
                } else {
                    1
                };
            let g = groups.len();
            for part in 0..parts {
                assignments.push(Assignment {
                    group: g,
                    part,
                    parts,
                });
            }
            let last = slice.last;
            groups.push(OwnedGroup {
                key: slice.key,
                values: slice.values,
                last,
            });
            // A key's scratch state is only consistent across *launches*:
            // a continued (non-final) slice must close this chunk so its
            // successor lands in a later launch (otherwise two work items
            // could race on the key's state). Also close when full.
            if !last || groups.len() >= self.cfg.reduce_concurrent_keys {
                break;
            }
        }
        if groups.is_empty() {
            return Ok(None);
        }
        Ok(Some(ReduceChunk {
            arena,
            groups,
            assignments,
            bytes,
            collector: None,
        }))
    }
}

/// Stage (H2D): charge the modeled transfer of the chunk's key/value
/// bytes to the device. Fused out of the graph on unified memory.
struct ReduceStageH2D {
    device: Arc<Device>,
    timing: TimingMode,
    unified: bool,
}

impl Stage<ReduceChunk, EngineError> for ReduceStageH2D {
    fn run_chunk(
        &mut self,
        chunk: ReduceChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<ReduceChunk>, EngineError> {
        let t0 = Instant::now();
        let wall = t0.elapsed();
        let modeled = match self.timing {
            TimingMode::Wall => wall,
            TimingMode::Modeled => self.device.profile().transfer_time(chunk.bytes, true),
        };
        ctx.add_time(wall, modeled);
        Ok(Some(chunk))
    }

    fn passthrough(&self) -> bool {
        self.unified
    }
}

/// Kernel stage: reduce the chunk's groups as an NDRange over work-item
/// assignments, with per-key scratch state across launches, cooperative
/// parallel single-key reduction, and §III-E task re-execution.
struct ReduceKernel<'a> {
    device: Arc<Device>,
    app: Arc<dyn GwApp>,
    cfg: &'a JobConfig,
    /// Per-key scratch state persisting across kernel invocations
    /// (device-resident in real Glasswing; keyed map here). Keys within a
    /// chunk are distinct and chunks flow FIFO through the single kernel
    /// stage, so per-key access is serialized.
    scratch: &'a Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    collectors: PoolGet<Box<dyn Collector>>,
    launches: &'a AtomicUsize,
    parallel_splits: &'a AtomicUsize,
    tasks_retried: &'a AtomicUsize,
}

impl Stage<ReduceChunk, EngineError> for ReduceKernel<'_> {
    fn run_chunk(
        &mut self,
        mut chunk: ReduceChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<ReduceChunk>, EngineError> {
        let Some(mut collector) = self.collectors.take() else {
            ctx.stop(); // pool closed: the output stage died
            return Ok(None);
        };
        let views = ReduceChunk::views(&chunk.arena, &chunk.groups);
        let retries = self.cfg.max_task_retries;
        // Snapshot the scratch states this chunk can touch, so a failed
        // attempt rolls back and re-executes (paper §III-E, extended to
        // the reduce side).
        let snapshot: Option<ScratchSnapshot> = if retries > 0 {
            let s = self.scratch.lock();
            Some(
                views
                    .iter()
                    .map(|g| (g.key.to_vec(), s.get(g.key).cloned()))
                    .collect(),
            )
        } else {
            None
        };
        let coop_groups = chunk
            .assignments
            .iter()
            .filter(|a| a.parts > 1 && a.part == 0)
            .count();
        let kpt = self.cfg.reduce_keys_per_thread;
        let n_items = chunk.assignments.len().div_ceil(kpt);
        let range = NdRange::new(n_items.max(1), self.cfg.work_group.min(n_items.max(1)))
            .map_err(EngineError::Device)?;
        let groups = &views;
        let assignments = &chunk.assignments;
        let scratch = self.scratch;
        let app = &self.app;
        let device = &self.device;
        let probe: &StageCtx<'_> = &*ctx;
        // The whole attempt — injected-fault probe, kernel launch,
        // cooperative-state merge and final emits — is one unwind scope,
        // so a failure anywhere rolls back as a unit.
        let attempt = run_task_with_retries(
            retries,
            &mut collector,
            |collector| {
                if probe.task_fault_fires() {
                    panic!("injected reduce-site fault");
                }
                let emit_target: &dyn Collector = collector.as_ref();
                // Per-(group, part) partial states for groups reduced
                // cooperatively.
                let partials: Vec<Mutex<Vec<Option<Vec<u8>>>>> =
                    groups.iter().map(|_| Mutex::new(Vec::new())).collect();
                for a in assignments {
                    if a.parts > 1 {
                        let mut slot = partials[a.group].lock();
                        if slot.is_empty() {
                            slot.resize(a.parts, None);
                        }
                    }
                }
                let partials = &partials;
                let kernel = KernelFn(move |wctx: &WorkItemCtx| {
                    let emit = Emit::new(emit_target);
                    let lo = wctx.global_id() * kpt;
                    let hi = (lo + kpt).min(assignments.len());
                    for a in &assignments[lo..hi] {
                        let group = &groups[a.group];
                        if a.parts == 1 {
                            // Fetch the key's scratch state (if any earlier
                            // chunk left one).
                            let mut state = scratch.lock().remove(group.key).unwrap_or_default();
                            app.reduce(group.key, &group.values, &mut state, group.last, &emit);
                            if !group.last {
                                scratch.lock().insert(group.key.to_vec(), state);
                            }
                        } else {
                            // Cooperative partial reduction over this
                            // part's slice of the values; merging and the
                            // final emit happen after the launch.
                            let n = group.values.len();
                            let lo_v = a.part * n / a.parts;
                            let hi_v = (a.part + 1) * n / a.parts;
                            let mut state = if a.part == 0 {
                                scratch.lock().remove(group.key).unwrap_or_default()
                            } else {
                                Vec::new()
                            };
                            app.reduce(
                                group.key,
                                &group.values[lo_v..hi_v],
                                &mut state,
                                false,
                                &emit,
                            );
                            partials[a.group].lock()[a.part] = Some(state);
                        }
                    }
                });
                let stats = device.launch(range, &kernel);
                // Merge cooperative partial states and finish each
                // parallel group with one last=true call.
                let emit = Emit::new(emit_target);
                for (g, slots) in partials.iter().enumerate() {
                    let mut slots = slots.lock();
                    if slots.is_empty() {
                        continue;
                    }
                    let group = &groups[g];
                    let mut acc = slots[0].take().expect("part 0 state");
                    for slot in slots.iter_mut().skip(1) {
                        let other = slot.take().expect("partial state");
                        let merged = app.merge_states(&mut acc, &other);
                        debug_assert!(merged, "merge support changed mid-job");
                    }
                    if group.last {
                        app.reduce(group.key, &[], &mut acc, true, &emit);
                    } else {
                        scratch.lock().insert(group.key.to_vec(), acc);
                    }
                }
                stats
            },
            |collector| {
                // Discard the attempt's partial output, restore the
                // scratch states it consumed, and re-execute (paper
                // §III-E: "its partial output is discarded and its input
                // is rescheduled for processing").
                collector.reset();
                let snap = snapshot.as_ref().expect("snapshot taken");
                let mut s = scratch.lock();
                for (key, state) in snap {
                    match state {
                        Some(state) => {
                            s.insert(key.clone(), state.clone());
                        }
                        None => {
                            s.remove(key.as_slice());
                        }
                    }
                }
            },
        );
        let stats = match attempt {
            Ok((stats, retried)) => {
                self.tasks_retried.fetch_add(retried, Ordering::Relaxed);
                stats
            }
            Err(e) => {
                self.tasks_retried
                    .fetch_add(e.attempts - 1, Ordering::Relaxed);
                return Err(EngineError::TaskFailed(format!(
                    "reduce kernel for chunk {} failed after {} attempt(s)",
                    ctx.seq(),
                    e.attempts
                )));
            }
        };
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.parallel_splits
            .fetch_add(coop_groups, Ordering::Relaxed);
        let modeled = match self.cfg.timing {
            TimingMode::Wall => stats.wall,
            TimingMode::Modeled => stats.modeled,
        };
        ctx.add_time(stats.wall, modeled);
        chunk.collector = Some(collector);
        Ok(Some(chunk))
    }
}

/// Retrieve (D2H): charge the modeled retrieval of the collector's bytes.
/// Fused out of the graph on unified memory.
struct ReduceRetrieve {
    device: Arc<Device>,
    timing: TimingMode,
    unified: bool,
}

impl Stage<ReduceChunk, EngineError> for ReduceRetrieve {
    fn run_chunk(
        &mut self,
        chunk: ReduceChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<ReduceChunk>, EngineError> {
        let t0 = Instant::now();
        let bytes = chunk
            .collector
            .as_ref()
            .expect("kernel output collector")
            .bytes();
        let wall = t0.elapsed();
        let modeled = match self.timing {
            TimingMode::Wall => wall,
            TimingMode::Modeled => self.device.profile().transfer_time(bytes, false),
        };
        ctx.add_time(wall, modeled);
        Ok(Some(chunk))
    }

    fn passthrough(&self) -> bool {
        self.unified
    }
}

/// Output stage (sink): append every emitted record to the partition's
/// block builder, recycling collectors; the output file is written once,
/// in [`Stage::finish`], after the last chunk.
struct ReduceOutput<'a> {
    builder: Option<RecordBlockBuilder>,
    path: &'a str,
    store: Arc<dyn FileStore>,
    node: NodeId,
    cfg: &'a JobConfig,
    records_out: &'a AtomicUsize,
    collectors_back: PoolPut<Box<dyn Collector>>,
}

impl Stage<ReduceChunk, EngineError> for ReduceOutput<'_> {
    fn run_chunk(
        &mut self,
        mut chunk: ReduceChunk,
        _ctx: &mut StageCtx<'_>,
    ) -> Result<Option<ReduceChunk>, EngineError> {
        let mut collector = chunk.collector.take().expect("kernel output collector");
        let records_out = self.records_out;
        let builder = self.builder.as_mut().expect("builder lives until finish");
        for_each_record(collector.as_ref(), &mut |k, v| {
            builder.append(k, v);
            records_out.fetch_add(1, Ordering::Relaxed);
        });
        collector.reset();
        self.collectors_back.put(collector);
        Ok(None)
    }

    fn finish(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), EngineError> {
        // Final write of the partition's output file.
        let builder = self.builder.take().expect("finish runs once");
        let t0 = Instant::now();
        let sample = self.store.write_blocks(
            self.path,
            self.node,
            builder.finish(),
            self.cfg.output_replication,
        )?;
        let wall = t0.elapsed();
        let modeled = match self.cfg.timing {
            TimingMode::Wall => wall,
            TimingMode::Modeled => wall + sample.modeled,
        };
        ctx.add_time(wall, modeled);
        Ok(())
    }
}

/// A shuffle-only partition travelling the 2-stage passthrough pipeline.
struct PassChunk {
    builder: RecordBlockBuilder,
    records: usize,
}

/// Merge-read for shuffle-only jobs: one chunk carrying the fully merged,
/// sorted stream (emitted even when the partition is empty, so the output
/// file always exists). The merge streams record by record off the
/// cursors — only the block builder accumulates, never the input.
struct PassthroughMerge<'a> {
    merge: CursorMerge,
    cfg: &'a JobConfig,
    done: bool,
}

impl Source<PassChunk, EngineError> for PassthroughMerge<'_> {
    fn next_chunk(&mut self, _ctx: &mut StageCtx<'_>) -> Result<Option<PassChunk>, EngineError> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut builder = RecordBlockBuilder::new(self.cfg.output_block_size);
        let mut records = 0usize;
        while let Some((k, v)) = self.merge.peek() {
            builder.append(k, v);
            records += 1;
            self.merge.advance().map_err(EngineError::Io)?;
        }
        Ok(Some(PassChunk { builder, records }))
    }
}

/// Write side of the passthrough pipeline.
struct PassthroughWrite<'a> {
    path: &'a str,
    store: Arc<dyn FileStore>,
    node: NodeId,
    cfg: &'a JobConfig,
    records: &'a AtomicUsize,
}

impl Stage<PassChunk, EngineError> for PassthroughWrite<'_> {
    fn run_chunk(
        &mut self,
        chunk: PassChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<PassChunk>, EngineError> {
        let t0 = Instant::now();
        let sample = self.store.write_blocks(
            self.path,
            self.node,
            chunk.builder.finish(),
            self.cfg.output_replication,
        )?;
        let wall = t0.elapsed();
        let modeled = match self.cfg.timing {
            TimingMode::Wall => wall,
            TimingMode::Modeled => wall + sample.modeled,
        };
        ctx.add_time(wall, modeled);
        self.records.fetch_add(chunk.records, Ordering::Relaxed);
        Ok(None)
    }
}

/// Everything a node needs to run its reduce phase.
pub struct ReducePhase<'a> {
    /// Job configuration.
    pub cfg: &'a JobConfig,
    /// This node.
    pub node: NodeId,
    /// Cluster size.
    pub nodes: u32,
    /// The application.
    pub app: Arc<dyn GwApp>,
    /// The node's compute device.
    pub device: Arc<Device>,
    /// Output storage.
    pub store: Arc<dyn FileStore>,
    /// The node's intermediate store (post merge phase).
    pub intermediate: Arc<IntermediateStore>,
    /// Split/partition coordinator: the reduce phase asks it which global
    /// partitions this node owns (adopted partitions included).
    pub coordinator: Arc<Coordinator>,
    /// Stage timers to fill.
    pub timers: Arc<StageTimers>,
    /// Job-wide event tracer; the executor emits chunk spans and
    /// token-wait regions onto this node's pipeline lanes.
    pub tracer: Arc<Tracer>,
    /// Fault-injection context (supervised jobs only).
    pub chaos: Option<NodeChaos>,
}

impl ReducePhase<'_> {
    /// Run reduction over every global partition this node owns.
    pub fn run(self) -> Result<ReducePhaseReport, EngineError> {
        let start = Instant::now();
        let mut report = ReducePhaseReport::default();
        let mut chunk_seq = 0usize;
        let total_partitions = self.cfg.partitions_per_node * self.nodes;
        for gp in 0..total_partitions {
            if self.coordinator.owner_of(gp, self.nodes) != self.node.0 {
                continue;
            }
            if self.coordinator.aborted() {
                return Err(EngineError::NodeLost("job aborted during reduce".into()));
            }
            let path = format!("{}/part-r-{gp:05}", self.cfg.output);
            // Streaming cursors: spilled runs stay on disk and decode one
            // frame at a time; only still-cached runs are memory-resident.
            let cursors = self.intermediate.partition_cursors(gp)?;
            report.partitions += 1;
            if self.app.has_reduce() {
                self.reduce_partition(cursors, &path, &mut report, &mut chunk_seq)?;
            } else {
                self.passthrough_partition(cursors, &path, &mut report, &mut chunk_seq)?;
            }
            report.output_files.push(path);
        }
        report.elapsed = start.elapsed();
        Ok(report)
    }

    /// Shuffle-only job: write the merged sorted stream directly, as a
    /// 2-stage (merge → write) pipeline.
    fn passthrough_partition(
        &self,
        cursors: Vec<Box<dyn RunCursor>>,
        path: &str,
        report: &mut ReducePhaseReport,
        chunk_seq: &mut usize,
    ) -> Result<(), EngineError> {
        let records = AtomicUsize::new(0);
        PipelineBuilder::new(PipelineKind::Reduce, self.cfg.buffering)
            .source(
                StageId::Input,
                PassthroughMerge {
                    merge: CursorMerge::new(cursors),
                    cfg: self.cfg,
                    done: false,
                },
            )
            .stage(
                StageId::Partition,
                PassthroughWrite {
                    path,
                    store: Arc::clone(&self.store),
                    node: self.node,
                    cfg: self.cfg,
                    records: &records,
                },
            )
            .timers(Arc::clone(&self.timers), *chunk_seq)
            .tracer(Arc::clone(&self.tracer), self.node.0)
            .run()?;
        *chunk_seq += 1;
        let records = records.load(Ordering::Relaxed);
        report.records_out += records;
        report.keys += records;
        Ok(())
    }

    /// Full 5-stage pipelined reduction of one partition.
    fn reduce_partition(
        &self,
        cursors: Vec<Box<dyn RunCursor>>,
        path: &str,
        report: &mut ReducePhaseReport,
        chunk_seq: &mut usize,
    ) -> Result<(), EngineError> {
        let cfg = self.cfg;
        let b = cfg.buffering.depth();
        let base_seq = *chunk_seq;
        let unified = self.device.unified_memory() && !cfg.disable_stage_fusion;
        // Parallel single-key reduction is available only when the app
        // declares an associative state merge (probed with empty states,
        // which the contract requires to act as identities).
        let threads_per_key =
            if cfg.reduce_threads_per_key > 1 && self.app.merge_states(&mut Vec::new(), &[]) {
                cfg.reduce_threads_per_key
            } else {
                1
            };

        // The §III-D output buffer sets: B collectors recycled through the
        // pool (the input group circulates the chunks themselves, so the
        // executor's tokens are its only currency there).
        let (collectors, collectors_back) = token_pool((0..b).map(|_| {
            Box::new(BufferPoolCollector::new(
                cfg.collector_capacity,
                cfg.partition_threads.max(8),
            )) as Box<dyn Collector>
        }));

        let scratch: Mutex<HashMap<Vec<u8>, Vec<u8>>> = Mutex::new(HashMap::new());
        let keys_seen = AtomicUsize::new(0);
        let launches = AtomicUsize::new(0);
        let records_out = AtomicUsize::new(0);
        let parallel_splits = AtomicUsize::new(0);
        let tasks_retried = AtomicUsize::new(0);

        let mut pipeline = PipelineBuilder::new(PipelineKind::Reduce, cfg.buffering)
            .source(
                StageId::Input,
                ReduceMergeRead {
                    merge: GroupedCursorMerge::new(cursors),
                    cfg,
                    threads_per_key,
                    keys_seen: &keys_seen,
                },
            )
            .stage(
                StageId::Stage,
                ReduceStageH2D {
                    device: Arc::clone(&self.device),
                    timing: cfg.timing,
                    unified,
                },
            )
            .stage(
                StageId::Kernel,
                ReduceKernel {
                    device: Arc::clone(&self.device),
                    app: Arc::clone(&self.app),
                    cfg,
                    scratch: &scratch,
                    collectors,
                    launches: &launches,
                    parallel_splits: &parallel_splits,
                    tasks_retried: &tasks_retried,
                },
            )
            .stage(
                StageId::Retrieve,
                ReduceRetrieve {
                    device: Arc::clone(&self.device),
                    timing: cfg.timing,
                    unified,
                },
            )
            .stage(
                StageId::Partition,
                ReduceOutput {
                    builder: Some(RecordBlockBuilder::new(cfg.output_block_size)),
                    path,
                    store: Arc::clone(&self.store),
                    node: self.node,
                    cfg,
                    records_out: &records_out,
                    collectors_back,
                },
            )
            .interlock(StageId::Input, StageId::Kernel)
            .interlock(StageId::Kernel, StageId::Partition)
            .timers(Arc::clone(&self.timers), base_seq)
            .tracer(Arc::clone(&self.tracer), self.node.0);
        if let Some(chaos) = self.chaos.clone() {
            pipeline = pipeline.probe(ReduceTaskProbe::new(chaos, self.node));
        }
        let stats = pipeline.run()?;
        // Empty partitions still advance the sequence (they wrote a file).
        *chunk_seq = (base_seq + stats.chunks).max(base_seq + 1);

        debug_assert!(
            scratch.into_inner().is_empty(),
            "scratch states must all be consumed by their final chunk"
        );
        report.keys += keys_seen.load(Ordering::Relaxed);
        report.launches += launches.load(Ordering::Relaxed);
        report.records_out += records_out.load(Ordering::Relaxed);
        report.parallel_key_splits += parallel_splits.load(Ordering::Relaxed);
        report.tasks_retried += tasks_retried.load(Ordering::Relaxed);
        Ok(())
    }
}
