//! The 5-stage map pipeline (paper §III-A), as thin stage definitions on
//! the shared `gw-pipeline` executor.
//!
//! ```text
//! Input → Stage → Kernel → Retrieve → Partition
//! ```
//!
//! This module contains only the per-stage logic: what it means to read a
//! split, stage it, launch the map kernel, charge the retrieval, and
//! partition the output. Channel wiring, the §III-D buffer-token
//! interlock (input group Input→Kernel, output group Kernel→Partition),
//! crash-site probing, dead/abort checking, timers and error unwinding
//! all live in [`gw_pipeline`]; the fault plane reaches the executor
//! through [`MapPipelineProbe`]. On unified-memory devices the Stage and
//! Retrieve stages report [`gw_pipeline::Stage::passthrough`] and are
//! fused out of the graph at build time ("the input stager is disabled")
//! — the pipeline runs on 3 threads, not 5.
//!
//! The Kernel stage launches the user's map function as an NDRange over
//! the chunk's records — "Glasswing processes each split in parallel,
//! exploiting the abundance of cores in modern compute devices. This
//! design decision places less stress on the file system ... since the
//! pipeline reads one input split at a time."
//!
//! The Partition stage decodes the collector, hash-partitions records,
//! sorts each partition, optionally writes a durability copy, and pushes
//! each partition to its home node (in-memory cache if local, network
//! otherwise), parallelised over `N = partition_threads` lanes (Fig. 4a).
//!
//! ## Fault-tolerant (supervised) mode
//!
//! When the node carries a [`NodeChaos`] handle, the executor probes the
//! fault plan's crash site for this node between chunks and checks the
//! shared dead/abort flags, so an injected crash (or a death declared by
//! the coordinator) unwinds the whole pipeline between chunks — a split
//! is either fully processed (all of its runs recorded in the
//! coordinator's ledger and delivered or retained, then `complete_split`)
//! or not at all. The partitioning stage additionally merges each chunk's
//! lanes into one run per (block, partition): lane runs sort by `(key,
//! value)` bytes and the k-way merge preserves that order, so a
//! re-executed split re-produces byte-identical runs under the same
//! [`RunKey`]s no matter how the collector scattered records over lanes,
//! which is what makes receiver-side de-duplication sound (see
//! `gw_intermediate::radix` for the determinism contract).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gw_device::{Device, DeviceBuffer, KernelFn, NdRange, WorkItemCtx, WorkerPool};
use gw_intermediate::{merge_runs, IntermediateStore, Run, RunPool};
use gw_net::{Endpoint, ShuffleMsg};
use gw_pipeline::{
    run_task_with_retries, token_pool, LaneSource, PipelineBuilder, PipelineKind, PoolGet, PoolPut,
    Stage, StageCtx,
};
use gw_storage::split::FileStore;
use gw_storage::{seqfile::SeqReader, InputSplit, NodeId};
use gw_trace::{CounterId, Lane, LaneId, Realm, Tracer};

use crate::api::{Emit, GwApp};
use crate::collect::{BufferPoolCollector, Collector, CollectorKind, HashTableCollector};
use crate::config::{JobConfig, TimingMode};
use crate::coordinator::{Coordinator, MapPipelineProbe, NodeChaos, RunKey};
use crate::hash::partition_owner;
use crate::timers::{StageId, StageTimers};
use crate::EngineError;

/// Byte offsets of one record inside its block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecordRef {
    koff: u32,
    klen: u32,
    voff: u32,
    vlen: u32,
}

/// The one chunk type carried through the whole graph: a block read from
/// storage, progressively annotated with its staging buffer (discrete
/// memory only) and its kernel-output collector.
struct MapChunk {
    block_idx: usize,
    block: Arc<[u8]>,
    records: Vec<RecordRef>,
    buffer: Option<DeviceBuffer>,
    collector: Option<Box<dyn Collector>>,
}

/// Outcome of a node's map phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapPhaseReport {
    /// Splits processed by this node.
    pub splits: usize,
    /// Input records mapped.
    pub records_in: usize,
    /// Intermediate records produced (post-combining).
    pub records_out: usize,
    /// Of the processed splits, how many were block-local.
    pub local_splits: usize,
    /// Sorted runs pushed to remote nodes.
    pub runs_remote: usize,
    /// Sorted runs added to the local cache.
    pub runs_local: usize,
    /// Map tasks that were discarded and re-executed (paper §III-E).
    pub tasks_retried: usize,
    /// Stage threads the executor spawned: 3 with Stage/Retrieve fused on
    /// unified memory, 5 on discrete-memory devices, plus one per extra
    /// lane of every widened slot (`JobConfig::lane_plan`).
    pub stage_threads: usize,
    /// High-water mark of in-flight chunks across the §III-D token
    /// groups; never exceeds the buffering depth.
    pub max_in_flight: usize,
    /// Wall-clock duration of the whole map phase on this node.
    pub elapsed: Duration,
}

/// Build a collector according to the job configuration.
pub(crate) fn make_collector(cfg: &JobConfig, app: &Arc<dyn GwApp>) -> Box<dyn Collector> {
    match cfg.collector {
        CollectorKind::BufferPool => Box::new(BufferPoolCollector::new(
            cfg.collector_capacity,
            cfg.partition_threads.max(8),
        )),
        CollectorKind::HashTable => {
            Box::new(HashTableCollector::new(cfg.hash_buckets, app.combiner()))
        }
    }
}

/// Parse a raw record block into record references.
fn parse_block(block: &[u8]) -> Result<Vec<RecordRef>, EngineError> {
    let mut records = Vec::new();
    let mut reader = SeqReader::open_raw(block);
    let base = block.as_ptr() as usize;
    while let Some((k, v)) = reader.next()? {
        records.push(RecordRef {
            koff: (k.as_ptr() as usize - base) as u32,
            klen: k.len() as u32,
            voff: (v.as_ptr() as usize - base) as u32,
            vlen: v.len() as u32,
        });
    }
    Ok(records)
}

/// Input stage: claim a split from the coordinator and read+parse it into
/// a chunk, pulling a staging buffer from the recycling pool on
/// discrete-memory devices.
///
/// Runs as a [`LaneSource`]: the *claim* (asking the coordinator for the
/// next split, plus taking a staging buffer, so production stays
/// interlocked behind the §III-D tokens) is serialized across lanes in
/// global sequence order — chunk seq `s` always carries the `s`-th split
/// the coordinator hands out, at every lane count. The expensive
/// *produce* (reading and parsing the split) overlaps across lanes,
/// which is exactly the vertical-scaling win when split reads gate the
/// pipeline. One instance per lane; instances share the coordinator,
/// store, buffer pool and report.
struct MapInput<'a> {
    store: Arc<dyn FileStore>,
    coordinator: Arc<Coordinator>,
    node: NodeId,
    timing: TimingMode,
    /// Supervised mode stays in the claim loop until every split is fully
    /// processed (a dead node's splits may requeue); unsupervised drains
    /// the queue exactly once (the paper's behaviour).
    supervised: bool,
    buffers: Option<PoolGet<DeviceBuffer>>,
    report: &'a Mutexed<MapPhaseReport>,
    /// The split (and staging buffer) claimed for this lane's next
    /// [`LaneSource::produce`].
    pending: Option<(InputSplit, Option<DeviceBuffer>)>,
}

impl LaneSource<MapChunk, EngineError> for MapInput<'_> {
    fn claim(&mut self, ctx: &mut StageCtx<'_>) -> Result<bool, EngineError> {
        let split = loop {
            if ctx.should_stop() {
                return Ok(false);
            }
            match self.coordinator.next_for(self.node) {
                Some(split) => break split,
                None => {
                    if !self.supervised || self.coordinator.map_complete() {
                        return Ok(false);
                    }
                    self.coordinator.scan_liveness();
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        };
        let buffer = match &self.buffers {
            Some(pool) => match pool.take() {
                Some(buf) => Some(buf),
                None => {
                    ctx.stop(); // pool closed: a downstream stage died
                    return Ok(false);
                }
            },
            None => None,
        };
        self.pending = Some((split, buffer));
        Ok(true)
    }

    fn produce(&mut self, ctx: &mut StageCtx<'_>) -> Result<MapChunk, EngineError> {
        let (split, buffer) = self.pending.take().expect("claim() stashed a split");
        let t0 = Instant::now();
        let (block, sample) = self.store.read_split(&split, self.node)?;
        let records = parse_block(&block)?;
        let wall = t0.elapsed();
        let modeled = match self.timing {
            TimingMode::Wall => wall,
            TimingMode::Modeled => wall + sample.modeled,
        };
        ctx.add_time(wall, modeled);
        {
            let mut r = self.report.lock();
            r.splits += 1;
            r.records_in += records.len();
            if split.is_local_to(self.node) {
                r.local_splits += 1;
            }
        }
        Ok(MapChunk {
            block_idx: split.block,
            block,
            records,
            buffer,
            collector: None,
        })
    }

    fn close(&mut self) {
        // On every exit path — a node that leaves the pipeline can never
        // claim splits again, and the coordinator must know that to
        // detect stalls. `exit_map` is idempotent, so every lane calling
        // it is safe.
        self.coordinator.exit_map(self.node);
    }
}

/// Stage (H2D): copy the chunk's block into its device buffer. Fused out
/// of the graph on unified-memory devices.
struct MapStageH2D {
    device: Arc<Device>,
    timing: TimingMode,
    unified: bool,
}

impl Stage<MapChunk, EngineError> for MapStageH2D {
    fn run_chunk(
        &mut self,
        mut chunk: MapChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<MapChunk>, EngineError> {
        let buf = chunk
            .buffer
            .as_mut()
            .expect("discrete-memory chunk carries a staging buffer");
        let t0 = Instant::now();
        let stats = self.device.stage(&chunk.block, buf)?;
        let wall = t0.elapsed();
        let modeled = match self.timing {
            TimingMode::Wall => wall,
            TimingMode::Modeled => stats.modeled,
        };
        ctx.add_time(wall, modeled);
        Ok(Some(chunk))
    }

    fn passthrough(&self) -> bool {
        self.unified
    }
}

/// Kernel stage: launch the user's map function over the chunk's records
/// into a pooled collector, with §III-E task re-execution. Recycles the
/// chunk's staging buffer once the launch is done with it.
struct MapKernel<'a> {
    device: Arc<Device>,
    app: Arc<dyn GwApp>,
    cfg: &'a JobConfig,
    coordinator: Arc<Coordinator>,
    node: NodeId,
    collectors: PoolGet<Box<dyn Collector>>,
    buffers_back: Option<PoolPut<DeviceBuffer>>,
    tasks_retried: &'a AtomicUsize,
    /// This stage's trace lane; carries the superseded-skip counter.
    lane: Lane,
}

impl Stage<MapChunk, EngineError> for MapKernel<'_> {
    fn run_chunk(
        &mut self,
        mut chunk: MapChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<MapChunk>, EngineError> {
        let Some(mut collector) = self.collectors.take() else {
            ctx.stop(); // pool closed: the partition stage died
            return Ok(None);
        };
        if self.coordinator.is_superseded(self.node, chunk.block_idx) {
            // Another attempt already completed this split (it was queued
            // here when a speculation race resolved): skip the launch. The
            // empty collector yields no runs downstream and the stale
            // `complete_split` is a no-op, so the skip cannot change
            // output bytes — it only saves the wasted kernel time.
            self.lane.count(CounterId::SpecSuperseded, 1);
            if let (Some(buf), Some(put)) = (chunk.buffer.take(), &self.buffers_back) {
                put.put(buf);
            }
            chunk.collector = Some(collector);
            return Ok(Some(chunk));
        }
        let n_records = chunk.records.len();
        let bytes: &[u8] = match &chunk.buffer {
            Some(buf) => buf.bytes(),
            None => &chunk.block,
        };
        let work_items = self.cfg.map_work_items.min(n_records.max(1));
        let range = NdRange::new(work_items, self.cfg.work_group.min(work_items))
            .map_err(EngineError::Device)?;
        let records = &chunk.records;
        let app = &self.app;
        let device = &self.device;
        // Task execution with §III-E re-execution: a failed task's partial
        // output is discarded (collector reset) and the chunk re-executed.
        let attempt = run_task_with_retries(
            self.cfg.max_task_retries,
            &mut collector,
            |collector| {
                let emit_target: &dyn Collector = collector.as_ref();
                let kernel = KernelFn(move |wctx: &WorkItemCtx| {
                    let emit = Emit::new(emit_target);
                    let (lo, hi) = wctx.my_items(n_records);
                    for r in &records[lo..hi] {
                        let key = &bytes[r.koff as usize..(r.koff + r.klen) as usize];
                        let value = &bytes[r.voff as usize..(r.voff + r.vlen) as usize];
                        app.map(key, value, &emit);
                    }
                });
                device.launch(range, &kernel)
            },
            |collector| collector.reset(),
        );
        let stats = match attempt {
            Ok((stats, retried)) => {
                self.tasks_retried.fetch_add(retried, Ordering::Relaxed);
                stats
            }
            Err(e) => {
                self.tasks_retried
                    .fetch_add(self.cfg.max_task_retries, Ordering::Relaxed);
                return Err(EngineError::TaskFailed(format!(
                    "map task for chunk {} failed after {} attempt(s)",
                    ctx.seq(),
                    e.attempts
                )));
            }
        };
        let modeled = match self.cfg.timing {
            TimingMode::Wall => stats.wall,
            TimingMode::Modeled => stats.modeled,
        };
        ctx.add_time(stats.wall, modeled);
        // Kernel is done with the input buffer: recycle it.
        if let (Some(buf), Some(put)) = (chunk.buffer.take(), &self.buffers_back) {
            put.put(buf);
        }
        chunk.collector = Some(collector);
        Ok(Some(chunk))
    }
}

/// Retrieve (D2H): charge the modeled PCIe retrieval of the collector's
/// bytes (kernel output already lives in host memory — we execute on host
/// threads). Fused out of the graph on unified-memory devices.
struct MapRetrieve {
    device: Arc<Device>,
    timing: TimingMode,
    unified: bool,
}

impl Stage<MapChunk, EngineError> for MapRetrieve {
    fn run_chunk(
        &mut self,
        chunk: MapChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<MapChunk>, EngineError> {
        let t0 = Instant::now();
        let bytes = chunk
            .collector
            .as_ref()
            .expect("kernel output collector")
            .bytes();
        let wall = t0.elapsed();
        let modeled = match self.timing {
            TimingMode::Wall => wall,
            TimingMode::Modeled => self.device.profile().transfer_time(bytes, false),
        };
        ctx.add_time(wall, modeled);
        Ok(Some(chunk))
    }

    fn passthrough(&self) -> bool {
        self.unified
    }
}

/// Partition stage (sink): decode the collector over `N` lanes, bucket by
/// global partition, sort, optionally write durability copies, and push
/// each run to its home node. Recycles the collector when done.
struct MapPartition<'a> {
    app: Arc<dyn GwApp>,
    endpoint: Arc<Endpoint<ShuffleMsg>>,
    intermediate: Arc<IntermediateStore>,
    coordinator: Arc<Coordinator>,
    cfg: &'a JobConfig,
    node: NodeId,
    nodes: u32,
    total_partitions: u32,
    pool: &'a WorkerPool,
    run_pool: Arc<RunPool>,
    records_out: &'a AtomicUsize,
    runs_remote: &'a AtomicUsize,
    runs_local: &'a AtomicUsize,
    durability_dir: Option<std::path::PathBuf>,
    /// Recovery data plane only (run de-dup and retention); all fault
    /// *probing* goes through the executor's probe.
    chaos: Option<NodeChaos>,
    collectors_back: PoolPut<Box<dyn Collector>>,
    /// This stage's own trace lane (same lane the executor writes this
    /// thread's chunk spans to, so single-writer order is preserved);
    /// carries the supervised merge fan-in counter.
    lane: Lane,
}

impl Stage<MapChunk, EngineError> for MapPartition<'_> {
    fn run_chunk(
        &mut self,
        mut chunk: MapChunk,
        ctx: &mut StageCtx<'_>,
    ) -> Result<Option<MapChunk>, EngineError> {
        let n_lanes = self.cfg.partition_threads;
        let node = self.node;
        let nodes = self.nodes;
        let total_partitions = self.total_partitions;
        let mut collector = chunk.collector.take().expect("kernel output collector");
        // Supervised mode collects every lane's runs here and merges them
        // per partition after the pool drains, so each (block, partition)
        // yields exactly one deterministic run.
        let chunk_runs: Option<Mutexed<Vec<(u32, Run)>>> =
            self.chaos.as_ref().map(|_| Mutexed::new(Vec::new()));
        // Scope the kernel so its borrow of the collector ends before the
        // collector is reset and recycled.
        {
            let collector: &dyn Collector = collector.as_ref();
            let app = &self.app;
            let endpoint = &self.endpoint;
            let intermediate = &self.intermediate;
            let durability_dir = &self.durability_dir;
            let chunk_runs = &chunk_runs;
            let run_pool = &self.run_pool;
            let records_out = self.records_out;
            let runs_remote = self.runs_remote;
            let runs_local = self.runs_local;
            // Durability copies are named by the chunk's pipeline sequence
            // number, which equals arrival order on a single-lane stage
            // (the historical per-instance counter) and stays collision-free
            // when the partition slot runs several lanes.
            let dseq = ctx.seq();
            let kernel = KernelFn(move |ctx: &WorkItemCtx| {
                let lane = ctx.global_id();
                // Decode this lane's share and bucket by global partition.
                // Builders come from the recycling pool: their
                // arenas/indexes carry capacity from previous chunks.
                let mut builders: Vec<_> =
                    (0..total_partitions).map(|_| run_pool.builder()).collect();
                collector.for_each_part(lane, n_lanes, &mut |k, v| {
                    let gp = app.partition(k, total_partitions);
                    builders[gp as usize].push(k, v);
                });
                for (gp, builder) in builders.into_iter().enumerate() {
                    if builder.is_empty() {
                        continue;
                    }
                    let run = builder.build();
                    if let Some(chunk_runs) = chunk_runs {
                        // Supervised: hand the lane's run to the per-chunk
                        // merge below.
                        chunk_runs.lock().push((gp as u32, run));
                        continue;
                    }
                    records_out.fetch_add(run.records(), Ordering::Relaxed);
                    // Durability copy (paper §III-E): map output is stored
                    // persistently on local disk.
                    if let Some(dir) = durability_dir {
                        let path = dir.join(format!("map-{node}-c{dseq}-l{lane}-p{gp}.gw"));
                        std::fs::write(path, run.bytes()).expect("durability write failed");
                    }
                    let owner = partition_owner(gp as u32, nodes);
                    if owner == node.0 {
                        runs_local.fetch_add(1, Ordering::Relaxed);
                        intermediate.add_run(gp as u32, run);
                    } else {
                        runs_remote.fetch_add(1, Ordering::Relaxed);
                        let records = run.records();
                        // Zero-copy ship: the message frames the run's
                        // shared arena slice as-is.
                        let bytes = run.into_shared();
                        let msg = ShuffleMsg::Partition {
                            partition: gp as u32,
                            bytes,
                            records,
                            tag: None,
                        };
                        let wire = msg.wire_bytes();
                        endpoint.send(NodeId(owner), msg, wire);
                    }
                }
            });
            self.pool.run(
                NdRange::new(n_lanes, 1).map_err(EngineError::Device)?,
                &kernel,
            );
        }
        if let (Some(cx), Some(chunk_runs)) = (&self.chaos, chunk_runs) {
            // Merge the chunk's lanes into one sorted run per partition;
            // record in the ledger *before* delivering, so a receiver can
            // never be owed a run the ledger does not know about.
            let mut lane_runs = chunk_runs.into_inner();
            // A single lane run needs no grouping pass at all; only
            // re-order when lanes actually have to be grouped by partition.
            if lane_runs.len() > 1 {
                lane_runs.sort_by_key(|(gp, _)| *gp);
            }
            let mut i = 0;
            while i < lane_runs.len() {
                let gp = lane_runs[i].0;
                let mut j = i + 1;
                while j < lane_runs.len() && lane_runs[j].0 == gp {
                    j += 1;
                }
                // Lane runs are sorted; a loser-tree merge over them
                // yields the same bytes as re-sorting all records (the
                // de-dup determinism contract), without re-pushing or
                // re-encoding a single record. One lane is returned by
                // refcount, zero copies.
                let run = merge_runs(lane_runs[i..j].iter().map(|(_, r)| r));
                // Fan-in pressure for the advisor: how many lane runs this
                // partition's merge consumed. Per-partition fan-in is a
                // function of the split alone, so the delta stays
                // deterministic even though lane completion order races.
                self.lane.count(CounterId::MergeFanIn, (j - i) as u64);
                i = j;
                self.records_out.fetch_add(run.records(), Ordering::Relaxed);
                if let Some(dir) = &self.durability_dir {
                    let path =
                        dir.join(format!("map-{node}-c{dseq}-l0-p{gp}.gw", dseq = ctx.seq()));
                    std::fs::write(path, run.bytes()).expect("durability write failed");
                }
                let key = RunKey {
                    partition: gp,
                    block: chunk.block_idx as u32,
                    lane: 0,
                };
                self.coordinator.record_run(key, node.0);
                let owner = self.coordinator.owner_of(gp, nodes);
                if owner == node.0 {
                    if cx.recovery.admit(key) {
                        self.runs_local.fetch_add(1, Ordering::Relaxed);
                        self.intermediate.add_run(gp, run);
                    }
                } else {
                    self.runs_remote.fetch_add(1, Ordering::Relaxed);
                    let records = run.records();
                    // `into_shared` + clone are refcount bumps: retention
                    // and the wire frame alias one arena slice.
                    let bytes = run.into_shared();
                    cx.recovery.retain(key, bytes.clone(), records);
                    let msg = ShuffleMsg::Partition {
                        partition: gp,
                        bytes,
                        records,
                        tag: Some(key.tag(node.0)),
                    };
                    let wire = msg.wire_bytes();
                    self.endpoint.send_data(NodeId(owner), msg, wire);
                }
            }
            // The split is now fully processed: every run is in the
            // ledger and delivered or retained.
            self.coordinator.complete_split(node, chunk.block_idx);
        }
        collector.reset();
        self.collectors_back.put(collector);
        Ok(None)
    }
}

/// Everything a node needs to run its map phase.
pub struct MapPhase<'a> {
    /// Job configuration.
    pub cfg: &'a JobConfig,
    /// This node.
    pub node: NodeId,
    /// Cluster size.
    pub nodes: u32,
    /// The application.
    pub app: Arc<dyn GwApp>,
    /// The node's compute device.
    pub device: Arc<Device>,
    /// Job input storage.
    pub store: Arc<dyn FileStore>,
    /// Split coordinator (shared with all nodes).
    pub coordinator: Arc<Coordinator>,
    /// The node's intermediate store.
    pub intermediate: Arc<IntermediateStore>,
    /// The node's network endpoint (shared with its shuffle receiver).
    pub endpoint: Arc<Endpoint<ShuffleMsg>>,
    /// Stage timers to fill.
    pub timers: Arc<StageTimers>,
    /// Job-wide event tracer; the executor emits chunk spans and
    /// token-wait regions onto this node's pipeline lanes.
    pub tracer: Arc<Tracer>,
    /// Directory for durability copies of map output (when enabled).
    pub durability_dir: Option<std::path::PathBuf>,
    /// Fault-injection and recovery handle (supervised mode only).
    pub chaos: Option<NodeChaos>,
}

impl MapPhase<'_> {
    /// Run the map phase to completion, then broadcast `MapDone`.
    ///
    /// Supervised mode: an injected (or declared) node death unwinds the
    /// pipeline and returns [`EngineError::NodeLost`]; the `MapDone`
    /// broadcast is suppressed, since the peers' supervised receivers
    /// account for dead nodes through the coordinator instead.
    pub fn run(self) -> Result<MapPhaseReport, EngineError> {
        let start = Instant::now();
        let b = self.cfg.buffering.depth();
        let unified = self.device.unified_memory() && !self.cfg.disable_stage_fusion;
        let total_partitions = self.cfg.partitions_per_node * self.nodes;

        // Partitioning worker pool: N lanes (orchestrator participates).
        let partition_pool = WorkerPool::new(self.cfg.partition_threads.saturating_sub(1));

        // Run-builder recycling: arenas and offset indexes cycle through
        // this pool so steady-state partitioning does no per-record
        // allocation (the first chunk's builders warm it up).
        let run_pool = Arc::new(RunPool::new());

        // The §III-D buffer sets: B device staging buffers (discrete
        // memory only) and B output collectors, recycled through pools
        // sized to the executor's token-group depth.
        let (buffers, buffers_back) = if unified {
            (None, None)
        } else {
            let sets = self
                .device
                .alloc_pool(b, self.cfg.output_block_size.max(1 << 20))?;
            let (get, put) = token_pool(sets);
            (Some(get), Some(put))
        };
        let (collectors, collectors_back) =
            token_pool((0..b).map(|_| make_collector(self.cfg, &self.app)));

        let report = Mutexed::new(MapPhaseReport::default());
        let records_out = AtomicUsize::new(0);
        let runs_remote = AtomicUsize::new(0);
        let runs_local = AtomicUsize::new(0);
        let tasks_retried = AtomicUsize::new(0);

        // Widened stage slots (DESIGN.md §3.9): one stage instance per
        // lane. Instances share pools, the coordinator and the report;
        // each gets its own trace sub-lane so the single-writer invariant
        // holds per executor thread.
        let plan = self.cfg.lane_plan;
        let input_lanes: Vec<Box<dyn LaneSource<MapChunk, EngineError> + '_>> = (0..plan.input)
            .map(|_| {
                Box::new(MapInput {
                    store: Arc::clone(&self.store),
                    coordinator: Arc::clone(&self.coordinator),
                    node: self.node,
                    timing: self.cfg.timing,
                    supervised: self.chaos.is_some(),
                    buffers: buffers.clone(),
                    report: &report,
                    pending: None,
                }) as Box<dyn LaneSource<MapChunk, EngineError> + '_>
            })
            .collect();
        let kernel_lanes: Vec<Box<dyn Stage<MapChunk, EngineError> + '_>> = (0..plan.kernel)
            .map(|lane| {
                Box::new(MapKernel {
                    device: Arc::clone(&self.device),
                    app: Arc::clone(&self.app),
                    cfg: self.cfg,
                    coordinator: Arc::clone(&self.coordinator),
                    node: self.node,
                    collectors: collectors.clone(),
                    buffers_back: buffers_back.clone(),
                    tasks_retried: &tasks_retried,
                    lane: self.tracer.lane(LaneId {
                        job: 0,
                        node: self.node.0,
                        realm: Realm::Pipeline {
                            kind: PipelineKind::Map,
                            stage: StageId::Kernel,
                            lane: lane as u32,
                        },
                    }),
                }) as Box<dyn Stage<MapChunk, EngineError> + '_>
            })
            .collect();
        let partition_lanes: Vec<Box<dyn Stage<MapChunk, EngineError> + '_>> = (0..plan.partition)
            .map(|lane| {
                Box::new(MapPartition {
                    app: Arc::clone(&self.app),
                    endpoint: Arc::clone(&self.endpoint),
                    intermediate: Arc::clone(&self.intermediate),
                    coordinator: Arc::clone(&self.coordinator),
                    cfg: self.cfg,
                    node: self.node,
                    nodes: self.nodes,
                    total_partitions,
                    pool: &partition_pool,
                    run_pool: Arc::clone(&run_pool),
                    records_out: &records_out,
                    runs_remote: &runs_remote,
                    runs_local: &runs_local,
                    durability_dir: self.durability_dir.clone(),
                    chaos: self.chaos.clone(),
                    collectors_back: collectors_back.clone(),
                    lane: self.tracer.lane(LaneId {
                        job: 0,
                        node: self.node.0,
                        realm: Realm::Pipeline {
                            kind: PipelineKind::Map,
                            stage: StageId::Partition,
                            lane: lane as u32,
                        },
                    }),
                }) as Box<dyn Stage<MapChunk, EngineError> + '_>
            })
            .collect();
        // The lane instances hold the only live pool handles from here on:
        // a pool must close the moment its last holder dies, so a stage
        // blocked in `take()` wakes up and unwinds when its peer stage is
        // gone. Keeping the originals alive would mask that signal.
        drop(buffers);
        drop(buffers_back);
        drop(collectors);
        drop(collectors_back);

        let mut pipeline = PipelineBuilder::new(PipelineKind::Map, self.cfg.buffering)
            .source_lanes(StageId::Input, input_lanes)
            .stage(
                StageId::Stage,
                MapStageH2D {
                    device: Arc::clone(&self.device),
                    timing: self.cfg.timing,
                    unified,
                },
            )
            .stage_lanes(StageId::Kernel, kernel_lanes)
            .stage(
                StageId::Retrieve,
                MapRetrieve {
                    device: Arc::clone(&self.device),
                    timing: self.cfg.timing,
                    unified,
                },
            )
            .stage_lanes(StageId::Partition, partition_lanes)
            .interlock(StageId::Input, StageId::Kernel)
            .interlock(StageId::Kernel, StageId::Partition)
            .timers(Arc::clone(&self.timers), 0)
            .tracer(Arc::clone(&self.tracer), self.node.0);
        if let Some(chaos) = self.chaos.clone() {
            pipeline = pipeline.probe(MapPipelineProbe::new(
                chaos,
                Arc::clone(&self.coordinator),
                self.node,
            ));
        }
        let stats = pipeline.run();

        // Arena-reuse pressure for the advisor, as aggregate counters on
        // the job lane: per-acquire events would be interleaving-sensitive,
        // but the totals are a function of `(seed, JobConfig)` alone (the
        // partition stage builds and recycles builders on one thread in
        // chunk order, at every buffering level).
        let job_lane = self.tracer.lane(LaneId {
            job: 0,
            node: self.node.0,
            realm: Realm::Job,
        });
        let acquired = run_pool.acquired() as u64;
        let reused = run_pool.reused() as u64;
        job_lane.count(CounterId::RunPoolHit, reused);
        job_lane.count(CounterId::RunPoolMiss, acquired.saturating_sub(reused));

        let crashed = self.chaos.as_ref().is_some_and(|cx| cx.is_dead());
        if !crashed {
            // Broadcast end-of-map to every peer — even on failure, so a
            // failed node cannot hang the rest of the cluster in the merge
            // phase. A *crashed* node stays silent: its peers account for
            // it through the coordinator's dead set instead.
            for peer in 0..self.nodes {
                if peer != self.node.0 {
                    self.endpoint.send(NodeId(peer), ShuffleMsg::MapDone, 8);
                }
            }
        }
        let stats = stats?;
        if crashed {
            return Err(EngineError::NodeLost(format!(
                "node {} crashed during its map phase",
                self.node
            )));
        }

        let mut r = report.into_inner();
        r.records_out = records_out.load(Ordering::Relaxed);
        r.runs_remote = runs_remote.load(Ordering::Relaxed);
        r.runs_local = runs_local.load(Ordering::Relaxed);
        r.tasks_retried = tasks_retried.load(Ordering::Relaxed);
        r.stage_threads = stats.stage_threads;
        r.max_in_flight = stats.max_in_flight;
        r.elapsed = start.elapsed();
        Ok(r)
    }
}

/// Tiny Mutex wrapper so the closure-heavy code above reads cleanly.
pub(crate) struct Mutexed<T>(parking_lot::Mutex<T>);

impl<T> Mutexed<T> {
    pub(crate) fn new(v: T) -> Self {
        Mutexed(parking_lot::Mutex::new(v))
    }
    pub(crate) fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
        self.0.lock()
    }
    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}
