//! The 5-stage map pipeline (paper §III-A).
//!
//! ```text
//! Input → Stage → Kernel → Retrieve → Partition
//! ```
//!
//! Each stage runs on its own thread; chunks flow through bounded channels.
//! Buffer recycling implements the interlock of §III-D: `B` input-buffer
//! tokens circulate Input → Stage → Kernel → Input, and `B` output
//! collectors circulate Kernel → Retrieve → Partition → Kernel, where `B`
//! is the buffering level. For unified-memory devices the Stage and
//! Retrieve stages are pass-throughs ("the input stager is disabled").
//!
//! The Kernel stage launches the user's map function as an NDRange over
//! the chunk's records — "Glasswing processes each split in parallel,
//! exploiting the abundance of cores in modern compute devices. This
//! design decision places less stress on the file system ... since the
//! pipeline reads one input split at a time."
//!
//! The Partition stage decodes the collector, hash-partitions records,
//! sorts each partition, optionally writes a durability copy, and pushes
//! each partition to its home node (in-memory cache if local, network
//! otherwise), parallelised over `N = partition_threads` lanes (Fig. 4a).
//!
//! ## Fault-tolerant (supervised) mode
//!
//! When the node carries a [`NodeChaos`] handle, every stage loop probes
//! the fault plan's crash site for this node and checks the shared
//! dead/abort flags, so an injected crash (or a death declared by the
//! coordinator) unwinds the whole pipeline between chunks — a split is
//! either fully processed (all of its runs recorded in the coordinator's
//! ledger and delivered or retained, then `complete_split`) or not at all.
//! The partitioning stage additionally merges each chunk's lanes into one
//! run per (block, partition): lane runs sort by `(key, value)` bytes and
//! the k-way merge preserves that order, so a re-executed split
//! re-produces byte-identical runs under the same [`RunKey`]s no matter
//! how the collector scattered records over lanes, which is what makes
//! receiver-side de-duplication sound (see `gw_intermediate::radix` for
//! the determinism contract).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::bounded;

use gw_chaos::CrashSite;
use gw_device::{Device, DeviceBuffer, KernelFn, NdRange, WorkItemCtx, WorkerPool};
use gw_intermediate::{merge_runs, IntermediateStore, Run, RunPool};
use gw_net::{Endpoint, ShuffleMsg};
use gw_storage::split::FileStore;
use gw_storage::{seqfile::SeqReader, NodeId};

use crate::api::{Emit, GwApp};
use crate::collect::{BufferPoolCollector, Collector, CollectorKind, HashTableCollector};
use crate::config::{JobConfig, TimingMode};
use crate::coordinator::{Coordinator, NodeChaos, RunKey};
use crate::hash::partition_owner;
use crate::timers::{StageId, StageTimers};
use crate::EngineError;

/// Byte offsets of one record inside its block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecordRef {
    koff: u32,
    klen: u32,
    voff: u32,
    vlen: u32,
}

/// A chunk read from storage, with its recycled input-buffer token.
struct InputChunk {
    seq: usize,
    block_idx: usize,
    block: Arc<[u8]>,
    records: Vec<RecordRef>,
    token: InputToken,
}

/// The recycled input-buffer token: carries the device buffer for
/// discrete-memory devices.
struct InputToken {
    device_buf: Option<DeviceBuffer>,
}

/// A chunk staged onto the compute device.
struct StagedChunk {
    seq: usize,
    block_idx: usize,
    block: Arc<[u8]>,
    records: Vec<RecordRef>,
    token: InputToken,
}

/// Kernel output travelling to Retrieve/Partition with its collector.
struct KernelOut {
    seq: usize,
    block_idx: usize,
    collector: Box<dyn Collector>,
}

/// Outcome of a node's map phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapPhaseReport {
    /// Splits processed by this node.
    pub splits: usize,
    /// Input records mapped.
    pub records_in: usize,
    /// Intermediate records produced (post-combining).
    pub records_out: usize,
    /// Of the processed splits, how many were block-local.
    pub local_splits: usize,
    /// Sorted runs pushed to remote nodes.
    pub runs_remote: usize,
    /// Sorted runs added to the local cache.
    pub runs_local: usize,
    /// Map tasks that were discarded and re-executed (paper §III-E).
    pub tasks_retried: usize,
    /// Wall-clock duration of the whole map phase on this node.
    pub elapsed: Duration,
}

/// Build a collector according to the job configuration.
pub(crate) fn make_collector(cfg: &JobConfig, app: &Arc<dyn GwApp>) -> Box<dyn Collector> {
    match cfg.collector {
        CollectorKind::BufferPool => Box::new(BufferPoolCollector::new(
            cfg.collector_capacity,
            cfg.partition_threads.max(8),
        )),
        CollectorKind::HashTable => {
            Box::new(HashTableCollector::new(cfg.hash_buckets, app.combiner()))
        }
    }
}

/// Parse a raw record block into record references.
fn parse_block(block: &[u8]) -> Result<Vec<RecordRef>, EngineError> {
    let mut records = Vec::new();
    let mut reader = SeqReader::open_raw(block);
    let base = block.as_ptr() as usize;
    while let Some((k, v)) = reader.next()? {
        records.push(RecordRef {
            koff: (k.as_ptr() as usize - base) as u32,
            klen: k.len() as u32,
            voff: (v.as_ptr() as usize - base) as u32,
            vlen: v.len() as u32,
        });
    }
    Ok(records)
}

/// Everything a node needs to run its map phase.
pub struct MapPhase<'a> {
    /// Job configuration.
    pub cfg: &'a JobConfig,
    /// This node.
    pub node: NodeId,
    /// Cluster size.
    pub nodes: u32,
    /// The application.
    pub app: Arc<dyn GwApp>,
    /// The node's compute device.
    pub device: Arc<Device>,
    /// Job input storage.
    pub store: Arc<dyn FileStore>,
    /// Split coordinator (shared with all nodes).
    pub coordinator: Arc<Coordinator>,
    /// The node's intermediate store.
    pub intermediate: Arc<IntermediateStore>,
    /// The node's network endpoint (shared with its shuffle receiver).
    pub endpoint: Arc<Endpoint<ShuffleMsg>>,
    /// Stage timers to fill.
    pub timers: Arc<StageTimers>,
    /// Directory for durability copies of map output (when enabled).
    pub durability_dir: Option<std::path::PathBuf>,
    /// Fault-injection and recovery handle (supervised mode only).
    pub chaos: Option<NodeChaos>,
}

impl MapPhase<'_> {
    /// Run the map phase to completion, then broadcast `MapDone`.
    ///
    /// Supervised mode: an injected (or declared) node death unwinds the
    /// pipeline and returns [`EngineError::NodeLost`]; the `MapDone`
    /// broadcast is suppressed, since the peers' supervised receivers
    /// account for dead nodes through the coordinator instead.
    pub fn run(self) -> Result<MapPhaseReport, EngineError> {
        let start = Instant::now();
        let b = self.cfg.buffering.depth();
        let unified = self.device.unified_memory();
        let total_partitions = self.cfg.partitions_per_node * self.nodes;

        // Partitioning worker pool: N lanes (orchestrator participates).
        let partition_pool = WorkerPool::new(self.cfg.partition_threads.saturating_sub(1));

        // Run-builder recycling: arenas and offset indexes cycle through
        // this pool so steady-state partitioning does no per-record
        // allocation (the first chunk's builders warm it up).
        let run_pool = Arc::new(RunPool::new());

        // Buffer pools (the §III-D interlocks).
        let (in_token_tx, in_token_rx) = bounded::<InputToken>(b);
        for _ in 0..b {
            let device_buf = if unified {
                None
            } else {
                // One device buffer per input buffer set, sized to a block.
                Some(self.device.alloc(self.cfg.output_block_size.max(1 << 20))?)
            };
            in_token_tx
                .send(InputToken { device_buf })
                .expect("prime input tokens");
        }
        let (out_pool_tx, out_pool_rx) = bounded::<Box<dyn Collector>>(b);
        for _ in 0..b {
            out_pool_tx
                .send(make_collector(self.cfg, &self.app))
                .expect("prime collectors");
        }

        // Inter-stage queues (rendezvous-ish; tokens bound the in-flight
        // chunks, queue capacity only smooths handoff).
        let (input_tx, input_rx) = bounded::<InputChunk>(1);
        let (staged_tx, staged_rx) = bounded::<StagedChunk>(1);
        let (kernel_tx, kernel_rx) = bounded::<KernelOut>(1);
        let (retrieved_tx, retrieved_rx) = bounded::<KernelOut>(1);

        let report = Mutexed::new(MapPhaseReport::default());
        let records_out = AtomicUsize::new(0);
        let runs_remote = AtomicUsize::new(0);
        let runs_local = AtomicUsize::new(0);
        let tasks_retried = AtomicUsize::new(0);

        let scope_result = std::thread::scope(|scope| -> Result<(), EngineError> {
            // ---------------- Stage 1: Input ----------------
            let input_handle = {
                let store = Arc::clone(&self.store);
                let coordinator = Arc::clone(&self.coordinator);
                let timers = Arc::clone(&self.timers);
                let node = self.node;
                let timing = self.cfg.timing;
                let report = &report;
                let chaos = self.chaos.clone();
                scope.spawn(move || -> Result<(), EngineError> {
                    // Inner closure so every exit path — including errors —
                    // falls through to `exit_map` below (a node that leaves
                    // this loop can never claim splits again, and the
                    // coordinator must know that to detect stalls).
                    let result = (|| -> Result<(), EngineError> {
                    let mut seq = 0usize;
                    loop {
                        if let Some(cx) = &chaos {
                            if cx.is_dead() || coordinator.is_dead(node) || coordinator.aborted()
                            {
                                cx.kill();
                                break;
                            }
                        }
                        let Some(split) = coordinator.next_for(node) else {
                            if chaos.is_none() {
                                break; // paper behaviour: the queue is drained once
                            }
                            // Supervised: a dead node's splits may requeue,
                            // so stay in the loop until every split is
                            // fully processed.
                            if coordinator.map_complete() {
                                break;
                            }
                            coordinator.scan_liveness();
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        };
                        if let Some(cx) = &chaos {
                            // Crash site Read: dies holding the fresh claim
                            // (the survivors requeue it via liveness).
                            if cx.plan.crash_fires(node.0, CrashSite::Read) {
                                cx.kill();
                                break;
                            }
                        }
                        // Wait for a free input buffer (interlock). The
                        // pool closes if a downstream stage failed.
                        let Ok(token) = in_token_rx.recv() else { break };
                        let t0 = Instant::now();
                        let (block, sample) = store.read_split(&split, node)?;
                        let records = parse_block(&block)?;
                        let wall = t0.elapsed();
                        let modeled = match timing {
                            TimingMode::Wall => wall,
                            TimingMode::Modeled => wall + sample.modeled,
                        };
                        timers.add(StageId::Input, seq, wall, modeled);
                        {
                            let mut r = report.lock();
                            r.splits += 1;
                            r.records_in += records.len();
                            if split.is_local_to(node) {
                                r.local_splits += 1;
                            }
                        }
                        if input_tx
                            .send(InputChunk {
                                seq,
                                block_idx: split.block,
                                block,
                                records,
                                token,
                            })
                            .is_err()
                        {
                            break; // downstream stage gone
                        }
                        seq += 1;
                    }
                    Ok(())
                    })();
                    if result.is_err() {
                        if let Some(cx) = &chaos {
                            cx.kill();
                        }
                    }
                    coordinator.exit_map(node);
                    drop(input_tx);
                    result
                })
            };

            // ---------------- Stage 2: Stage (H2D) ----------------
            let stage_handle = {
                let device = Arc::clone(&self.device);
                let timers = Arc::clone(&self.timers);
                let timing = self.cfg.timing;
                let node = self.node;
                let chaos = self.chaos.clone();
                scope.spawn(move || -> Result<(), EngineError> {
                    let result = (|| -> Result<(), EngineError> {
                    while let Ok(mut chunk) = input_rx.recv() {
                        if let Some(cx) = &chaos {
                            if cx.is_dead() {
                                break;
                            }
                            if cx.plan.crash_fires(node.0, CrashSite::Stage) {
                                cx.kill();
                                break;
                            }
                        }
                        if let Some(buf) = chunk.token.device_buf.as_mut() {
                            let t0 = Instant::now();
                            let stats = device.stage(&chunk.block, buf)?;
                            let wall = t0.elapsed();
                            let modeled = match timing {
                                TimingMode::Wall => wall,
                                TimingMode::Modeled => stats.modeled,
                            };
                            timers.add(StageId::Stage, chunk.seq, wall, modeled);
                        }
                        if staged_tx
                            .send(StagedChunk {
                                seq: chunk.seq,
                                block_idx: chunk.block_idx,
                                block: chunk.block,
                                records: chunk.records,
                                token: chunk.token,
                            })
                            .is_err()
                        {
                            break; // downstream stage gone
                        }
                    }
                    Ok(())
                    })();
                    if result.is_err() {
                        if let Some(cx) = &chaos {
                            cx.kill();
                        }
                    }
                    drop(staged_tx);
                    result
                })
            };

            // ---------------- Stage 3: Kernel ----------------
            let kernel_handle = {
                let device = Arc::clone(&self.device);
                let app = Arc::clone(&self.app);
                let timers = Arc::clone(&self.timers);
                let cfg = self.cfg;
                let node = self.node;
                let chaos = self.chaos.clone();
                let tasks_retried = &tasks_retried;
                scope.spawn(move || -> Result<(), EngineError> {
                    let result = (|| -> Result<(), EngineError> {
                    while let Ok(chunk) = staged_rx.recv() {
                        if let Some(cx) = &chaos {
                            if cx.is_dead() {
                                break;
                            }
                            if cx.plan.crash_fires(node.0, CrashSite::Kernel) {
                                cx.kill();
                                break;
                            }
                        }
                        // Wait for a free output buffer (interlock).
                        let Ok(mut collector) = out_pool_rx.recv() else {
                            break;
                        };
                        let n_records = chunk.records.len();
                        let bytes: &[u8] = match &chunk.token.device_buf {
                            Some(buf) => buf.bytes(),
                            None => &chunk.block,
                        };
                        let work_items = cfg.map_work_items.min(n_records.max(1));
                        let range = NdRange::new(work_items, cfg.work_group.min(work_items))
                            .map_err(EngineError::Device)?;
                        // Task execution with §III-E re-execution: a failed
                        // task's partial output is discarded (collector
                        // reset) and the chunk is re-executed.
                        let mut attempt = 0usize;
                        let stats = loop {
                            let records = &chunk.records;
                            let emit_target: &dyn Collector = collector.as_ref();
                            let app = &app;
                            let kernel = KernelFn(move |ctx: &WorkItemCtx| {
                                let emit = Emit::new(emit_target);
                                let (lo, hi) = ctx.my_items(n_records);
                                for r in &records[lo..hi] {
                                    let key =
                                        &bytes[r.koff as usize..(r.koff + r.klen) as usize];
                                    let value =
                                        &bytes[r.voff as usize..(r.voff + r.vlen) as usize];
                                    app.map(key, value, &emit);
                                }
                            });
                            let launched = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| device.launch(range, &kernel)),
                            );
                            match launched {
                                Ok(stats) => break stats,
                                Err(_) if attempt < cfg.max_task_retries => {
                                    attempt += 1;
                                    tasks_retried.fetch_add(1, Ordering::Relaxed);
                                    collector.reset();
                                }
                                Err(_) => {
                                    return Err(EngineError::TaskFailed(format!(
                                        "map task for chunk {} failed after {} attempt(s)",
                                        chunk.seq,
                                        attempt + 1
                                    )));
                                }
                            }
                        };
                        let modeled = match cfg.timing {
                            TimingMode::Wall => stats.wall,
                            TimingMode::Modeled => stats.modeled,
                        };
                        timers.add(StageId::Kernel, chunk.seq, stats.wall, modeled);
                        // Kernel is done with the input buffer: recycle it.
                        let _ = in_token_tx.send(chunk.token);
                        if kernel_tx
                            .send(KernelOut {
                                seq: chunk.seq,
                                block_idx: chunk.block_idx,
                                collector,
                            })
                            .is_err()
                        {
                            break; // downstream stage gone
                        }
                    }
                    Ok(())
                    })();
                    if result.is_err() {
                        if let Some(cx) = &chaos {
                            cx.kill();
                        }
                    }
                    drop(kernel_tx);
                    result
                })
            };

            // ---------------- Stage 4: Retrieve (D2H) ----------------
            let retrieve_handle = {
                let device = Arc::clone(&self.device);
                let timers = Arc::clone(&self.timers);
                let timing = self.cfg.timing;
                let node = self.node;
                let chaos = self.chaos.clone();
                scope.spawn(move || -> Result<(), EngineError> {
                    while let Ok(out) = kernel_rx.recv() {
                        if let Some(cx) = &chaos {
                            if cx.is_dead() {
                                break;
                            }
                            if cx.plan.crash_fires(node.0, CrashSite::Retrieve) {
                                cx.kill();
                                break;
                            }
                        }
                        if !device.unified_memory() {
                            // Kernel output lives in host memory already (we
                            // execute on host threads); charge the modeled
                            // PCIe retrieval of the collector's bytes.
                            let t0 = Instant::now();
                            let bytes = out.collector.bytes();
                            let wall = t0.elapsed();
                            let modeled = match timing {
                                TimingMode::Wall => wall,
                                TimingMode::Modeled => {
                                    device.profile().transfer_time(bytes, false)
                                }
                            };
                            timers.add(StageId::Retrieve, out.seq, wall, modeled);
                        }
                        if retrieved_tx.send(out).is_err() {
                            break; // downstream stage gone
                        }
                    }
                    drop(retrieved_tx);
                    Ok(())
                })
            };

            // ---------------- Stage 5: Partition ----------------
            let partition_handle = {
                let app = Arc::clone(&self.app);
                let endpoint = Arc::clone(&self.endpoint);
                let intermediate = Arc::clone(&self.intermediate);
                let coordinator = Arc::clone(&self.coordinator);
                let timers = Arc::clone(&self.timers);
                let cfg = self.cfg;
                let node = self.node;
                let nodes = self.nodes;
                let pool = &partition_pool;
                let run_pool = Arc::clone(&run_pool);
                let records_out = &records_out;
                let runs_remote = &runs_remote;
                let runs_local = &runs_local;
                let durability_dir = self.durability_dir.clone();
                let chaos = self.chaos.clone();
                scope.spawn(move || -> Result<(), EngineError> {
                    let result = (|| -> Result<(), EngineError> {
                    let n_lanes = cfg.partition_threads;
                    let mut durability_seq = 0usize;
                    while let Ok(mut out) = retrieved_rx.recv() {
                        if let Some(cx) = &chaos {
                            if cx.is_dead() {
                                break;
                            }
                            if cx.plan.crash_fires(node.0, CrashSite::Shuffle) {
                                cx.kill();
                                break;
                            }
                        }
                        let t0 = Instant::now();
                        // Supervised mode collects every lane's runs here
                        // and merges them per partition after the pool
                        // drains, so each (block, partition) yields exactly
                        // one deterministic run.
                        let chunk_runs: Option<Mutexed<Vec<(u32, Run)>>> =
                            chaos.as_ref().map(|_| Mutexed::new(Vec::new()));
                        // Scope the kernel so its borrow of the collector
                        // ends before the collector is reset and recycled.
                        {
                        let collector: &dyn Collector = out.collector.as_ref();
                        let app = &app;
                        let endpoint = &endpoint;
                        let intermediate = &intermediate;
                        let durability_dir = &durability_dir;
                        let chunk_runs = &chunk_runs;
                        let run_pool = &run_pool;
                        let dseq = durability_seq;
                        let kernel = KernelFn(move |ctx: &WorkItemCtx| {
                            let lane = ctx.global_id();
                            // Decode this lane's share and bucket by global
                            // partition. Builders come from the recycling
                            // pool: their arenas/indexes carry capacity from
                            // previous chunks.
                            let mut builders: Vec<_> =
                                (0..total_partitions).map(|_| run_pool.builder()).collect();
                            collector.for_each_part(lane, n_lanes, &mut |k, v| {
                                let gp = app.partition(k, total_partitions);
                                builders[gp as usize].push(k, v);
                            });
                            for (gp, builder) in builders.into_iter().enumerate() {
                                if builder.is_empty() {
                                    continue;
                                }
                                let run = builder.build();
                                if let Some(chunk_runs) = chunk_runs {
                                    // Supervised: hand the lane's run to the
                                    // per-chunk merge below.
                                    chunk_runs.lock().push((gp as u32, run));
                                    continue;
                                }
                                records_out.fetch_add(run.records(), Ordering::Relaxed);
                                // Durability copy (paper §III-E): map output
                                // is stored persistently on local disk.
                                if let Some(dir) = durability_dir {
                                    let path = dir.join(format!(
                                        "map-{node}-c{dseq}-l{lane}-p{gp}.gw"
                                    ));
                                    std::fs::write(path, run.bytes())
                                        .expect("durability write failed");
                                }
                                let owner = partition_owner(gp as u32, nodes);
                                if owner == node.0 {
                                    runs_local.fetch_add(1, Ordering::Relaxed);
                                    intermediate.add_run(gp as u32, run);
                                } else {
                                    runs_remote.fetch_add(1, Ordering::Relaxed);
                                    let records = run.records();
                                    // Zero-copy ship: the message frames the
                                    // run's shared arena slice as-is.
                                    let bytes = run.into_shared();
                                    let msg = ShuffleMsg::Partition {
                                        partition: gp as u32,
                                        bytes,
                                        records,
                                        tag: None,
                                    };
                                    let wire = msg.wire_bytes();
                                    endpoint.send(NodeId(owner), msg, wire);
                                }
                            }
                        });
                        pool.run(
                            NdRange::new(n_lanes, 1).map_err(EngineError::Device)?,
                            &kernel,
                        );
                        }
                        if let (Some(cx), Some(chunk_runs)) = (&chaos, chunk_runs) {
                            // Merge the chunk's lanes into one sorted run
                            // per partition; record in the ledger *before*
                            // delivering, so a receiver can never be owed a
                            // run the ledger does not know about.
                            let mut lane_runs = chunk_runs.into_inner();
                            // A single lane run needs no grouping pass at
                            // all; only re-order when lanes actually have to
                            // be grouped by partition.
                            if lane_runs.len() > 1 {
                                lane_runs.sort_by_key(|(gp, _)| *gp);
                            }
                            let mut i = 0;
                            while i < lane_runs.len() {
                                let gp = lane_runs[i].0;
                                let mut j = i + 1;
                                while j < lane_runs.len() && lane_runs[j].0 == gp {
                                    j += 1;
                                }
                                // Lane runs are sorted; a loser-tree merge
                                // over them yields the same bytes as
                                // re-sorting all records (the de-dup
                                // determinism contract), without re-pushing
                                // or re-encoding a single record. One lane
                                // is returned by refcount, zero copies.
                                let run = merge_runs(lane_runs[i..j].iter().map(|(_, r)| r));
                                i = j;
                                records_out.fetch_add(run.records(), Ordering::Relaxed);
                                if let Some(dir) = &durability_dir {
                                    let path = dir.join(format!(
                                        "map-{node}-c{dseq}-l0-p{gp}.gw",
                                        dseq = durability_seq
                                    ));
                                    std::fs::write(path, run.bytes())
                                        .expect("durability write failed");
                                }
                                let key = RunKey {
                                    partition: gp,
                                    block: out.block_idx as u32,
                                    lane: 0,
                                };
                                coordinator.record_run(key, node.0);
                                let owner = coordinator.owner_of(gp, nodes);
                                if owner == node.0 {
                                    if cx.recovery.admit(key) {
                                        runs_local.fetch_add(1, Ordering::Relaxed);
                                        intermediate.add_run(gp, run);
                                    }
                                } else {
                                    runs_remote.fetch_add(1, Ordering::Relaxed);
                                    let records = run.records();
                                    // `into_shared` + clone are refcount
                                    // bumps: retention and the wire frame
                                    // alias one arena slice.
                                    let bytes = run.into_shared();
                                    cx.recovery.retain(key, bytes.clone(), records);
                                    let msg = ShuffleMsg::Partition {
                                        partition: gp,
                                        bytes,
                                        records,
                                        tag: Some(key.tag(node.0)),
                                    };
                                    let wire = msg.wire_bytes();
                                    endpoint.send_data(NodeId(owner), msg, wire);
                                }
                            }
                            // The split is now fully processed: every run is
                            // in the ledger and delivered or retained.
                            coordinator.complete_split(node, out.block_idx);
                        }
                        durability_seq += 1;
                        let wall = t0.elapsed();
                        timers.add(StageId::Partition, out.seq, wall, wall);
                        out.collector.reset();
                        let _ = out_pool_tx.send(out.collector);
                    }
                    Ok(())
                    })();
                    if result.is_err() {
                        if let Some(cx) = &chaos {
                            cx.kill();
                        }
                    }
                    result
                })
            };

            let results = [
                input_handle.join().expect("input stage panicked"),
                stage_handle.join().expect("stage stage panicked"),
                kernel_handle.join().expect("kernel stage panicked"),
                retrieve_handle.join().expect("retrieve stage panicked"),
                partition_handle.join().expect("partition stage panicked"),
            ];
            results.into_iter().collect::<Result<(), EngineError>>()
        });

        let crashed = self.chaos.as_ref().is_some_and(|cx| cx.is_dead());
        if !crashed {
            // Broadcast end-of-map to every peer — even on failure, so a
            // failed node cannot hang the rest of the cluster in the merge
            // phase. A *crashed* node stays silent: its peers account for
            // it through the coordinator's dead set instead.
            for peer in 0..self.nodes {
                if peer != self.node.0 {
                    self.endpoint.send(NodeId(peer), ShuffleMsg::MapDone, 8);
                }
            }
        }
        scope_result?;
        if crashed {
            return Err(EngineError::NodeLost(format!(
                "node {} crashed during its map phase",
                self.node
            )));
        }

        let mut r = report.into_inner();
        r.records_out = records_out.load(Ordering::Relaxed);
        r.runs_remote = runs_remote.load(Ordering::Relaxed);
        r.runs_local = runs_local.load(Ordering::Relaxed);
        r.tasks_retried = tasks_retried.load(Ordering::Relaxed);
        r.elapsed = start.elapsed();
        Ok(r)
    }
}

/// Tiny Mutex wrapper so the closure-heavy code above reads cleanly.
struct Mutexed<T>(parking_lot::Mutex<T>);

impl<T> Mutexed<T> {
    fn new(v: T) -> Self {
        Mutexed(parking_lot::Mutex::new(v))
    }
    fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
        self.0.lock()
    }
    fn into_inner(self) -> T {
        self.0.into_inner()
    }
}
