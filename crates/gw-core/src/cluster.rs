//! The in-process cluster runtime.
//!
//! "Execution starts with launching the map phase and, concurrently, the
//! merge phase at each node. After the map phase completes, the merge
//! phase continues until it has received all data sent to it by map
//! pipeline instantiations at other nodes. After the merge phase
//! completes, the reduce phase is started."
//!
//! [`Cluster::run`] executes a job over `n` nodes, each a thread group:
//! the 5-stage map pipeline, the shuffle receiver + intermediate mergers,
//! then the 5-stage reduce pipeline. A shared [`Coordinator`] hands out
//! splits with locality preference; a [`gw_net::Fabric`] carries the
//! push-based shuffle.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gw_device::Device;
use gw_intermediate::{IntermediateConfig, IntermediateStore, TempDir};
use gw_net::{Fabric, NetProfile, ShuffleMsg, ShuffleReceiver};
use gw_storage::split::{FileStore, FileStoreExt};
use gw_storage::NodeId;

use crate::api::GwApp;
use crate::config::JobConfig;
use crate::coordinator::Coordinator;
use crate::map_pipeline::{MapPhase, MapPhaseReport};
use crate::reduce_pipeline::{ReducePhase, ReducePhaseReport};
use crate::timers::{StageTimers, TimerReport};
use crate::EngineError;

/// Per-node job outcome.
#[derive(Debug)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Map-phase summary.
    pub map: MapPhaseReport,
    /// Map pipeline stage timers.
    pub map_timers: TimerReport,
    /// Per-chunk map stage samples (for schedule replay).
    pub map_samples: Vec<[crate::timers::StageSample; 5]>,
    /// Merge delay: time after map completion until mergers finished.
    pub merge_delay: Duration,
    /// Runs received from peers during the shuffle.
    pub shuffle_runs_received: usize,
    /// Reduce-phase summary.
    pub reduce: ReducePhaseReport,
    /// Reduce pipeline stage timers.
    pub reduce_timers: TimerReport,
    /// Intermediate-store metrics.
    pub intermediate: gw_intermediate::StoreMetrics,
}

/// Whole-job outcome.
#[derive(Debug)]
pub struct JobReport {
    /// Wall-clock job duration (max across nodes, measured at the master).
    pub elapsed: Duration,
    /// Per-node reports, indexed by node.
    pub nodes: Vec<NodeReport>,
}

impl JobReport {
    /// All output files across nodes, sorted by global partition.
    pub fn output_files(&self) -> Vec<String> {
        let mut files: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.reduce.output_files.iter().cloned())
            .collect();
        files.sort();
        files
    }

    /// Aggregate map timers over all nodes.
    pub fn map_timers_total(&self) -> TimerReport {
        let mut total = TimerReport::default();
        for n in &self.nodes {
            total.merge(&n.map_timers);
        }
        total
    }

    /// Aggregate reduce timers over all nodes.
    pub fn reduce_timers_total(&self) -> TimerReport {
        let mut total = TimerReport::default();
        for n in &self.nodes {
            total.merge(&n.reduce_timers);
        }
        total
    }

    /// Maximum merge delay across nodes (the job's effective merge delay).
    pub fn merge_delay(&self) -> Duration {
        self.nodes
            .iter()
            .map(|n| n.merge_delay)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total input records mapped across nodes.
    pub fn records_mapped(&self) -> usize {
        self.nodes.iter().map(|n| n.map.records_in).sum()
    }

    /// Total output records written across nodes.
    pub fn records_out(&self) -> usize {
        self.nodes.iter().map(|n| n.reduce.records_out).sum()
    }
}

/// An in-process Glasswing cluster.
pub struct Cluster {
    store: Arc<dyn FileStore>,
    net: NetProfile,
}

impl Cluster {
    /// Create a cluster over `store` (its `cluster_size` defines the node
    /// count) with network profile `net`.
    pub fn new(store: Arc<dyn FileStore>, net: NetProfile) -> Self {
        Cluster { store, net }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.store.cluster_size()
    }

    /// The cluster's file store.
    pub fn store(&self) -> &Arc<dyn FileStore> {
        &self.store
    }

    /// Execute `app` under `cfg`, blocking until the job completes.
    pub fn run(&self, app: Arc<dyn GwApp>, cfg: &JobConfig) -> Result<JobReport, EngineError> {
        cfg.validate().map_err(EngineError::Config)?;
        let nodes = self.nodes();
        let splits = self.store.splits(&cfg.input)?;
        let coordinator = Arc::new(Coordinator::new(splits));
        let mut fabric: Fabric<ShuffleMsg> = Fabric::new(nodes, self.net);

        let start = Instant::now();
        let mut handles = Vec::with_capacity(nodes as usize);
        for n in 0..nodes {
            let node = NodeId(n);
            let endpoint = Arc::new(fabric.endpoint(node));
            let app = Arc::clone(&app);
            let store = Arc::clone(&self.store);
            let coordinator = Arc::clone(&coordinator);
            let cfg = cfg.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gw-node-{n}"))
                .spawn(move || -> Result<NodeReport, EngineError> {
                    run_node(node, nodes, app, store, coordinator, endpoint, &cfg)
                })
                .expect("spawn node runtime");
            handles.push(handle);
        }
        let mut reports = Vec::with_capacity(handles.len());
        let mut first_err: Option<EngineError> = None;
        for h in handles {
            match h.join() {
                Ok(Ok(r)) => reports.push(r),
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err
                        .or(Some(EngineError::TaskFailed("node runtime panicked".into())))
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(JobReport {
            elapsed: start.elapsed(),
            nodes: reports,
        })
    }
}

/// Broadcast `MapDone` to every peer (used on early failure paths; the
/// map pipeline broadcasts it itself on normal or failed completion).
fn broadcast_map_done(endpoint: &gw_net::Endpoint<ShuffleMsg>, nodes: u32, node: NodeId) {
    for peer in 0..nodes {
        if peer != node.0 {
            endpoint.send(NodeId(peer), ShuffleMsg::MapDone, 8);
        }
    }
}

/// One node's full job execution: map ∥ merge, then reduce.
fn run_node(
    node: NodeId,
    nodes: u32,
    app: Arc<dyn GwApp>,
    store: Arc<dyn FileStore>,
    coordinator: Arc<Coordinator>,
    endpoint: Arc<gw_net::Endpoint<ShuffleMsg>>,
    cfg: &JobConfig,
) -> Result<NodeReport, EngineError> {
    let device = Arc::new(Device::open_with_threads(
        cfg.device.clone(),
        cfg.device_threads,
    ));
    let store_result = IntermediateStore::new(IntermediateConfig {
        num_partitions: cfg.partitions_per_node,
        cache_threshold: cfg.cache_threshold,
        max_spill_files: cfg.max_spill_files,
        merger_threads: cfg.merger_threads,
        compress: cfg.compress_intermediate,
    });
    let intermediate = match store_result {
        Ok(s) => Arc::new(s),
        Err(e) => {
            // Tell peers we are done before dying, so they do not hang in
            // the merge phase waiting for our MapDone.
            broadcast_map_done(&endpoint, nodes, node);
            return Err(e.into());
        }
    };

    // Merge phase: receive peers' partitions concurrently with our map.
    let receiver = ShuffleReceiver::spawn(
        Arc::clone(&endpoint),
        Arc::clone(&intermediate),
        nodes as usize - 1,
    );

    let durability = if cfg.durable_map_output {
        match TempDir::new(&format!("gw-durability-{node}")) {
            Ok(d) => Some(d),
            Err(e) => {
                broadcast_map_done(&endpoint, nodes, node);
                return Err(e.into());
            }
        }
    } else {
        None
    };

    // Map phase.
    let map_timers = Arc::new(StageTimers::new());
    let map_report = MapPhase {
        cfg,
        node,
        nodes,
        app: Arc::clone(&app),
        device: Arc::clone(&device),
        store: Arc::clone(&store),
        coordinator,
        intermediate: Arc::clone(&intermediate),
        endpoint: Arc::clone(&endpoint),
        timers: Arc::clone(&map_timers),
        durability_dir: durability.as_ref().map(|d| d.path().to_path_buf()),
    }
    .run();
    let map_report = match map_report {
        Ok(r) => r,
        Err(e) => {
            // The pipeline already broadcast MapDone on its failure path;
            // drain our receiver before propagating.
            let _ = receiver.join();
            return Err(e);
        }
    };

    // Wait for every peer's data, then let the mergers drain.
    let shuffle_summary = receiver.join();
    let merge_delay = intermediate.finish_map();

    // Reduce phase.
    let reduce_timers = Arc::new(StageTimers::new());
    let reduce_report = ReducePhase {
        cfg,
        node,
        nodes,
        app,
        device,
        store,
        intermediate: Arc::clone(&intermediate),
        timers: Arc::clone(&reduce_timers),
    }
    .run()?;

    Ok(NodeReport {
        node,
        map: map_report,
        map_timers: map_timers.report(),
        map_samples: map_timers.chunk_samples(),
        merge_delay,
        shuffle_runs_received: shuffle_summary.runs,
        reduce: reduce_report,
        reduce_timers: reduce_timers.report(),
        intermediate: intermediate.metrics(),
    })
}

/// Read back a whole job's output, ordered by global partition then by the
/// in-file record order. Convenience for tests and examples.
pub fn read_job_output(
    store: &Arc<dyn FileStore>,
    report: &JobReport,
) -> Result<gw_storage::KvVec, EngineError> {
    let mut out = Vec::new();
    for path in report.output_files() {
        out.extend(store.read_all_records(&path, NodeId(0))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Combiner, Emit};
    use crate::collect::CollectorKind;
    use crate::config::Buffering;
    use gw_storage::{Dfs, DfsConfig};

    /// Word count with a sum combiner: the canonical Glasswing test app.
    struct WordCount;

    struct SumCombiner;
    impl Combiner for SumCombiner {
        fn combine(&self, _key: &[u8], acc: &mut Vec<u8>, value: &[u8]) {
            let a = u64::from_le_bytes(acc.as_slice().try_into().unwrap());
            let b = u64::from_le_bytes(value.try_into().unwrap());
            acc.copy_from_slice(&(a + b).to_le_bytes());
        }
    }

    impl GwApp for WordCount {
        fn name(&self) -> &'static str {
            "wordcount-test"
        }
        fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
            for word in value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                emit.emit(word, &1u64.to_le_bytes());
            }
        }
        fn combiner(&self) -> Option<Arc<dyn Combiner>> {
            Some(Arc::new(SumCombiner))
        }
        fn reduce(
            &self,
            key: &[u8],
            values: &[&[u8]],
            state: &mut Vec<u8>,
            last: bool,
            emit: &Emit<'_>,
        ) {
            if state.is_empty() {
                state.extend_from_slice(&0u64.to_le_bytes());
            }
            let mut acc = u64::from_le_bytes(state.as_slice().try_into().unwrap());
            for v in values {
                acc += u64::from_le_bytes((*v).try_into().unwrap());
            }
            state.copy_from_slice(&acc.to_le_bytes());
            if last {
                emit.emit(key, &acc.to_le_bytes());
            }
        }
    }

    const CORPUS: &str = "the quick brown fox jumps over the lazy dog \
                          the dog barks and the fox runs away over the hill";

    fn expected_counts() -> Vec<(Vec<u8>, u64)> {
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..NUM_LINES {
            for w in CORPUS.split_whitespace() {
                *counts.entry(w.as_bytes().to_vec()).or_insert(0u64) += 1;
            }
        }
        counts.into_iter().collect()
    }

    const NUM_LINES: usize = 40;

    fn make_cluster(nodes: u32) -> Cluster {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
        let lines: Vec<(Vec<u8>, Vec<u8>)> = (0..NUM_LINES)
            .map(|i| (format!("line{i}").into_bytes(), CORPUS.as_bytes().to_vec()))
            .collect();
        dfs.write_records(
            "/wc/in",
            NodeId(0),
            600,
            3,
            lines.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        Cluster::new(dfs, NetProfile::unlimited())
    }

    fn check_output(cluster: &Cluster, report: &JobReport) {
        let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), report)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
            .collect();
        out.sort();
        assert_eq!(out, expected_counts());
    }

    fn base_cfg() -> JobConfig {
        let mut cfg = JobConfig::new("/wc/in", "/wc/out");
        cfg.device_threads = 2;
        cfg.collector_capacity = 1 << 20;
        cfg.cache_threshold = 1 << 16;
        cfg
    }

    #[test]
    fn wordcount_single_node() {
        let cluster = make_cluster(1);
        let report = cluster.run(Arc::new(WordCount), &base_cfg()).unwrap();
        assert_eq!(report.nodes.len(), 1);
        assert_eq!(report.records_mapped(), NUM_LINES);
        check_output(&cluster, &report);
    }

    #[test]
    fn wordcount_four_nodes_with_shuffle() {
        let cluster = make_cluster(4);
        let mut cfg = base_cfg();
        cfg.partitions_per_node = 2;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        assert_eq!(report.nodes.len(), 4);
        // The shuffle must actually move data between nodes.
        let received: usize = report.nodes.iter().map(|n| n.shuffle_runs_received).sum();
        assert!(received > 0, "expected cross-node partition traffic");
        // 4 nodes × 2 partitions = 8 output files.
        assert_eq!(report.output_files().len(), 8);
        check_output(&cluster, &report);
    }

    #[test]
    fn wordcount_buffer_pool_collector_matches() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        cfg.collector = CollectorKind::BufferPool;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
    }

    #[test]
    fn wordcount_all_buffering_levels_match() {
        for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            let cluster = make_cluster(2);
            let mut cfg = base_cfg();
            cfg.buffering = buffering;
            let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
            check_output(&cluster, &report);
        }
    }

    #[test]
    fn wordcount_on_simulated_gpu_matches() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        cfg.device = gw_device::DeviceProfile::gtx480();
        cfg.timing = crate::config::TimingMode::Modeled;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
        // Stage/Retrieve are live on a discrete device.
        let timers = report.map_timers_total();
        assert!(timers.modeled(crate::StageId::Stage) > Duration::ZERO);
    }

    #[test]
    fn tiny_value_chunks_exercise_scratch_state() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        // Force every multi-value key through several kernel invocations.
        cfg.reduce_max_values_per_chunk = 1;
        cfg.reduce_concurrent_keys = 3;
        cfg.reduce_keys_per_thread = 2;
        // Disable the combiner path so keys really have many values.
        cfg.collector = CollectorKind::BufferPool;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
    }

    #[test]
    fn durability_copies_do_not_change_output() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        cfg.durable_map_output = true;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
    }

    #[test]
    fn report_exposes_stage_timers_and_merge_delay() {
        let cluster = make_cluster(2);
        let report = cluster.run(Arc::new(WordCount), &base_cfg()).unwrap();
        let timers = report.map_timers_total();
        assert!(timers.wall(crate::StageId::Kernel) > Duration::ZERO);
        assert!(timers.wall(crate::StageId::Input) > Duration::ZERO);
        assert!(timers.wall(crate::StageId::Partition) > Duration::ZERO);
        // Merge delay is measured (may be tiny but must be recorded).
        assert!(report.merge_delay() < Duration::from_secs(5));
        for n in &report.nodes {
            assert!(!n.map_samples.is_empty());
        }
    }

    #[test]
    fn missing_input_is_an_error() {
        let dfs: Arc<dyn FileStore> = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
        let cluster = Cluster::new(dfs, NetProfile::unlimited());
        let err = cluster.run(Arc::new(WordCount), &base_cfg()).unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)));
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let cluster = make_cluster(1);
        let mut cfg = base_cfg();
        cfg.partitions_per_node = 0;
        let err = cluster.run(Arc::new(WordCount), &cfg).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
    }
}
