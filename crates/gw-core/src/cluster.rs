//! The in-process cluster runtime.
//!
//! "Execution starts with launching the map phase and, concurrently, the
//! merge phase at each node. After the map phase completes, the merge
//! phase continues until it has received all data sent to it by map
//! pipeline instantiations at other nodes. After the merge phase
//! completes, the reduce phase is started."
//!
//! [`Cluster::run`] executes a job over `n` nodes, each a thread group:
//! the 5-stage map pipeline, the shuffle receiver + intermediate mergers,
//! then the 5-stage reduce pipeline. A shared [`Coordinator`] hands out
//! splits with locality preference; a [`gw_net::Fabric`] carries the
//! push-based shuffle.
//!
//! ## Fault tolerance
//!
//! Arming the cluster with a [`FaultPlan`] ([`Cluster::with_fault_plan`])
//! switches the job into *supervised* mode: nodes heartbeat the
//! coordinator, a staleness scan declares silent nodes dead, the dead
//! node's splits are re-executed by the survivors (reading surviving DFS
//! replicas), its partitions are adopted, and the shuffle runs it owed or
//! held are re-produced or re-served from retention buffers — see
//! DESIGN.md §3.5. The master tolerates [`EngineError::NodeLost`] results
//! as long as the survivors cover every output partition.
//! [`JobConfig::job_deadline`] additionally arms a master-side watchdog
//! (supervised or not) that aborts the job with
//! [`EngineError::JobTimeout`] when it expires, so no fault — injected or
//! real — can hang the caller.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;

use gw_chaos::FaultPlan;
use gw_device::Device;
use gw_intermediate::{IntermediateConfig, IntermediateStore, Run, TempDir};
use gw_net::{Fabric, NetProfile, ShuffleMsg, ShuffleReceiver, ShuffleSummary};
use gw_storage::split::{FileStore, FileStoreExt};
use gw_storage::NodeId;
use gw_trace::{CounterId, LaneId, MetricsSummary, PerfAnalysis, Realm, Trace, Tracer};

use crate::api::GwApp;
use crate::config::JobConfig;
use crate::coordinator::{Coordinator, NodeChaos, RecoveryState, RunKey, SpeculationReport};
use crate::map_pipeline::{MapPhase, MapPhaseReport};
use crate::reduce_pipeline::{ReducePhase, ReducePhaseReport};
use crate::timers::{StageTimers, TimerReport};
use crate::EngineError;

/// Supervised receiver poll tick: how often it interleaves liveness scans
/// and recovery checks with message reception.
const RX_TICK: Duration = Duration::from_millis(2);

/// Minimum interval between re-requests of the same missing runs.
const REREQUEST_EVERY: Duration = Duration::from_millis(50);

/// Per-node job outcome.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Map-phase summary.
    pub map: MapPhaseReport,
    /// Map pipeline stage timers.
    pub map_timers: TimerReport,
    /// Per-chunk map stage samples (for schedule replay).
    pub map_samples: Vec<[crate::timers::StageSample; 5]>,
    /// Merge delay: time after map completion until mergers finished.
    pub merge_delay: Duration,
    /// Runs received from peers during the shuffle.
    pub shuffle_runs_received: usize,
    /// Reduce-phase summary.
    pub reduce: ReducePhaseReport,
    /// Reduce pipeline stage timers.
    pub reduce_timers: TimerReport,
    /// Intermediate-store metrics.
    pub intermediate: gw_intermediate::StoreMetrics,
}

/// Whole-job outcome.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Whether a service satisfied this submission from its result cache
    /// instead of executing it. Always `false` on reports produced by an
    /// engine run; a `gw-service` result cache sets it on cache hits.
    pub served_from_cache: bool,
    /// Wall-clock job duration (max across nodes, measured at the master).
    pub elapsed: Duration,
    /// Per-node reports of the surviving nodes, sorted by node id.
    pub nodes: Vec<NodeReport>,
    /// Nodes declared dead during the job (0 unless a fault plan was
    /// armed and a whole-node fault fired).
    pub nodes_lost: usize,
    /// Splits requeued and re-executed because their node died.
    pub splits_rescheduled: usize,
    /// DFS block reads that failed over to another replica because of a
    /// dead node or an injected read fault.
    pub blocks_read_remote_due_to_fault: usize,
    /// Speculative re-execution accounting (all zero unless
    /// `cfg.speculation.enabled`); `launched == won + cancelled + failed`
    /// at job end.
    pub speculation: SpeculationReport,
    /// Per-node/per-stage counter rollup derived from the trace.
    pub metrics: MetricsSummary,
    /// Post-hoc performance analysis derived from the trace: overlap
    /// accounting, critical path, stragglers and the bottleneck advisor
    /// (render with [`PerfAnalysis::to_report`]).
    pub analysis: PerfAnalysis,
    /// The job's full event trace (export with [`Trace::chrome_json`]).
    pub trace: Trace,
}

impl JobReport {
    /// Close the advisor loop: lane counts for a follow-up run, chosen
    /// from this run's advisor output (auto-lanes mode — start the next
    /// job with `cfg.with_auto_lanes(&report.analysis.advice)` or assign
    /// this plan to `cfg.lane_plan` directly).
    pub fn plan_lanes(&self) -> crate::config::LanePlan {
        crate::config::LanePlan::from_advice(&self.analysis.advice)
    }

    /// All output files across nodes, sorted by global partition.
    pub fn output_files(&self) -> Vec<String> {
        let mut files: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.reduce.output_files.iter().cloned())
            .collect();
        files.sort();
        files
    }

    /// Aggregate map timers over all nodes.
    pub fn map_timers_total(&self) -> TimerReport {
        let mut total = TimerReport::default();
        for n in &self.nodes {
            total.merge(&n.map_timers);
        }
        total
    }

    /// Aggregate reduce timers over all nodes.
    pub fn reduce_timers_total(&self) -> TimerReport {
        let mut total = TimerReport::default();
        for n in &self.nodes {
            total.merge(&n.reduce_timers);
        }
        total
    }

    /// Maximum merge delay across nodes (the job's effective merge delay).
    pub fn merge_delay(&self) -> Duration {
        self.nodes
            .iter()
            .map(|n| n.merge_delay)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total input records mapped across nodes.
    pub fn records_mapped(&self) -> usize {
        self.nodes.iter().map(|n| n.map.records_in).sum()
    }

    /// Total output records written across nodes.
    pub fn records_out(&self) -> usize {
        self.nodes.iter().map(|n| n.reduce.records_out).sum()
    }
}

/// An in-process Glasswing cluster.
pub struct Cluster {
    store: Arc<dyn FileStore>,
    net: NetProfile,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Cluster {
    /// Create a cluster over `store` (its `cluster_size` defines the node
    /// count) with network profile `net`.
    pub fn new(store: Arc<dyn FileStore>, net: NetProfile) -> Self {
        Cluster {
            store,
            net,
            fault_plan: None,
        }
    }

    /// Arm a fault-injection plan for the next job. Plans are single-use:
    /// each [`Cluster::run`] consumes the armed schedule, so runs after
    /// the first execute fault-free (but still supervised). A node killed
    /// by the plan stays dead in the underlying store across later runs on
    /// this cluster, as a real crashed machine would.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.store.cluster_size()
    }

    /// The cluster's file store.
    pub fn store(&self) -> &Arc<dyn FileStore> {
        &self.store
    }

    /// Execute `app` under `cfg`, blocking until the job completes, fails
    /// with a typed error, or exceeds `cfg.job_deadline`.
    pub fn run(&self, app: Arc<dyn GwApp>, cfg: &JobConfig) -> Result<JobReport, EngineError> {
        let mut scope = RunScope::one_shot(self.nodes());
        scope.fault_plan = self.fault_plan.clone();
        self.run_scoped(app, cfg, scope)
    }

    /// Execute `app` under `cfg` within `scope`: on a subset of the
    /// store's nodes, stamped with a service job id, possibly sharing the
    /// store (and a service-lifetime tracer) with concurrent jobs. This
    /// is the coordinator/cluster lifetime split: the `Cluster` (store +
    /// network profile) is resident, while each call builds its own
    /// [`Coordinator`], fabric and node threads, so any number of jobs
    /// can be in flight against one cluster at once.
    ///
    /// The job runs in *virtual* node space `0..scope.node_set.len()`:
    /// partition ownership, the shuffle fabric and supervision all see a
    /// cluster of that size, while storage reads/writes are remapped onto
    /// the physical nodes of `scope.node_set`. Two concurrent scopes with
    /// disjoint node sets therefore never share a node's pipeline lanes.
    pub fn run_scoped(
        &self,
        app: Arc<dyn GwApp>,
        cfg: &JobConfig,
        scope: RunScope,
    ) -> Result<JobReport, EngineError> {
        cfg.validate().map_err(EngineError::Config)?;
        let nodes = scope.node_set.len() as u32;
        if nodes == 0 {
            return Err(EngineError::Config("empty node set".into()));
        }
        {
            let mut seen = HashSet::new();
            for &NodeId(p) in &scope.node_set {
                if p >= self.store.cluster_size() {
                    return Err(EngineError::Config(format!(
                        "node {p} outside the store's {} nodes",
                        self.store.cluster_size()
                    )));
                }
                if !seen.insert(p) {
                    return Err(EngineError::Config(format!("node {p} listed twice")));
                }
            }
        }
        let identity = nodes == self.store.cluster_size()
            && scope
                .node_set
                .iter()
                .enumerate()
                .all(|(i, n)| n.0 == i as u32);
        let store: Arc<dyn FileStore> = if identity {
            Arc::clone(&self.store)
        } else {
            Arc::new(ScopedStore {
                inner: Arc::clone(&self.store),
                node_set: scope.node_set.clone(),
            })
        };
        let fault_plan = scope.fault_plan;
        let total_partitions = cfg.partitions_per_node * nodes;
        let splits = store.splits(&cfg.input)?;

        let mut coordinator = Coordinator::new(splits);
        // Speculation rides on the supervision machinery (run ledger,
        // heartbeats, receiver de-dup), so enabling it supervises the job
        // even without a fault plan.
        if fault_plan.is_some() || cfg.speculation.enabled {
            coordinator.enable_supervision(
                nodes,
                total_partitions,
                cfg.node_timeout,
                Some(Arc::clone(&store)),
            );
            coordinator.enable_speculation(cfg.speculation.clone());
        }
        let coordinator = Arc::new(coordinator);

        // Arm the chaos hooks on the storage and network planes for the
        // duration of the job (the guard disarms storage on every exit).
        // The fabric and the fault plan are per-run, so they are armed in
        // every scope; the *store* is shared cluster state, so its global
        // hook and tracer are only armed when this run owns the store
        // exclusively (one-shot mode). Service jobs therefore trace no
        // storage lanes — their determinism is pinned on output bytes.
        let net_hook = fault_plan
            .as_ref()
            .map(|p| Arc::clone(p) as Arc<dyn gw_net::NetFaultHook>);
        let mut fabric: Fabric<ShuffleMsg> = Fabric::with_fault_hook(nodes, self.net, net_hook);
        if scope.exclusive_store {
            if let Some(plan) = &fault_plan {
                store.arm_fault_hook(Some(
                    Arc::clone(plan) as Arc<dyn gw_storage::StorageFaultHook>
                ));
            }
        }
        // Arm the observability plane for the duration of the job; the
        // guard disarms on every exit path. All lanes the run emits are
        // stamped with the scope's job id.
        let base_tracer = scope.tracer.clone().unwrap_or_default();
        let tracer = Arc::new(base_tracer.for_job(scope.job));
        fabric.arm_tracer(Some(Arc::clone(&tracer)));
        if scope.exclusive_store {
            store.arm_tracer(Some(Arc::clone(&tracer)));
        }
        if let Some(plan) = &fault_plan {
            plan.arm_tracer(Some(Arc::clone(&tracer)));
        }
        coordinator.arm_spec_tracer(Some(Arc::clone(&tracer)));
        let _disarm = DisarmOnDrop {
            store: scope.exclusive_store.then_some(&store),
            plan: fault_plan.as_deref(),
        };
        let failovers_before = store.fault_failovers();

        let start = Instant::now();
        // Speculation without a fault plan still needs the supervised node
        // machinery (recovery state, probes); an empty plan injects nothing.
        let spec_only_plan =
            (fault_plan.is_none() && cfg.speculation.enabled).then(|| Arc::new(FaultPlan::empty()));
        let (res_tx, res_rx) =
            crossbeam::channel::unbounded::<(u32, Result<NodeReport, EngineError>)>();
        let mut handles = Vec::with_capacity(nodes as usize);
        for n in 0..nodes {
            let node = NodeId(n);
            let endpoint = Arc::new(fabric.endpoint(node));
            let app = Arc::clone(&app);
            let store = Arc::clone(&store);
            let coordinator = Arc::clone(&coordinator);
            let cfg = cfg.clone();
            let chaos = fault_plan
                .as_ref()
                .or(spec_only_plan.as_ref())
                .map(|plan| NodeChaos {
                    plan: Arc::clone(plan),
                    recovery: Arc::new(RecoveryState::new()),
                    dead: Arc::new(AtomicBool::new(false)),
                });
            let tracer = Arc::clone(&tracer);
            let res_tx = res_tx.clone();
            let job = scope.job;
            let handle = std::thread::Builder::new()
                .name(format!("gw-j{job}-node-{n}"))
                .spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_node(
                            node,
                            nodes,
                            app,
                            store,
                            coordinator,
                            endpoint,
                            &cfg,
                            chaos,
                            tracer,
                        )
                    }))
                    .unwrap_or_else(|_| {
                        Err(EngineError::TaskFailed("node runtime panicked".into()))
                    });
                    let _ = res_tx.send((n, result));
                })
                .expect("spawn node runtime");
            handles.push(handle);
        }
        drop(res_tx);

        // Collect node results; the watchdog bounds the whole job.
        let wall_deadline = cfg.job_deadline.map(|d| (start + d, d));
        let mut results: Vec<(u32, Result<NodeReport, EngineError>)> =
            Vec::with_capacity(nodes as usize);
        let mut timed_out = false;
        while results.len() < nodes as usize {
            match wall_deadline {
                Some((at, _)) => {
                    let left = at.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        timed_out = true;
                        break;
                    }
                    match res_rx.recv_timeout(left) {
                        Ok(r) => results.push(r),
                        Err(RecvTimeoutError::Timeout) => {
                            timed_out = true;
                            break;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match res_rx.recv() {
                    Ok(r) => results.push(r),
                    Err(_) => break,
                },
            }
        }
        if timed_out {
            // Tell every supervised loop to unwind, then *detach* the node
            // threads: the caller gets its deadline honored even if some
            // thread is stuck past any abort check.
            coordinator.abort();
            drop(handles);
            return Err(EngineError::JobTimeout(wall_deadline.unwrap().1));
        }
        for h in handles {
            let _ = h.join();
        }
        let elapsed = start.elapsed();
        results.sort_by_key(|(n, _)| *n);

        let supervised = coordinator.supervised();
        let mut reports = Vec::with_capacity(results.len());
        let mut lost_nodes_seen = 0usize;
        let mut first_err: Option<EngineError> = None;
        for (_, result) in results {
            match result {
                Ok(r) => reports.push(r),
                // Supervised jobs tolerate lost nodes as long as the
                // survivors cover the whole output (checked below).
                Err(EngineError::NodeLost(_)) if supervised => lost_nodes_seen += 1,
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if reports.len() + lost_nodes_seen < nodes as usize {
            return Err(EngineError::TaskFailed(
                "a node runtime exited without reporting".into(),
            ));
        }
        if supervised {
            let covered: usize = reports.iter().map(|r| r.reduce.output_files.len()).sum();
            if covered != total_partitions as usize {
                return Err(EngineError::NodeLost(format!(
                    "unrecovered partitions: only {covered} of {total_partitions} written \
                     after losing {lost_nodes_seen} node(s)"
                )));
            }
        }
        reports.sort_by_key(|r| r.node.0);
        let trace = tracer.finish_job(scope.job);
        Ok(JobReport {
            served_from_cache: false,
            elapsed,
            nodes: reports,
            nodes_lost: coordinator.nodes_lost(),
            splits_rescheduled: coordinator.splits_rescheduled(),
            blocks_read_remote_due_to_fault: store
                .fault_failovers()
                .saturating_sub(failovers_before),
            speculation: coordinator.speculation_report(),
            metrics: trace.metrics(),
            analysis: PerfAnalysis::from_trace(&trace),
            trace,
        })
    }
}

/// Where and as whom one [`Cluster::run_scoped`] call executes.
#[derive(Debug, Clone)]
pub struct RunScope {
    /// Service job id; stamps every trace lane the run emits. One-shot
    /// runs use 0.
    pub job: u32,
    /// Physical store nodes the job runs on; virtual node `i` of the job
    /// maps onto `node_set[i]`. Must be non-empty, duplicate-free and
    /// within the store's `cluster_size`.
    pub node_set: Vec<NodeId>,
    /// Fault-injection plan for this run (sites fire in this run's
    /// pipeline threads only).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Service-lifetime tracer to record into ([`Tracer::for_job`] view
    /// is taken with `job`); `None` gives the run a private tracer.
    pub tracer: Option<Tracer>,
    /// Whether this run may arm the *shared* store's global chaos hook
    /// and tracer. True only when no other job can be resident (the
    /// one-shot path); concurrent scopes must leave it false or they
    /// would fight over cluster-global hook slots.
    pub exclusive_store: bool,
}

impl RunScope {
    /// The classic one-shot scope: job 0, every store node, exclusive.
    pub fn one_shot(nodes: u32) -> Self {
        RunScope {
            job: 0,
            node_set: (0..nodes).map(NodeId).collect(),
            fault_plan: None,
            tracer: None,
            exclusive_store: true,
        }
    }

    /// A service job scope: stamped `job`, confined to `node_set`,
    /// sharing the store (no global hook arming).
    pub fn for_job(job: u32, node_set: Vec<NodeId>) -> Self {
        RunScope {
            job,
            node_set,
            fault_plan: None,
            tracer: None,
            exclusive_store: false,
        }
    }
}

/// A virtual view of a shared [`FileStore`] confined to a node subset:
/// node id `i` of the view is physical node `node_set[i]` of the inner
/// store. Reads and writes translate the acting node (locality and
/// replica choice follow the physical node); split locations translate
/// back into virtual space, dropping replicas held outside the subset
/// (they stay readable, just never "local"). `mark_node_dead` translates
/// too, so a supervised scoped job that loses virtual node `i` kills the
/// right physical machine — a real node death, visible to co-tenants,
/// whose reads fail over to surviving replicas.
struct ScopedStore {
    inner: Arc<dyn FileStore>,
    node_set: Vec<NodeId>,
}

impl ScopedStore {
    fn phys(&self, virt: NodeId) -> NodeId {
        self.node_set.get(virt.0 as usize).copied().unwrap_or(virt)
    }

    fn virt(&self, phys: NodeId) -> Option<NodeId> {
        self.node_set
            .iter()
            .position(|&n| n == phys)
            .map(|i| NodeId(i as u32))
    }
}

impl FileStore for ScopedStore {
    fn write_blocks(
        &self,
        path: &str,
        writer: NodeId,
        blocks: Vec<(Vec<u8>, usize)>,
        replication: usize,
    ) -> Result<gw_storage::IoSample, gw_storage::StorageError> {
        self.inner
            .write_blocks(path, self.phys(writer), blocks, replication)
    }

    fn splits(&self, path: &str) -> Result<Vec<gw_storage::InputSplit>, gw_storage::StorageError> {
        let mut splits = self.inner.splits(path)?;
        for s in &mut splits {
            s.locations = s
                .locations
                .iter()
                .filter_map(|&loc| self.virt(loc))
                .collect();
        }
        Ok(splits)
    }

    fn read_split(
        &self,
        split: &gw_storage::InputSplit,
        reader: NodeId,
    ) -> Result<(Arc<[u8]>, gw_storage::IoSample), gw_storage::StorageError> {
        self.inner.read_split(split, self.phys(reader))
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn delete(&self, path: &str) {
        self.inner.delete(path)
    }

    fn io_stats(&self) -> &gw_storage::IoStats {
        self.inner.io_stats()
    }

    fn cluster_size(&self) -> u32 {
        self.node_set.len() as u32
    }

    fn arm_fault_hook(&self, hook: Option<Arc<dyn gw_storage::StorageFaultHook>>) {
        self.inner.arm_fault_hook(hook)
    }

    fn arm_tracer(&self, tracer: Option<Arc<gw_trace::Tracer>>) {
        self.inner.arm_tracer(tracer)
    }

    fn mark_node_dead(&self, node: NodeId) {
        self.inner.mark_node_dead(self.phys(node))
    }

    fn fault_failovers(&self) -> usize {
        self.inner.fault_failovers()
    }
}

/// Disarms the store's chaos hook and every subsystem's tracer on every
/// exit path of [`Cluster::run_scoped`]. `store` is `None` for shared
/// (non-exclusive) scopes, which never armed the store's global slots.
struct DisarmOnDrop<'a> {
    store: Option<&'a Arc<dyn FileStore>>,
    plan: Option<&'a FaultPlan>,
}

impl Drop for DisarmOnDrop<'_> {
    fn drop(&mut self) {
        if let Some(store) = self.store {
            store.arm_fault_hook(None);
            store.arm_tracer(None);
        }
        if let Some(plan) = self.plan {
            plan.arm_tracer(None);
        }
    }
}

/// Liveness heartbeat, posted from a dedicated thread for the node's whole
/// lifetime (map, merge and reduce). Dropping the guard stops the beats —
/// after which the staleness scan declares the node dead, which is exactly
/// right on every exit path: normal completion (supervision ends with the
/// job) and failure alike.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(coordinator: Arc<Coordinator>, node: NodeId, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("gw-heartbeat-{node}"))
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    coordinator.heartbeat(node);
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn heartbeat");
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The node's merge-phase receiver: plain (the paper's protocol) or
/// supervised (the fault-tolerant protocol).
enum ShuffleRx {
    Plain(ShuffleReceiver),
    Supervised(std::thread::JoinHandle<Result<ShuffleSummary, EngineError>>),
}

impl ShuffleRx {
    fn join(self) -> Result<ShuffleSummary, EngineError> {
        match self {
            ShuffleRx::Plain(r) => Ok(r.join()),
            ShuffleRx::Supervised(h) => h.join().unwrap_or_else(|_| {
                Err(EngineError::TaskFailed("shuffle receiver panicked".into()))
            }),
        }
    }
}

/// The fault-tolerant shuffle receiver.
///
/// Tick loop over `recv_timeout`: admits runs with de-duplication (tagged
/// runs from re-executed splits arrive at most once), serves `Resend`
/// requests from the node's retention buffer, and interleaves liveness
/// scans. Reception is complete when the map phase is globally complete,
/// every peer is done or dead, and the coordinator's ledger says this node
/// is owed nothing; missing runs are periodically re-requested from their
/// live producers instead of blocking in `recv`. The thread then *keeps
/// serving* until every live node is satisfied, so no peer's re-request
/// can hit an exited server.
#[allow(clippy::too_many_arguments)]
fn spawn_supervised_receiver(
    endpoint: Arc<gw_net::Endpoint<ShuffleMsg>>,
    intermediate: Arc<IntermediateStore>,
    coordinator: Arc<Coordinator>,
    nodes: u32,
    node: NodeId,
    chaos: NodeChaos,
    tracer: Arc<Tracer>,
) -> std::thread::JoinHandle<Result<ShuffleSummary, EngineError>> {
    std::thread::Builder::new()
        .name(format!("gw-shuffle-rx-{node}"))
        .spawn(move || {
            let mut summary = ShuffleSummary {
                runs: 0,
                bytes: 0,
                done_markers: 0,
            };
            let mut done_from: HashSet<u32> = HashSet::new();
            let mut satisfied = false;
            let mut last_rerequest = Instant::now() - REREQUEST_EVERY;
            loop {
                if chaos.is_dead() || coordinator.is_dead(node) {
                    return Err(EngineError::NodeLost(format!(
                        "node {node} lost during the shuffle"
                    )));
                }
                if coordinator.aborted() {
                    return Err(EngineError::NodeLost("job aborted".into()));
                }
                match endpoint.recv_timeout(RX_TICK) {
                    Ok(Some(env)) => match env.payload {
                        ShuffleMsg::Partition {
                            partition,
                            bytes,
                            records,
                            tag,
                        } => {
                            let fresh = match tag {
                                Some(t) => chaos.recovery.admit(RunKey::from(t)),
                                None => true,
                            };
                            if fresh {
                                summary.runs += 1;
                                summary.bytes += bytes.len();
                                intermediate
                                    .add_run(partition, Run::from_sorted_bytes(bytes, records));
                            }
                        }
                        ShuffleMsg::MapDone => {
                            done_from.insert(env.from.0);
                            summary.done_markers += 1;
                        }
                        ShuffleMsg::Resend { ids } => {
                            for id in ids {
                                if let Some((bytes, records)) =
                                    chaos.recovery.retained(RunKey::from(id))
                                {
                                    let msg = ShuffleMsg::Partition {
                                        partition: id.partition,
                                        bytes,
                                        records,
                                        tag: Some(id),
                                    };
                                    let wire = msg.wire_bytes();
                                    // Control path: re-served runs are not
                                    // subject to further injected drops.
                                    endpoint.send(env.from, msg, wire);
                                    // The retransmit counter lives on the
                                    // rx lane: this thread is the node's
                                    // receiver, so the lane stays
                                    // single-writer.
                                    tracer
                                        .lane(LaneId {
                                            job: 0,
                                            node: node.0,
                                            realm: Realm::NetRx,
                                        })
                                        .count(CounterId::ShuffleRetransmit, 1);
                                }
                            }
                        }
                    },
                    Ok(None) => {
                        return Err(EngineError::TaskFailed(
                            "shuffle fabric disconnected".into(),
                        ));
                    }
                    Err(_timeout) => coordinator.scan_liveness(),
                }
                if !satisfied {
                    if coordinator.map_complete() {
                        let dead = coordinator.dead_nodes();
                        let peers_done = (0..nodes)
                            .all(|p| p == node.0 || done_from.contains(&p) || dead.contains(&p));
                        let received = chaos.recovery.received_snapshot();
                        let missing = coordinator.missing_runs_for(node.0, nodes, &received);
                        if missing.is_empty() {
                            if peers_done {
                                satisfied = true;
                                coordinator.mark_shuffle_satisfied(node);
                            }
                        } else if last_rerequest.elapsed() >= REREQUEST_EVERY {
                            last_rerequest = Instant::now();
                            for (producer, ids) in missing {
                                if producer == node.0 {
                                    // Runs we produced for partitions we now
                                    // own (sent to a node that then died):
                                    // serve ourselves from retention.
                                    for id in ids {
                                        let key = RunKey::from(id);
                                        if let Some((bytes, records)) = chaos.recovery.retained(key)
                                        {
                                            if chaos.recovery.admit(key) {
                                                summary.runs += 1;
                                                summary.bytes += bytes.len();
                                                intermediate.add_run(
                                                    key.partition,
                                                    Run::from_sorted_bytes(bytes, records),
                                                );
                                            }
                                        }
                                    }
                                } else {
                                    let msg = ShuffleMsg::Resend { ids };
                                    let wire = msg.wire_bytes();
                                    endpoint.send(NodeId(producer), msg, wire);
                                }
                            }
                        }
                    } else if coordinator.map_stalled() {
                        // Splits were lost after every node left its input
                        // loop: nobody can re-execute them. Fail the whole
                        // job cleanly rather than wait for the watchdog.
                        coordinator.abort();
                        return Err(EngineError::NodeLost(
                            "splits lost with no live mapper left to re-execute them".into(),
                        ));
                    }
                }
                if satisfied && coordinator.all_live_satisfied(nodes) {
                    return Ok(summary);
                }
            }
        })
        .expect("spawn supervised shuffle receiver")
}

/// Broadcast `MapDone` to every peer (used on early failure paths; the
/// map pipeline broadcasts it itself on normal or failed completion).
fn broadcast_map_done(endpoint: &gw_net::Endpoint<ShuffleMsg>, nodes: u32, node: NodeId) {
    for peer in 0..nodes {
        if peer != node.0 {
            endpoint.send(NodeId(peer), ShuffleMsg::MapDone, 8);
        }
    }
}

/// One node's full job execution: map ∥ merge, then reduce.
#[allow(clippy::too_many_arguments)]
fn run_node(
    node: NodeId,
    nodes: u32,
    app: Arc<dyn GwApp>,
    store: Arc<dyn FileStore>,
    coordinator: Arc<Coordinator>,
    endpoint: Arc<gw_net::Endpoint<ShuffleMsg>>,
    cfg: &JobConfig,
    chaos: Option<NodeChaos>,
    tracer: Arc<Tracer>,
) -> Result<NodeReport, EngineError> {
    // Heartbeats span the node's whole lifetime (map through reduce).
    let _heartbeat = chaos
        .as_ref()
        .map(|_| Heartbeat::start(Arc::clone(&coordinator), node, cfg.heartbeat_interval));

    let device = Arc::new(Device::open_with_threads(
        cfg.device.clone(),
        cfg.device_threads,
    ));
    // Intermediate stores are indexed by *global* partition, so a node can
    // adopt a dead peer's partitions without re-indexing.
    let mut icfg = IntermediateConfig {
        num_partitions: cfg.partitions_per_node * nodes,
        cache_threshold: cfg.cache_threshold,
        max_spill_files: cfg.max_spill_files,
        merger_threads: cfg.merger_threads,
        compress: cfg.compress_intermediate,
        ..Default::default()
    };
    if let Some(budget) = cfg.memory_budget {
        // The budget knob overrides the explicit threshold and sizes spill
        // frames so the out-of-core peak stays within ~1.5× budget.
        icfg = icfg.with_memory_budget(budget);
    }
    let store_result = IntermediateStore::new(icfg);
    let intermediate = match store_result {
        Ok(s) => Arc::new(s),
        Err(e) => {
            // Tell peers we are done before dying, so they do not hang in
            // the merge phase waiting for our MapDone.
            broadcast_map_done(&endpoint, nodes, node);
            return Err(e.into());
        }
    };
    if let Some(cx) = &chaos {
        // Spill-file I/O is a chaos fault site: probe the node's plan
        // before every frame write/read. The store dies with the job, so
        // no disarm guard is needed.
        intermediate.arm_spill_faults(Some(
            Arc::clone(&cx.plan) as Arc<dyn gw_intermediate::SpillFaultHook>
        ));
    }

    // Merge phase: receive peers' partitions concurrently with our map.
    let receiver = match &chaos {
        Some(cx) => ShuffleRx::Supervised(spawn_supervised_receiver(
            Arc::clone(&endpoint),
            Arc::clone(&intermediate),
            Arc::clone(&coordinator),
            nodes,
            node,
            cx.clone(),
            Arc::clone(&tracer),
        )),
        None => ShuffleRx::Plain(ShuffleReceiver::spawn(
            Arc::clone(&endpoint),
            Arc::clone(&intermediate),
            nodes as usize - 1,
        )),
    };

    let durability = if cfg.durable_map_output {
        match TempDir::new(&format!("gw-durability-{node}")) {
            Ok(d) => Some(d),
            Err(e) => {
                if let Some(cx) = &chaos {
                    cx.kill();
                }
                broadcast_map_done(&endpoint, nodes, node);
                let _ = receiver.join();
                return Err(e.into());
            }
        }
    } else {
        None
    };

    // Map phase.
    let map_timers = Arc::new(StageTimers::new());
    let map_report = MapPhase {
        cfg,
        node,
        nodes,
        app: Arc::clone(&app),
        device: Arc::clone(&device),
        store: Arc::clone(&store),
        coordinator: Arc::clone(&coordinator),
        intermediate: Arc::clone(&intermediate),
        endpoint: Arc::clone(&endpoint),
        timers: Arc::clone(&map_timers),
        tracer: Arc::clone(&tracer),
        durability_dir: durability.as_ref().map(|d| d.path().to_path_buf()),
        chaos: chaos.clone(),
    }
    .run();
    let map_report = match map_report {
        Ok(r) => r,
        Err(e) => {
            // Halt our receiver: a supervised one would otherwise keep
            // waiting on a map phase this node will never finish.
            if let Some(cx) = &chaos {
                cx.kill();
            }
            let _ = receiver.join();
            return Err(e);
        }
    };

    // Wait for every peer's data, then let the mergers drain.
    let shuffle_summary = receiver.join()?;
    // A spill I/O error on a merger thread poisons the store and surfaces
    // here (and from `partition_cursors` in reduce) instead of panicking.
    let merge_delay = intermediate.finish_map()?;

    if coordinator.aborted() {
        return Err(EngineError::NodeLost("job aborted before reduce".into()));
    }

    // Reduce phase.
    let reduce_timers = Arc::new(StageTimers::new());
    let reduce_report = ReducePhase {
        cfg,
        node,
        nodes,
        app,
        device,
        store,
        coordinator: Arc::clone(&coordinator),
        intermediate: Arc::clone(&intermediate),
        timers: Arc::clone(&reduce_timers),
        tracer,
        chaos,
    }
    .run()?;

    Ok(NodeReport {
        node,
        map: map_report,
        map_timers: map_timers.report(),
        map_samples: map_timers.chunk_samples(),
        merge_delay,
        shuffle_runs_received: shuffle_summary.runs,
        reduce: reduce_report,
        reduce_timers: reduce_timers.report(),
        intermediate: intermediate.metrics(),
    })
}

/// Read back a whole job's output, ordered by global partition then by the
/// in-file record order. Convenience for tests and examples.
pub fn read_job_output(
    store: &Arc<dyn FileStore>,
    report: &JobReport,
) -> Result<gw_storage::KvVec, EngineError> {
    let mut out = Vec::new();
    for path in report.output_files() {
        out.extend(store.read_all_records(&path, NodeId(0))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Combiner, Emit};
    use crate::collect::CollectorKind;
    use crate::config::Buffering;
    use gw_storage::{Dfs, DfsConfig};

    /// Word count with a sum combiner: the canonical Glasswing test app.
    struct WordCount;

    struct SumCombiner;
    impl Combiner for SumCombiner {
        fn combine(&self, _key: &[u8], acc: &mut Vec<u8>, value: &[u8]) {
            let a = u64::from_le_bytes(acc.as_slice().try_into().unwrap());
            let b = u64::from_le_bytes(value.try_into().unwrap());
            acc.copy_from_slice(&(a + b).to_le_bytes());
        }
    }

    impl GwApp for WordCount {
        fn name(&self) -> &'static str {
            "wordcount-test"
        }
        fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
            for word in value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                emit.emit(word, &1u64.to_le_bytes());
            }
        }
        fn combiner(&self) -> Option<Arc<dyn Combiner>> {
            Some(Arc::new(SumCombiner))
        }
        fn reduce(
            &self,
            key: &[u8],
            values: &[&[u8]],
            state: &mut Vec<u8>,
            last: bool,
            emit: &Emit<'_>,
        ) {
            if state.is_empty() {
                state.extend_from_slice(&0u64.to_le_bytes());
            }
            let mut acc = u64::from_le_bytes(state.as_slice().try_into().unwrap());
            for v in values {
                acc += u64::from_le_bytes((*v).try_into().unwrap());
            }
            state.copy_from_slice(&acc.to_le_bytes());
            if last {
                emit.emit(key, &acc.to_le_bytes());
            }
        }
    }

    const CORPUS: &str = "the quick brown fox jumps over the lazy dog \
                          the dog barks and the fox runs away over the hill";

    fn expected_counts() -> Vec<(Vec<u8>, u64)> {
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..NUM_LINES {
            for w in CORPUS.split_whitespace() {
                *counts.entry(w.as_bytes().to_vec()).or_insert(0u64) += 1;
            }
        }
        counts.into_iter().collect()
    }

    const NUM_LINES: usize = 40;

    fn make_cluster(nodes: u32) -> Cluster {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
        let lines: Vec<(Vec<u8>, Vec<u8>)> = (0..NUM_LINES)
            .map(|i| (format!("line{i}").into_bytes(), CORPUS.as_bytes().to_vec()))
            .collect();
        dfs.write_records(
            "/wc/in",
            NodeId(0),
            600,
            3,
            lines.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        Cluster::new(dfs, NetProfile::unlimited())
    }

    fn check_output(cluster: &Cluster, report: &JobReport) {
        let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), report)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
            .collect();
        out.sort();
        assert_eq!(out, expected_counts());
    }

    fn base_cfg() -> JobConfig {
        let mut cfg = JobConfig::new("/wc/in", "/wc/out");
        cfg.device_threads = 2;
        cfg.collector_capacity = 1 << 20;
        cfg.cache_threshold = 1 << 16;
        cfg
    }

    #[test]
    fn wordcount_single_node() {
        let cluster = make_cluster(1);
        let report = cluster.run(Arc::new(WordCount), &base_cfg()).unwrap();
        assert_eq!(report.nodes.len(), 1);
        assert_eq!(report.records_mapped(), NUM_LINES);
        check_output(&cluster, &report);
    }

    #[test]
    fn wordcount_four_nodes_with_shuffle() {
        let cluster = make_cluster(4);
        let mut cfg = base_cfg();
        cfg.partitions_per_node = 2;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        assert_eq!(report.nodes.len(), 4);
        // The shuffle must actually move data between nodes.
        let received: usize = report.nodes.iter().map(|n| n.shuffle_runs_received).sum();
        assert!(received > 0, "expected cross-node partition traffic");
        // 4 nodes × 2 partitions = 8 output files.
        assert_eq!(report.output_files().len(), 8);
        check_output(&cluster, &report);
    }

    #[test]
    fn wordcount_buffer_pool_collector_matches() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        cfg.collector = CollectorKind::BufferPool;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
    }

    #[test]
    fn wordcount_all_buffering_levels_match() {
        for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            let cluster = make_cluster(2);
            let mut cfg = base_cfg();
            cfg.buffering = buffering;
            let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
            check_output(&cluster, &report);
        }
    }

    #[test]
    fn wordcount_on_simulated_gpu_matches() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        cfg.device = gw_device::DeviceProfile::gtx480();
        cfg.timing = crate::config::TimingMode::Modeled;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
        // Stage/Retrieve are live on a discrete device.
        let timers = report.map_timers_total();
        assert!(timers.modeled(crate::StageId::Stage) > Duration::ZERO);
    }

    #[test]
    fn tiny_value_chunks_exercise_scratch_state() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        // Force every multi-value key through several kernel invocations.
        cfg.reduce_max_values_per_chunk = 1;
        cfg.reduce_concurrent_keys = 3;
        cfg.reduce_keys_per_thread = 2;
        // Disable the combiner path so keys really have many values.
        cfg.collector = CollectorKind::BufferPool;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
    }

    #[test]
    fn durability_copies_do_not_change_output() {
        let cluster = make_cluster(2);
        let mut cfg = base_cfg();
        cfg.durable_map_output = true;
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        check_output(&cluster, &report);
    }

    #[test]
    fn report_exposes_stage_timers_and_merge_delay() {
        let cluster = make_cluster(2);
        let report = cluster.run(Arc::new(WordCount), &base_cfg()).unwrap();
        let timers = report.map_timers_total();
        assert!(timers.wall(crate::StageId::Kernel) > Duration::ZERO);
        assert!(timers.wall(crate::StageId::Input) > Duration::ZERO);
        assert!(timers.wall(crate::StageId::Partition) > Duration::ZERO);
        // Merge delay is measured (may be tiny but must be recorded).
        assert!(report.merge_delay() < Duration::from_secs(5));
        for n in &report.nodes {
            assert!(!n.map_samples.is_empty());
        }
    }

    #[test]
    fn missing_input_is_an_error() {
        let dfs: Arc<dyn FileStore> = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
        let cluster = Cluster::new(dfs, NetProfile::unlimited());
        let err = cluster.run(Arc::new(WordCount), &base_cfg()).unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)));
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let cluster = make_cluster(1);
        let mut cfg = base_cfg();
        cfg.partitions_per_node = 0;
        let err = cluster.run(Arc::new(WordCount), &cfg).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
    }

    #[test]
    fn unarmed_jobs_report_zero_fault_accounting() {
        let cluster = make_cluster(2);
        let report = cluster.run(Arc::new(WordCount), &base_cfg()).unwrap();
        assert_eq!(report.nodes_lost, 0);
        assert_eq!(report.splits_rescheduled, 0);
        assert_eq!(report.blocks_read_remote_due_to_fault, 0);
    }

    #[test]
    fn scoped_subset_run_matches_a_dedicated_cluster_of_the_same_size() {
        // A 2-slot job on physical nodes {2, 3} of a shared 4-node store
        // must produce byte-identical output to the same job on a
        // dedicated 2-node cluster: output bytes are a function of
        // (workload, JobConfig, node count), never of placement.
        let big = make_cluster(4);
        let tracer = Tracer::new();
        let mut scope = RunScope::for_job(7, vec![NodeId(2), NodeId(3)]);
        scope.tracer = Some(tracer.clone());
        let mut cfg = base_cfg();
        cfg.partitions_per_node = 2;
        let report = big.run_scoped(Arc::new(WordCount), &cfg, scope).unwrap();
        assert!(!report.served_from_cache);
        assert_eq!(report.nodes.len(), 2);
        assert_eq!(report.output_files().len(), 4);
        check_output(&big, &report);
        // Every lane the scoped run emitted is stamped with its job id,
        // both in the report's own trace and in the shared tracer.
        assert!(report.trace.event_count() > 0);
        assert!(report.trace.lanes.iter().all(|(id, _)| id.job == 7));
        assert_eq!(tracer.finish().jobs(), vec![7]);

        let small = make_cluster(2);
        let solo = small.run(Arc::new(WordCount), &cfg).unwrap();
        let scoped_out = read_job_output(big.store(), &report).unwrap();
        let solo_out = read_job_output(small.store(), &solo).unwrap();
        assert_eq!(scoped_out, solo_out);
    }

    #[test]
    fn scoped_run_rejects_bad_node_sets() {
        let cluster = make_cluster(2);
        let cfg = base_cfg();
        let err = cluster
            .run_scoped(Arc::new(WordCount), &cfg, RunScope::for_job(1, Vec::new()))
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
        let err = cluster
            .run_scoped(
                Arc::new(WordCount),
                &cfg,
                RunScope::for_job(1, vec![NodeId(0), NodeId(5)]),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
        let err = cluster
            .run_scoped(
                Arc::new(WordCount),
                &cfg,
                RunScope::for_job(1, vec![NodeId(1), NodeId(1)]),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
    }

    #[test]
    fn empty_fault_plan_supervises_without_changing_the_answer() {
        let cluster = make_cluster(2).with_fault_plan(FaultPlan::empty());
        let mut cfg = base_cfg();
        cfg.node_timeout = Duration::from_millis(500);
        cfg.heartbeat_interval = Duration::from_millis(10);
        let report = cluster.run(Arc::new(WordCount), &cfg).unwrap();
        assert_eq!(report.nodes_lost, 0);
        assert_eq!(report.splits_rescheduled, 0);
        check_output(&cluster, &report);
    }
}
