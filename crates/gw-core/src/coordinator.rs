//! Locality-aware split coordination and whole-node fault recovery.
//!
//! "Glasswing's job coordinator is like Hadoop's: both use a dedicated
//! master node; Glasswing's scheduler considers file affinity in its job
//! allocation." Nodes pull splits from the shared coordinator; a node is
//! preferentially given a split whose block it holds locally, falling back
//! to remote splits only when no local work remains.
//!
//! Beyond the paper's task re-execution (§III-E), the coordinator carries
//! the cluster's liveness and recovery state when *supervision* is enabled
//! (a fault plan is armed):
//!
//! * **Liveness** — every node posts heartbeats; a staleness scan declares
//!   a node dead once its last beat is older than `node_timeout`. A dead
//!   node's claimed *and completed* splits return to the queue for the
//!   survivors, and each global partition it owned is adopted by the next
//!   live node on the ring.
//! * **Run ledger** — every sorted run a map task produces is recorded as
//!   a [`RunKey`] → producer entry *before* it is retained/sent, so a
//!   receiver can compute exactly which runs it is still owed and
//!   re-request them from the producers' retention buffers. Re-executed
//!   splits overwrite their ledger entries, replacing dead producers.
//! * **Fault accounting** — `nodes_lost` and `splits_rescheduled` feed the
//!   job report.
//!
//! Unsupervised (the default), the coordinator is exactly the paper's
//! split queue: every supervised path is behind an `Option` that stays
//! `None`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use gw_chaos::FaultPlan;
use gw_net::RunTag;
use gw_storage::split::FileStore;
use gw_storage::{InputSplit, NodeId};
use gw_trace::{LaneId, MarkId, Realm, Tracer};

use crate::config::SpeculationConfig;
use crate::hash::partition_owner;

/// Identity of one sorted run, independent of which node produced it (a
/// re-executed split re-produces runs under the same keys, which is what
/// makes receiver-side de-duplication and ledger overwrite sound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Global partition the run belongs to.
    pub partition: u32,
    /// Input block the run was computed from.
    pub block: u32,
    /// Producer-side lane (pinned to 0 in supervised mode, where a block's
    /// lanes are merged into one deterministic run per partition).
    pub lane: u32,
}

impl From<RunTag> for RunKey {
    fn from(t: RunTag) -> Self {
        RunKey {
            partition: t.partition,
            block: t.block,
            lane: t.lane,
        }
    }
}

impl RunKey {
    /// The wire tag for this run as (re)produced by `producer`.
    pub fn tag(self, producer: u32) -> RunTag {
        RunTag {
            producer,
            partition: self.partition,
            block: self.block,
            lane: self.lane,
        }
    }
}

/// Per-node shuffle recovery state: which runs this node has admitted into
/// its intermediate store (for de-duplication of re-produced runs), and
/// the serialized runs it has sent to peers (retained so it can re-serve
/// them on [`gw_net::ShuffleMsg::Resend`]).
#[derive(Debug, Default)]
pub struct RecoveryState {
    received: Mutex<HashSet<RunKey>>,
    retained: Mutex<HashMap<RunKey, (Bytes, usize)>>,
}

impl RecoveryState {
    /// Fresh state for one node in one job.
    pub fn new() -> Self {
        RecoveryState::default()
    }

    /// Admit a run into the local store. Returns `false` if an identical
    /// run was already admitted (duplicate delivery or re-execution).
    pub fn admit(&self, key: RunKey) -> bool {
        self.received.lock().insert(key)
    }

    /// Whether `key` has been admitted.
    pub fn is_admitted(&self, key: RunKey) -> bool {
        self.received.lock().contains(&key)
    }

    /// Snapshot of the admitted set (for the missing-run scan).
    pub fn received_snapshot(&self) -> HashSet<RunKey> {
        self.received.lock().clone()
    }

    /// Retain a serialized run sent to a peer, for possible re-serving.
    /// `Bytes` is refcounted, so retention aliases the run's arena rather
    /// than copying it.
    pub fn retain(&self, key: RunKey, bytes: Bytes, records: usize) {
        self.retained.lock().insert(key, (bytes, records));
    }

    /// Fetch a retained run (a refcount clone; retention survives
    /// re-serving).
    pub fn retained(&self, key: RunKey) -> Option<(Bytes, usize)> {
        self.retained.lock().get(&key).cloned()
    }
}

/// Everything a node's pipelines need to participate in fault injection
/// and recovery. Present only when the cluster is armed with a
/// [`FaultPlan`].
#[derive(Clone)]
pub struct NodeChaos {
    /// The job's fault schedule.
    pub plan: Arc<FaultPlan>,
    /// This node's shuffle recovery state.
    pub recovery: Arc<RecoveryState>,
    /// Set when this node has crashed (by injection or by being declared
    /// dead); every pipeline loop checks it and unwinds.
    pub dead: Arc<AtomicBool>,
}

impl NodeChaos {
    /// Whether this node has crashed.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Mark this node crashed.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::Release);
    }
}

/// The map pipeline's hook into the fault plane: crash-site probing per
/// stage, the node's dead flag, and — on the input stage, which is the
/// point where a node commits to more work — the coordinator's own view
/// of this node's liveness and the job-wide abort flag.
pub struct MapPipelineProbe {
    chaos: NodeChaos,
    coordinator: Arc<Coordinator>,
    node: NodeId,
}

impl MapPipelineProbe {
    /// Probe for `node`'s map pipeline.
    pub fn new(chaos: NodeChaos, coordinator: Arc<Coordinator>, node: NodeId) -> Self {
        MapPipelineProbe {
            chaos,
            coordinator,
            node,
        }
    }
}

impl gw_pipeline::PipelineProbe for MapPipelineProbe {
    fn should_abort(&self, stage: gw_pipeline::StageId) -> bool {
        self.chaos.is_dead()
            || (stage == gw_pipeline::StageId::Input
                && (self.coordinator.is_dead(self.node) || self.coordinator.aborted()))
    }

    fn crash_fires(&self, stage: gw_pipeline::StageId) -> bool {
        self.chaos
            .plan
            .crash_fires(self.node.0, gw_chaos::CrashSite::for_map_stage(stage))
    }

    fn kill(&self) {
        self.chaos.kill();
    }

    fn gray_delay(&self, stage: gw_pipeline::StageId, wall: Duration) -> Option<Duration> {
        self.chaos
            .plan
            .gray_delay(self.node.0, gw_chaos::CrashSite::for_map_stage(stage), wall)
    }

    // The executor probes per (stage, lane); lane-pinned faults in the
    // plan target an individual lane of a widened stage, unpinned faults
    // behave exactly as before.

    fn crash_fires_on(&self, stage: gw_pipeline::StageId, lane: u32) -> bool {
        self.chaos.plan.crash_fires_lane(
            self.node.0,
            gw_chaos::CrashSite::for_map_stage(stage),
            lane,
        )
    }

    fn gray_delay_on(
        &self,
        stage: gw_pipeline::StageId,
        lane: u32,
        wall: Duration,
    ) -> Option<Duration> {
        self.chaos.plan.gray_delay_lane(
            self.node.0,
            gw_chaos::CrashSite::for_map_stage(stage),
            lane,
            wall,
        )
    }
}

/// The reduce pipeline's hook into the fault plane. Reduce-site faults
/// are task-level panics recovered by the §III-E retry budget (a
/// whole-node reduce crash is unrecoverable — see DESIGN.md §3.5), so the
/// probe exposes only [`gw_pipeline::PipelineProbe::task_fault_fires`].
pub struct ReduceTaskProbe {
    chaos: NodeChaos,
    node: NodeId,
}

impl ReduceTaskProbe {
    /// Probe for `node`'s reduce pipelines.
    pub fn new(chaos: NodeChaos, node: NodeId) -> Self {
        ReduceTaskProbe { chaos, node }
    }
}

impl gw_pipeline::PipelineProbe for ReduceTaskProbe {
    fn should_abort(&self, _stage: gw_pipeline::StageId) -> bool {
        false
    }

    fn crash_fires(&self, _stage: gw_pipeline::StageId) -> bool {
        false
    }

    fn kill(&self) {}

    fn task_fault_fires(&self) -> bool {
        self.chaos.plan.reduce_fault_fires(self.node.0)
    }

    fn gray_delay(&self, _stage: gw_pipeline::StageId, wall: Duration) -> Option<Duration> {
        // Gray faults on the reduce side all map to the Reduce site.
        self.chaos
            .plan
            .gray_delay(self.node.0, gw_chaos::CrashSite::Reduce, wall)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Pending,
    Claimed(u32),
    Complete(u32),
}

#[derive(Debug)]
struct Slot {
    split: InputSplit,
    state: SlotState,
    /// Node running a speculative clone of this split, racing the claimant.
    spec: Option<u32>,
    /// When the current claim was handed out (drives the straggler
    /// threshold).
    claimed_at: Option<Instant>,
}

/// Live state of the speculation controller (DESIGN.md §3.8): an idle node
/// that finds no pending split may instead clone the oldest outstanding
/// claim once it looks like a straggler. Clones race their primaries
/// first-finisher-wins; the run ledger and receiver de-dup make either
/// winner produce byte-identical output.
struct Speculation {
    cfg: SpeculationConfig,
    /// Completed-claim durations; the straggler threshold is a percentile
    /// of their median.
    durations: Mutex<Vec<Duration>>,
    last_launch: Mutex<Option<Instant>>,
    launched: AtomicUsize,
    won: AtomicUsize,
    cancelled: AtomicUsize,
    failed: AtomicUsize,
    tracer: RwLock<Option<Arc<Tracer>>>,
}

/// Final speculation accounting for the job report. Invariant at job end:
/// `launched == won + cancelled + failed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationReport {
    /// Speculative clones launched.
    pub launched: usize,
    /// Clones that finished before (or outlived) their primary.
    pub won: usize,
    /// Clones cancelled because the primary finished first.
    pub cancelled: usize,
    /// Clones lost because the speculating node died.
    pub failed: usize,
}

impl SpeculationReport {
    /// Whether every launched clone is accounted for.
    pub fn balanced(&self) -> bool {
        self.launched == self.won + self.cancelled + self.failed
    }
}

struct Liveness {
    /// Last heartbeat per node.
    beats: Vec<Instant>,
    /// Nodes declared dead.
    dead: HashSet<u32>,
    /// Nodes still inside their map input loop (able to claim splits).
    mapping: HashSet<u32>,
    /// Nodes whose shuffle reception is complete.
    satisfied: HashSet<u32>,
    /// Partition adoptions: global partition → live owner, for partitions
    /// whose hash owner died.
    owner_override: HashMap<u32, u32>,
}

struct Supervision {
    nodes: u32,
    total_partitions: u32,
    node_timeout: Duration,
    store: Option<Arc<dyn FileStore>>,
    live: Mutex<Liveness>,
    /// RunKey → current producer. Lock order: `ledger` before `live`.
    ledger: Mutex<HashMap<RunKey, u32>>,
}

/// Shared split queue with locality preference and (optionally) the
/// cluster's liveness/recovery state.
pub struct Coordinator {
    /// Lock order: `live` (supervision) before `slots`.
    slots: Mutex<Vec<Slot>>,
    total: usize,
    supervision: Option<Supervision>,
    speculation: Option<Speculation>,
    has_overrides: AtomicBool,
    aborted: AtomicBool,
    nodes_lost: AtomicUsize,
    splits_rescheduled: AtomicUsize,
}

impl Coordinator {
    /// Create a coordinator over a job's splits.
    pub fn new(splits: Vec<InputSplit>) -> Self {
        let total = splits.len();
        Coordinator {
            slots: Mutex::new(
                splits
                    .into_iter()
                    .map(|split| Slot {
                        split,
                        state: SlotState::Pending,
                        spec: None,
                        claimed_at: None,
                    })
                    .collect(),
            ),
            total,
            supervision: None,
            speculation: None,
            has_overrides: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            nodes_lost: AtomicUsize::new(0),
            splits_rescheduled: AtomicUsize::new(0),
        }
    }

    /// Arm liveness tracking and the run ledger for an `nodes`-node job
    /// with `total_partitions` global partitions. `store`, when given, is
    /// told about node deaths so DFS reads fail over to surviving
    /// replicas.
    pub fn enable_supervision(
        &mut self,
        nodes: u32,
        total_partitions: u32,
        node_timeout: Duration,
        store: Option<Arc<dyn FileStore>>,
    ) {
        let now = Instant::now();
        self.supervision = Some(Supervision {
            nodes,
            total_partitions,
            node_timeout,
            store,
            live: Mutex::new(Liveness {
                beats: vec![now; nodes as usize],
                dead: HashSet::new(),
                mapping: (0..nodes).collect(),
                satisfied: HashSet::new(),
                owner_override: HashMap::new(),
            }),
            ledger: Mutex::new(HashMap::new()),
        });
    }

    /// Whether supervision is armed.
    pub fn supervised(&self) -> bool {
        self.supervision.is_some()
    }

    /// Arm the speculation controller (no-op when `cfg.enabled` is false).
    /// Requires supervision: speculation reuses the run ledger and
    /// receiver de-dup to keep clone output byte-identical.
    pub fn enable_speculation(&mut self, cfg: SpeculationConfig) {
        if !cfg.enabled {
            return;
        }
        self.speculation = Some(Speculation {
            cfg,
            durations: Mutex::new(Vec::new()),
            last_launch: Mutex::new(None),
            launched: AtomicUsize::new(0),
            won: AtomicUsize::new(0),
            cancelled: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            tracer: RwLock::new(None),
        });
    }

    /// Arm (or disarm) the tracer the speculation controller emits
    /// `spec-launched` / `spec-resolved` marks to, on the speculating
    /// node's coordinator lane.
    pub fn arm_spec_tracer(&self, tracer: Option<Arc<Tracer>>) {
        if let Some(spec) = &self.speculation {
            *spec.tracer.write() = tracer;
        }
    }

    /// Total splits in the job.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Splits not currently handed out (requeued splits count again).
    pub fn remaining(&self) -> usize {
        self.slots
            .lock()
            .iter()
            .filter(|s| s.state == SlotState::Pending)
            .count()
    }

    /// Claim the next split for `node`: local-first, then any. With
    /// speculation armed and no pending work left, a node may instead be
    /// handed a clone of a straggling claim (see
    /// [`Coordinator::enable_speculation`]).
    pub fn next_for(&self, node: NodeId) -> Option<InputSplit> {
        {
            let mut slots = self.slots.lock();
            let pending = |s: &Slot| s.state == SlotState::Pending;
            let idx = slots
                .iter()
                .position(|s| pending(s) && s.split.is_local_to(node))
                .or_else(|| slots.iter().position(pending));
            if let Some(idx) = idx {
                slots[idx].state = SlotState::Claimed(node.0);
                slots[idx].claimed_at = Some(Instant::now());
                slots[idx].spec = None;
                return Some(slots[idx].split.clone());
            }
            self.speculation.as_ref()?;
        }
        // Dead set gathered outside the slots lock (lock order: `live`
        // before `slots`); candidates re-checked under the lock.
        let dead = self.dead_nodes();
        let mut slots = self.slots.lock();
        self.speculate_locked(&mut slots, node, &dead)
    }

    /// Pick the oldest outstanding claim that crossed the straggler
    /// threshold and clone it for `node`. Caller holds the slots lock.
    fn speculate_locked(
        &self,
        slots: &mut [Slot],
        node: NodeId,
        dead: &HashSet<u32>,
    ) -> Option<InputSplit> {
        let spec = self.speculation.as_ref()?;
        if dead.contains(&node.0) || spec.launched.load(Ordering::Relaxed) >= spec.cfg.budget {
            return None;
        }
        if let Some(at) = *spec.last_launch.lock() {
            if at.elapsed() < spec.cfg.backoff {
                return None;
            }
        }
        // The threshold is a percentile of the median completed-claim
        // duration; with fewer than 3 completions there is no meaningful
        // baseline yet.
        let threshold = {
            let durs = spec.durations.lock();
            if durs.len() < 3 {
                return None;
            }
            let mut sorted = durs.clone();
            sorted.sort();
            (sorted[sorted.len() / 2] * spec.cfg.threshold_pct / 100).max(spec.cfg.min_runtime)
        };
        let idx = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| match s.state {
                SlotState::Claimed(c) => {
                    c != node.0
                        && s.spec.is_none()
                        && !dead.contains(&c)
                        && s.claimed_at.is_some_and(|t| t.elapsed() > threshold)
                }
                _ => false,
            })
            .max_by_key(|(_, s)| s.claimed_at.map(|t| t.elapsed()))
            .map(|(i, _)| i)?;
        let slot = &mut slots[idx];
        slot.spec = Some(node.0);
        spec.launched.fetch_add(1, Ordering::Relaxed);
        *spec.last_launch.lock() = Some(Instant::now());
        if let Some(t) = spec.tracer.read().as_ref() {
            t.lane(spec_lane(node.0)).instant(MarkId::SpecLaunched {
                block: slot.split.block as u64,
            });
        }
        Some(slot.split.clone())
    }

    /// Count a speculation outcome and emit its `spec-resolved` mark on
    /// `node`'s coordinator lane.
    fn resolve_spec(&self, node: u32, block: usize, outcome: &'static str) {
        let Some(spec) = &self.speculation else {
            return;
        };
        match outcome {
            "won" => spec.won.fetch_add(1, Ordering::Relaxed),
            "cancelled" => spec.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => spec.failed.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(t) = spec.tracer.read().as_ref() {
            t.lane(spec_lane(node)).instant(MarkId::SpecResolved {
                block: block as u64,
                outcome,
            });
        }
    }

    /// Record that `node` fully processed the split for `block`: all its
    /// runs are recorded in the ledger and delivered or retained. Resolves
    /// a speculation race first-finisher-wins. No-op if the claim was
    /// revoked in the meantime (the claimant was declared dead and the
    /// split requeued) or another attempt already completed the split.
    pub fn complete_split(&self, node: NodeId, block: usize) {
        let mut slots = self.slots.lock();
        let Some(slot) = slots.iter_mut().find(|s| {
            s.split.block == block
                && match s.state {
                    SlotState::Claimed(c) => c == node.0 || s.spec == Some(node.0),
                    _ => false,
                }
        }) else {
            return;
        };
        let age = slot.claimed_at.map(|t| t.elapsed());
        match slot.state {
            SlotState::Claimed(c) if c == node.0 => {
                // The primary finished first: cancel any outstanding clone.
                if let Some(s) = slot.spec.take() {
                    self.resolve_spec(s, block, "cancelled");
                }
            }
            _ => {
                // The clone beat a still-live primary.
                slot.spec = None;
                self.resolve_spec(node.0, block, "won");
            }
        }
        slot.state = SlotState::Complete(node.0);
        if let (Some(spec), Some(age)) = (&self.speculation, age) {
            spec.durations.lock().push(age);
        }
    }

    /// Whether another attempt already completed the split for `block`:
    /// `node`'s in-flight work on it is waste and its kernel launch can be
    /// skipped (the run ledger and de-dup discard its output anyway).
    pub fn is_superseded(&self, node: NodeId, block: usize) -> bool {
        if self.speculation.is_none() {
            return false;
        }
        self.slots.lock().iter().any(|s| {
            s.split.block == block && matches!(s.state, SlotState::Complete(x) if x != node.0)
        })
    }

    /// Final speculation accounting for the job report.
    pub fn speculation_report(&self) -> SpeculationReport {
        match &self.speculation {
            Some(s) => SpeculationReport {
                launched: s.launched.load(Ordering::Relaxed),
                won: s.won.load(Ordering::Relaxed),
                cancelled: s.cancelled.load(Ordering::Relaxed),
                failed: s.failed.load(Ordering::Relaxed),
            },
            None => SpeculationReport::default(),
        }
    }

    /// Whether every split has been fully processed by a (still-credited)
    /// node. Reverts to `false` if a completer dies and its splits requeue.
    pub fn map_complete(&self) -> bool {
        self.slots
            .lock()
            .iter()
            .all(|s| matches!(s.state, SlotState::Complete(_)))
    }

    /// Post a liveness heartbeat for `node`.
    pub fn heartbeat(&self, node: NodeId) {
        if let Some(sup) = &self.supervision {
            let mut live = sup.live.lock();
            let at = &mut live.beats[node.0 as usize];
            *at = Instant::now();
        }
    }

    /// Declare any node whose last heartbeat is older than `node_timeout`
    /// dead, requeueing its splits and adopting its partitions. Cheap when
    /// nothing changed; any supervised wait loop may call it.
    pub fn scan_liveness(&self) {
        let Some(sup) = &self.supervision else { return };
        let mut live = sup.live.lock();
        let stale: Vec<u32> = (0..sup.nodes)
            .filter(|n| !live.dead.contains(n))
            .filter(|&n| live.beats[n as usize].elapsed() > sup.node_timeout)
            .collect();
        for node in stale {
            self.mark_dead_locked(sup, &mut live, node);
        }
    }

    fn mark_dead_locked(&self, sup: &Supervision, live: &mut Liveness, node: u32) {
        if !live.dead.insert(node) {
            return;
        }
        live.mapping.remove(&node);
        self.nodes_lost.fetch_add(1, Ordering::Relaxed);

        // Requeue everything the dead node claimed or completed: its local
        // shuffle state (runs it produced for itself, runs it received) is
        // gone, so its completed splits must be re-executed too.
        let requeued = {
            let mut slots = self.slots.lock();
            let mut n = 0;
            for slot in slots.iter_mut() {
                match slot.state {
                    SlotState::Claimed(x) if x == node => {
                        if let Some(s) = slot.spec.take() {
                            if !live.dead.contains(&s) {
                                // A live clone is mid-flight: promote it to
                                // primary instead of requeueing — it won
                                // the race against its dead primary.
                                slot.state = SlotState::Claimed(s);
                                slot.claimed_at = Some(Instant::now());
                                self.resolve_spec(s, slot.split.block, "won");
                                continue;
                            }
                        }
                        slot.state = SlotState::Pending;
                        slot.claimed_at = None;
                        n += 1;
                    }
                    SlotState::Complete(x) if x == node => {
                        slot.state = SlotState::Pending;
                        slot.spec = None;
                        slot.claimed_at = None;
                        n += 1;
                    }
                    SlotState::Claimed(_) if slot.spec == Some(node) => {
                        // The speculating node died; the primary races on
                        // alone.
                        slot.spec = None;
                        self.resolve_spec(node, slot.split.block, "failed");
                    }
                    _ => {}
                }
            }
            n
        };
        self.splits_rescheduled
            .fetch_add(requeued, Ordering::Relaxed);

        // Adopt the dead node's partitions onto the next live node on the
        // ring after it.
        let adopter = (1..sup.nodes)
            .map(|d| (node + d) % sup.nodes)
            .find(|cand| !live.dead.contains(cand));
        if let Some(adopter) = adopter {
            let mut adopted = false;
            for gp in 0..sup.total_partitions {
                let owner = live
                    .owner_override
                    .get(&gp)
                    .copied()
                    .unwrap_or_else(|| partition_owner(gp, sup.nodes));
                if owner == node {
                    live.owner_override.insert(gp, adopter);
                    adopted = true;
                }
            }
            if adopted {
                self.has_overrides.store(true, Ordering::Release);
            }
        }

        if let Some(store) = &sup.store {
            store.mark_node_dead(NodeId(node));
        }
    }

    /// Whether `node` has been declared dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        match &self.supervision {
            Some(sup) => sup.live.lock().dead.contains(&node.0),
            None => false,
        }
    }

    /// The set of nodes declared dead so far.
    pub fn dead_nodes(&self) -> HashSet<u32> {
        match &self.supervision {
            Some(sup) => sup.live.lock().dead.clone(),
            None => HashSet::new(),
        }
    }

    /// Record that `node` left its map input loop (normally or by dying):
    /// it will not claim further splits.
    pub fn exit_map(&self, node: NodeId) {
        if let Some(sup) = &self.supervision {
            sup.live.lock().mapping.remove(&node.0);
        }
    }

    /// `true` when splits remain unprocessed but no node can claim them
    /// anymore (every node left its input loop or died) — the job cannot
    /// recover by re-execution and must fail over to a typed error rather
    /// than wait forever.
    pub fn map_stalled(&self) -> bool {
        let Some(sup) = &self.supervision else {
            return false;
        };
        let mappers = sup.live.lock().mapping.is_empty();
        mappers && !self.map_complete()
    }

    /// Current live owner of global `partition` (hash owner unless the
    /// partition was adopted after a death).
    pub fn owner_of(&self, partition: u32, nodes: u32) -> u32 {
        if !self.has_overrides.load(Ordering::Acquire) {
            return partition_owner(partition, nodes);
        }
        let Some(sup) = &self.supervision else {
            return partition_owner(partition, nodes);
        };
        sup.live
            .lock()
            .owner_override
            .get(&partition)
            .copied()
            .unwrap_or_else(|| partition_owner(partition, nodes))
    }

    /// Ledger write: `producer` has produced (or re-produced) run `key`.
    /// Called before the run is retained/sent, so the ledger never misses
    /// a run a receiver might be owed.
    pub fn record_run(&self, key: RunKey, producer: u32) {
        if let Some(sup) = &self.supervision {
            sup.ledger.lock().insert(key, producer);
        }
    }

    /// Runs owed to `node` (it owns their partition) that it has not
    /// admitted, grouped by live producer, producers sorted. Runs whose
    /// recorded producer is dead are omitted: they are covered by split
    /// re-execution, which overwrites their ledger entries with a live
    /// producer.
    pub fn missing_runs_for(
        &self,
        node: u32,
        nodes: u32,
        received: &HashSet<RunKey>,
    ) -> Vec<(u32, Vec<RunTag>)> {
        let Some(sup) = &self.supervision else {
            return Vec::new();
        };
        let ledger = sup.ledger.lock();
        let live = sup.live.lock();
        let mut by_producer: HashMap<u32, Vec<RunTag>> = HashMap::new();
        for (key, &producer) in ledger.iter() {
            if live.dead.contains(&producer) || received.contains(key) {
                continue;
            }
            let owner = live
                .owner_override
                .get(&key.partition)
                .copied()
                .unwrap_or_else(|| partition_owner(key.partition, nodes));
            if owner == node {
                by_producer
                    .entry(producer)
                    .or_default()
                    .push(key.tag(producer));
            }
        }
        let mut out: Vec<_> = by_producer.into_iter().collect();
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Record that `node`'s shuffle reception is complete (all owed runs
    /// admitted).
    pub fn mark_shuffle_satisfied(&self, node: NodeId) {
        if let Some(sup) = &self.supervision {
            sup.live.lock().satisfied.insert(node.0);
        }
    }

    /// Whether every live node's shuffle reception is complete. Receivers
    /// keep serving `Resend` requests until this holds, so no node stops
    /// serving while a peer still needs its retention buffer.
    pub fn all_live_satisfied(&self, nodes: u32) -> bool {
        let Some(sup) = &self.supervision else {
            return true;
        };
        let live = sup.live.lock();
        (0..nodes).all(|n| live.dead.contains(&n) || live.satisfied.contains(&n))
    }

    /// Abort the job: every supervised loop unwinds at its next check.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// Whether the job has been aborted.
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Nodes declared dead during the job.
    pub fn nodes_lost(&self) -> usize {
        self.nodes_lost.load(Ordering::Relaxed)
    }

    /// Splits requeued because their node died (claimed and completed).
    pub fn splits_rescheduled(&self) -> usize {
        self.splits_rescheduled.load(Ordering::Relaxed)
    }
}

/// Node `node`'s coordinator lane (speculation marks land here).
fn spec_lane(node: u32) -> LaneId {
    LaneId {
        job: 0,
        node,
        realm: Realm::Coordinator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(block: usize, locations: Vec<u32>) -> InputSplit {
        InputSplit {
            path: "/in".into(),
            block,
            len: 100,
            records: 10,
            locations: locations.into_iter().map(NodeId).collect(),
        }
    }

    #[test]
    fn prefers_local_splits() {
        let c = Coordinator::new(vec![
            split(0, vec![1]),
            split(1, vec![0]),
            split(2, vec![1]),
        ]);
        let first = c.next_for(NodeId(0)).unwrap();
        assert_eq!(first.block, 1, "node 0 should get its local split first");
        assert_eq!(c.remaining(), 2);
    }

    #[test]
    fn falls_back_to_remote_work() {
        let c = Coordinator::new(vec![split(0, vec![1]), split(1, vec![1])]);
        assert!(c.next_for(NodeId(0)).is_some());
        assert!(c.next_for(NodeId(0)).is_some());
        assert!(c.next_for(NodeId(0)).is_none());
    }

    #[test]
    fn every_split_is_handed_out_exactly_once() {
        let c = Coordinator::new((0..20).map(|i| split(i, vec![(i % 4) as u32])).collect());
        let mut seen = Vec::new();
        let mut turn = 0u32;
        while let Some(s) = c.next_for(NodeId(turn % 4)) {
            seen.push(s.block);
            turn += 1;
        }
        seen.sort();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_claims_are_disjoint() {
        let c = std::sync::Arc::new(Coordinator::new(
            (0..100).map(|i| split(i, vec![(i % 4) as u32])).collect(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(s) = c.next_for(NodeId(n)) {
                        got.push(s.block);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    fn supervised(nodes: u32, parts: u32, splits: Vec<InputSplit>) -> Coordinator {
        let mut c = Coordinator::new(splits);
        c.enable_supervision(nodes, parts, Duration::from_millis(5), None);
        c
    }

    #[test]
    fn dead_node_work_is_requeued_onto_survivors() {
        let c = supervised(
            2,
            2,
            (0..4).map(|i| split(i, vec![(i % 2) as u32])).collect(),
        );
        // Node 1 claims two splits and completes one.
        let a = c.next_for(NodeId(1)).unwrap();
        let _b = c.next_for(NodeId(1)).unwrap();
        c.complete_split(NodeId(1), a.block);
        assert_eq!(c.remaining(), 2);

        // Node 1 stops heartbeating; node 0 stays alive.
        std::thread::sleep(Duration::from_millis(10));
        c.heartbeat(NodeId(0));
        c.scan_liveness();

        assert!(c.is_dead(NodeId(1)));
        assert!(!c.is_dead(NodeId(0)));
        assert_eq!(c.nodes_lost(), 1);
        // Both its splits — claimed AND completed — are pending again.
        assert_eq!(c.splits_rescheduled(), 2);
        assert_eq!(c.remaining(), 4);
        assert!(!c.map_complete());

        // The survivor can claim and finish everything.
        let mut done = 0;
        while let Some(s) = c.next_for(NodeId(0)) {
            c.complete_split(NodeId(0), s.block);
            done += 1;
        }
        assert_eq!(done, 4);
        assert!(c.map_complete());
        // Scanning again does not double-count the same death.
        c.heartbeat(NodeId(0));
        c.scan_liveness();
        assert_eq!(c.nodes_lost(), 1);
    }

    #[test]
    fn dead_nodes_partitions_are_adopted_by_the_ring() {
        let c = supervised(4, 8, vec![split(0, vec![0])]);
        for n in 0..4 {
            assert_eq!(c.owner_of(n, 4), n, "hash owners before any death");
        }
        std::thread::sleep(Duration::from_millis(10));
        for n in [0u32, 2, 3] {
            c.heartbeat(NodeId(n));
        }
        c.scan_liveness();
        assert!(c.is_dead(NodeId(1)));
        // Node 1 owned global partitions 1 and 5; node 2 adopts both.
        assert_eq!(c.owner_of(1, 4), 2);
        assert_eq!(c.owner_of(5, 4), 2);
        // Other owners unchanged.
        assert_eq!(c.owner_of(0, 4), 0);
        assert_eq!(c.owner_of(2, 4), 2);
        assert_eq!(c.owner_of(7, 4), 3);
    }

    #[test]
    fn ledger_reports_missing_runs_by_live_producer() {
        let c = supervised(2, 2, vec![split(0, vec![0]), split(1, vec![1])]);
        let k0 = RunKey {
            partition: 0,
            block: 0,
            lane: 0,
        };
        let k1 = RunKey {
            partition: 0,
            block: 1,
            lane: 0,
        };
        let k2 = RunKey {
            partition: 1,
            block: 0,
            lane: 0,
        };
        c.record_run(k0, 0);
        c.record_run(k1, 1);
        c.record_run(k2, 0);

        // Node 0 owns partition 0 and has admitted nothing: it is owed k0
        // (from itself) and k1 (from node 1).
        let missing = c.missing_runs_for(0, 2, &HashSet::new());
        assert_eq!(missing.len(), 2);
        assert_eq!(missing[0].0, 0);
        assert_eq!(missing[0].1, vec![k0.tag(0)]);
        assert_eq!(missing[1].0, 1);
        assert_eq!(missing[1].1, vec![k1.tag(1)]);

        // Once admitted, nothing is owed.
        let have: HashSet<RunKey> = [k0, k1].into_iter().collect();
        assert!(c.missing_runs_for(0, 2, &have).is_empty());

        // A dead producer's runs are not re-requestable (re-execution
        // covers them), so they drop out of the scan.
        std::thread::sleep(Duration::from_millis(10));
        c.heartbeat(NodeId(0));
        c.scan_liveness();
        assert!(c.is_dead(NodeId(1)));
        let missing = c.missing_runs_for(0, 2, &HashSet::new());
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].0, 0);

        // Re-execution overwrites the dead producer; the run is owed again
        // — now from the survivor. Partition 1's adoption also routes k2
        // to node 0.
        c.record_run(k1, 0);
        let missing = c.missing_runs_for(0, 2, &HashSet::new());
        assert_eq!(missing.len(), 1);
        let (producer, mut tags) = missing.into_iter().next().unwrap();
        assert_eq!(producer, 0);
        tags.sort_by_key(|t| (t.partition, t.block));
        assert_eq!(tags, vec![k0.tag(0), k1.tag(0), k2.tag(0)]);
    }

    #[test]
    fn shuffle_satisfaction_ignores_the_dead() {
        let c = supervised(3, 3, vec![split(0, vec![0])]);
        assert!(!c.all_live_satisfied(3));
        c.mark_shuffle_satisfied(NodeId(0));
        c.mark_shuffle_satisfied(NodeId(2));
        assert!(!c.all_live_satisfied(3), "node 1 not satisfied, not dead");
        std::thread::sleep(Duration::from_millis(10));
        c.heartbeat(NodeId(0));
        c.heartbeat(NodeId(2));
        c.scan_liveness();
        assert!(c.all_live_satisfied(3));
    }

    #[test]
    fn map_stall_is_detected_when_no_mapper_can_requeue() {
        let c = supervised(2, 2, vec![split(0, vec![0]), split(1, vec![1])]);
        assert!(!c.map_stalled(), "all nodes still mapping");
        let s0 = c.next_for(NodeId(0)).unwrap();
        c.complete_split(NodeId(0), s0.block);
        let s1 = c.next_for(NodeId(1)).unwrap();
        c.complete_split(NodeId(1), s1.block);
        c.exit_map(NodeId(0));
        c.exit_map(NodeId(1));
        assert!(!c.map_stalled(), "map is complete, not stalled");
        // Node 1 dies after completion: its split requeues with nobody
        // left to claim it.
        std::thread::sleep(Duration::from_millis(10));
        c.heartbeat(NodeId(0));
        c.scan_liveness();
        assert!(c.map_stalled());
    }

    fn speculative(nodes: u32, splits: Vec<InputSplit>, budget: usize) -> Coordinator {
        let mut c = Coordinator::new(splits);
        c.enable_supervision(nodes, nodes, Duration::from_millis(5), None);
        c.enable_speculation(SpeculationConfig {
            enabled: true,
            threshold_pct: 100,
            min_runtime: Duration::ZERO,
            budget,
            backoff: Duration::ZERO,
        });
        c
    }

    /// Node 0 completes three splits fast (establishing the median), node
    /// 1 sits on one claim long enough to cross the threshold.
    fn straggler_setup(budget: usize) -> (Coordinator, usize) {
        let c = speculative(2, (0..4).map(|i| split(i, vec![0])).collect(), budget);
        let straggling = c.next_for(NodeId(1)).unwrap().block;
        for _ in 0..3 {
            let s = c.next_for(NodeId(0)).unwrap();
            c.complete_split(NodeId(0), s.block);
        }
        std::thread::sleep(Duration::from_millis(2));
        (c, straggling)
    }

    #[test]
    fn idle_node_speculates_on_a_straggler() {
        let (c, straggling) = straggler_setup(4);
        let clone = c.next_for(NodeId(0)).unwrap();
        assert_eq!(clone.block, straggling);
        assert_eq!(c.speculation_report().launched, 1);
        // The same straggler is not cloned twice.
        assert!(c.next_for(NodeId(0)).is_none());
    }

    #[test]
    fn primary_finishing_first_cancels_the_clone() {
        let (c, straggling) = straggler_setup(4);
        let _clone = c.next_for(NodeId(0)).unwrap();
        c.complete_split(NodeId(1), straggling);
        // The clone's late completion is a stale no-op.
        c.complete_split(NodeId(0), straggling);
        let r = c.speculation_report();
        assert_eq!((r.launched, r.won, r.cancelled, r.failed), (1, 0, 1, 0));
        assert!(r.balanced());
        assert!(c.map_complete());
        assert!(c.is_superseded(NodeId(0), straggling));
        assert!(!c.is_superseded(NodeId(1), straggling));
    }

    #[test]
    fn clone_finishing_first_wins_the_race() {
        let (c, straggling) = straggler_setup(4);
        let _clone = c.next_for(NodeId(0)).unwrap();
        c.complete_split(NodeId(0), straggling);
        // The straggling primary's late completion is a stale no-op.
        c.complete_split(NodeId(1), straggling);
        let r = c.speculation_report();
        assert_eq!((r.launched, r.won, r.cancelled, r.failed), (1, 1, 0, 0));
        assert!(r.balanced());
        assert!(c.map_complete());
        assert!(c.is_superseded(NodeId(1), straggling));
    }

    #[test]
    fn clone_is_promoted_when_the_primary_dies() {
        let (c, straggling) = straggler_setup(4);
        let _clone = c.next_for(NodeId(0)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        c.heartbeat(NodeId(0));
        c.scan_liveness();
        assert!(c.is_dead(NodeId(1)));
        // The straggler is NOT requeued — the clone carries it.
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.splits_rescheduled(), 0);
        c.complete_split(NodeId(0), straggling);
        let r = c.speculation_report();
        assert_eq!((r.launched, r.won, r.cancelled, r.failed), (1, 1, 0, 0));
        assert!(r.balanced());
        assert!(c.map_complete());
    }

    #[test]
    fn dead_speculator_counts_as_failed() {
        let (c, straggling) = straggler_setup(4);
        let _clone = c.next_for(NodeId(0)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        c.heartbeat(NodeId(1));
        c.scan_liveness();
        assert!(c.is_dead(NodeId(0)));
        // Node 0's own completed splits requeue; the straggler claim (node
        // 1's) survives with its clone gone.
        let r = c.speculation_report();
        assert_eq!((r.launched, r.won, r.cancelled, r.failed), (1, 0, 0, 1));
        assert!(r.balanced());
        c.complete_split(NodeId(1), straggling);
        assert!(!c.is_superseded(NodeId(1), straggling));
    }

    #[test]
    fn speculation_budget_is_enforced() {
        let c = speculative(3, (0..5).map(|i| split(i, vec![0])).collect(), 1);
        let a = c.next_for(NodeId(1)).unwrap().block;
        let b = c.next_for(NodeId(2)).unwrap().block;
        assert_ne!(a, b);
        for _ in 0..3 {
            let s = c.next_for(NodeId(0)).unwrap();
            c.complete_split(NodeId(0), s.block);
        }
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.next_for(NodeId(0)).is_some(), "first clone within budget");
        assert!(c.next_for(NodeId(0)).is_none(), "budget of 1 exhausted");
        assert_eq!(c.speculation_report().launched, 1);
    }

    #[test]
    fn no_speculation_without_a_median_baseline() {
        let c = speculative(2, (0..2).map(|i| split(i, vec![0])).collect(), 4);
        let s = c.next_for(NodeId(1)).unwrap();
        let _ = s;
        let t = c.next_for(NodeId(0)).unwrap();
        c.complete_split(NodeId(0), t.block);
        std::thread::sleep(Duration::from_millis(2));
        // Only one completion recorded — below the 3-sample floor.
        assert!(c.next_for(NodeId(0)).is_none());
        assert_eq!(c.speculation_report().launched, 0);
    }

    #[test]
    fn unsupervised_coordinator_reports_no_faults() {
        let c = Coordinator::new(vec![split(0, vec![0])]);
        assert!(!c.supervised());
        c.heartbeat(NodeId(0));
        c.scan_liveness();
        assert!(!c.is_dead(NodeId(0)));
        assert!(!c.map_stalled());
        assert_eq!(c.nodes_lost(), 0);
        assert_eq!(c.splits_rescheduled(), 0);
        assert!(c.all_live_satisfied(1));
        assert_eq!(c.owner_of(5, 2), partition_owner(5, 2));
    }
}
