//! Locality-aware split coordination.
//!
//! "Glasswing's job coordinator is like Hadoop's: both use a dedicated
//! master node; Glasswing's scheduler considers file affinity in its job
//! allocation." Nodes pull splits from the shared coordinator; a node is
//! preferentially given a split whose block it holds locally, falling back
//! to remote splits only when no local work remains.

use parking_lot::Mutex;

use gw_storage::{InputSplit, NodeId};

/// Shared split queue with locality preference.
pub struct Coordinator {
    inner: Mutex<Vec<Option<InputSplit>>>,
    total: usize,
}

impl Coordinator {
    /// Create a coordinator over a job's splits.
    pub fn new(splits: Vec<InputSplit>) -> Self {
        let total = splits.len();
        Coordinator {
            inner: Mutex::new(splits.into_iter().map(Some).collect()),
            total,
        }
    }

    /// Total splits in the job.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Splits not yet handed out.
    pub fn remaining(&self) -> usize {
        self.inner.lock().iter().filter(|s| s.is_some()).count()
    }

    /// Claim the next split for `node`: local-first, then any.
    pub fn next_for(&self, node: NodeId) -> Option<InputSplit> {
        let mut splits = self.inner.lock();
        // First pass: a split local to this node.
        let local_idx = splits
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| s.is_local_to(node)));
        let idx = local_idx.or_else(|| splits.iter().position(|s| s.is_some()))?;
        splits[idx].take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(block: usize, locations: Vec<u32>) -> InputSplit {
        InputSplit {
            path: "/in".into(),
            block,
            len: 100,
            records: 10,
            locations: locations.into_iter().map(NodeId).collect(),
        }
    }

    #[test]
    fn prefers_local_splits() {
        let c = Coordinator::new(vec![
            split(0, vec![1]),
            split(1, vec![0]),
            split(2, vec![1]),
        ]);
        let first = c.next_for(NodeId(0)).unwrap();
        assert_eq!(first.block, 1, "node 0 should get its local split first");
        assert_eq!(c.remaining(), 2);
    }

    #[test]
    fn falls_back_to_remote_work() {
        let c = Coordinator::new(vec![split(0, vec![1]), split(1, vec![1])]);
        assert!(c.next_for(NodeId(0)).is_some());
        assert!(c.next_for(NodeId(0)).is_some());
        assert!(c.next_for(NodeId(0)).is_none());
    }

    #[test]
    fn every_split_is_handed_out_exactly_once() {
        let c = Coordinator::new((0..20).map(|i| split(i, vec![(i % 4) as u32])).collect());
        let mut seen = Vec::new();
        let mut turn = 0u32;
        while let Some(s) = c.next_for(NodeId(turn % 4)) {
            seen.push(s.block);
            turn += 1;
        }
        seen.sort();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_claims_are_disjoint() {
        let c = std::sync::Arc::new(Coordinator::new(
            (0..100).map(|i| split(i, vec![(i % 4) as u32])).collect(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(s) = c.next_for(NodeId(n)) {
                        got.push(s.block);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
