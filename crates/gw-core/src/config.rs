//! The Configuration API (paper §III-F): "allows developers to specify key
//! job parameters ... input files ... which compute devices are to be used
//! and configure the pipeline buffering levels."

use gw_device::DeviceProfile;
use gw_pipeline::StageId;
use gw_trace::Advice;

use crate::collect::CollectorKind;

// The buffering level moved into the shared stage-graph executor (it is
// the executor's token-group depth); the historical `gw_core` path stays.
pub use gw_pipeline::Buffering;

/// Which duration the stage timers report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMode {
    /// Measured host wall time.
    Wall,
    /// Device/storage-model time (profile-transformed); equals wall for
    /// host CPU devices with free I/O models.
    Modeled,
}

/// Full job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Input file path in the job's file store.
    pub input: String,
    /// Output directory; each partition writes `{output}/part-r-{global}`.
    pub output: String,
    /// Compute device profile used by every node.
    pub device: DeviceProfile,
    /// Real host threads per node's device pool (caps the profile's
    /// compute units; in-process clusters share the machine, so keep
    /// `nodes * device_threads` within the host).
    pub device_threads: usize,
    /// Map kernel NDRange global size (work items per chunk).
    pub map_work_items: usize,
    /// Map kernel work-group size.
    pub work_group: usize,
    /// Pipeline buffering level.
    pub buffering: Buffering,
    /// Output-collection mechanism for the map kernel.
    pub collector: CollectorKind,
    /// Collector arena capacity in bytes (per in-flight chunk).
    pub collector_capacity: usize,
    /// Hash-table bucket count (hash-table collector only).
    pub hash_buckets: usize,
    /// Partitioning threads per node (the paper's `N`, Fig. 4a).
    pub partition_threads: usize,
    /// Partitions per node (the paper's `P`, Fig. 4b). The global partition
    /// count is `P * nodes`.
    pub partitions_per_node: u32,
    /// Background merger/flusher threads (the paper ties this to `P`).
    pub merger_threads: usize,
    /// Intermediate cache flush threshold, bytes.
    pub cache_threshold: usize,
    /// Maximum spill files per partition before compaction.
    pub max_spill_files: usize,
    /// Compress cached/spilled intermediate data.
    pub compress_intermediate: bool,
    /// Bound on resident intermediate bytes per node (paper §III-B's
    /// larger-than-memory regime). When set, it overrides
    /// `cache_threshold` via `IntermediateConfig::with_memory_budget`,
    /// sizes spill frames, and enables producer backpressure so peak
    /// resident intermediate bytes stay ≤ ~1.5× the budget regardless of
    /// partition size. `None` (default) keeps the explicit knobs.
    pub memory_budget: Option<usize>,
    /// Write a durability copy of map output to local disk (paper §III-E).
    pub durable_map_output: bool,
    /// Reduce: number of keys processed concurrently per kernel launch.
    pub reduce_concurrent_keys: usize,
    /// Reduce: keys each work item processes sequentially (amortises
    /// kernel launch overhead; paper Fig. 5).
    pub reduce_keys_per_thread: usize,
    /// Reduce: maximum values for one key per kernel invocation; larger
    /// value lists carry scratch state across invocations.
    pub reduce_max_values_per_chunk: usize,
    /// Reduce: work items cooperating on one key's value chunk (the
    /// paper's first form of reduce parallelism, "advantageous to
    /// compute-intensive applications that can benefit from parallel
    /// reduction"). Only effective when the application's
    /// [`crate::GwApp::merge_states`] declares the reduction associative;
    /// `1` keeps per-key reduction sequential.
    pub reduce_threads_per_key: usize,
    /// Replication factor for job output files.
    pub output_replication: usize,
    /// Output file block size.
    pub output_block_size: usize,
    /// Which durations timers report.
    pub timing: TimingMode,
    /// Keep the Stage (H2D) and Retrieve (D2H) stages live even on
    /// unified-memory devices, where the builder normally fuses them out
    /// of the stage graph as pass-throughs. The transfers still model to
    /// zero time, so fused and unfused graphs report the same totals;
    /// this switch exists to verify exactly that.
    pub disable_stage_fusion: bool,
    /// Map-task re-execution budget: a chunk whose kernel fails is
    /// discarded and re-executed up to this many times before the job
    /// fails (paper §III-E: "if a task fails, its partial output is
    /// discarded and its input is rescheduled for processing"). `0`
    /// matches the paper's unmodified system (no failure handling). The
    /// same budget governs reduce-task re-execution.
    pub max_task_retries: usize,
    /// Wall-clock deadline for the whole job. When set, a master-side
    /// watchdog aborts the job and returns
    /// [`crate::EngineError::JobTimeout`] once it expires — the job never
    /// hangs, even when recovery itself gets stuck. `None` (the default)
    /// disables the watchdog.
    pub job_deadline: Option<std::time::Duration>,
    /// Interval at which each node posts a liveness heartbeat to the
    /// coordinator (fault-tolerant mode only).
    pub heartbeat_interval: std::time::Duration,
    /// A node whose last heartbeat is older than this is declared dead and
    /// its work rescheduled. Must exceed `heartbeat_interval`.
    pub node_timeout: std::time::Duration,
    /// Speculative re-execution of straggler map tasks (DESIGN.md §3.8).
    pub speculation: SpeculationConfig,
    /// Worker-lane counts for the map pipeline's widenable stages
    /// (DESIGN.md §3.9). The default single-lane plan reproduces the
    /// historical pipeline exactly.
    pub lane_plan: LanePlan,
}

/// Worker-lane counts per map-pipeline stage slot: the vertical-scaling
/// knob (DESIGN.md §3.9). A widened slot runs `lanes` copies of the
/// stage, distributes chunks round-robin by sequence number and
/// reassembles them in sequence order at the slot's exit, so job output
/// bytes are identical at every lane count.
///
/// Only Input, Kernel and Partition widen. Stage (H2D) and Retrieve
/// (D2H) stay single-lane: they are fused out of the graph on unified
/// memory, and on discrete memory they serialize on the one transfer
/// link anyway. Reduce-side stages also stay single-lane — the reduce
/// kernel carries per-key scratch state across value chunks, which
/// requires chunks of one key to arrive FIFO at a single stage instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LanePlan {
    /// Lanes for the Input stage (claiming is serialized in sequence
    /// order; split read+parse overlaps across lanes).
    pub input: usize,
    /// Lanes for the map Kernel stage.
    pub kernel: usize,
    /// Lanes for the Partition stage.
    pub partition: usize,
}

impl Default for LanePlan {
    fn default() -> Self {
        LanePlan {
            input: 1,
            kernel: 1,
            partition: 1,
        }
    }
}

impl LanePlan {
    /// Upper bound on any stage's lane count (sanity cap, not a tuning
    /// recommendation).
    pub const MAX_LANES: usize = 16;

    /// The historical single-lane pipeline.
    pub fn single() -> Self {
        LanePlan::default()
    }

    /// `true` when every stage runs one lane (the executor spawns the
    /// exact historical thread set).
    pub fn is_single(&self) -> bool {
        self.input == 1 && self.kernel == 1 && self.partition == 1
    }

    /// Lane count for a map stage slot. Non-widenable slots report 1.
    pub fn lanes_for(&self, stage: StageId) -> usize {
        match stage {
            StageId::Input => self.input,
            StageId::Kernel => self.kernel,
            StageId::Partition => self.partition,
            StageId::Stage | StageId::Retrieve => 1,
        }
    }

    /// Set one stage's lane count (non-widenable slots are left at 1).
    pub fn with_stage(mut self, stage: StageId, lanes: usize) -> Self {
        match stage {
            StageId::Input => self.input = lanes,
            StageId::Kernel => self.kernel = lanes,
            StageId::Partition => self.partition = lanes,
            StageId::Stage | StageId::Retrieve => {}
        }
        self
    }

    /// Whether a map stage slot can be widened at all.
    pub fn widenable(stage: StageId) -> bool {
        matches!(stage, StageId::Input | StageId::Kernel | StageId::Partition)
    }

    /// Close the advisor loop (auto-lanes): choose lane counts from a
    /// prior run's [`Advice`]. Doubles the lanes of the advisor-named
    /// bottleneck stage when it is widenable and its predicted doubling
    /// speedup clears 2%; otherwise falls back to the best widenable
    /// entry in `lane_scaling`; stays single-lane when no stage clears
    /// the bar (adding lanes costs threads and reorder pressure, so a
    /// sub-2% prediction is not worth acting on).
    pub fn from_advice(advice: &Advice) -> Self {
        const MIN_GAIN: f64 = 1.02;
        let pick = advice
            .bottleneck
            .filter(|s| Self::widenable(*s) && advice.doubling_speedup(*s) >= MIN_GAIN)
            .or_else(|| {
                advice
                    .lane_scaling
                    .iter()
                    .filter(|(s, x)| Self::widenable(*s) && *x >= MIN_GAIN)
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(s, _)| *s)
            });
        match pick {
            Some(stage) => LanePlan::single().with_stage(stage, 2),
            None => LanePlan::single(),
        }
    }

    /// Validate lane counts; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, lanes) in [
            ("input", self.input),
            ("kernel", self.kernel),
            ("partition", self.partition),
        ] {
            if lanes == 0 {
                return Err(format!("lane_plan.{name} must be ≥ 1"));
            }
            if lanes > Self::MAX_LANES {
                return Err(format!(
                    "lane_plan.{name} exceeds the {} lane cap",
                    Self::MAX_LANES
                ));
            }
        }
        Ok(())
    }
}

/// Policy for speculative re-execution of straggler tasks.
///
/// Idle nodes clone a task whose claim has been outstanding longer than
/// `threshold_pct`% of the median completed-task duration (and at least
/// `min_runtime`). Clones race their primaries first-finisher-wins; the
/// tagged-run ledger plus receiver-side de-dup guarantee output bytes are
/// identical with or without speculation.
#[derive(Debug, Clone)]
pub struct SpeculationConfig {
    /// Master switch. Off by default: speculation costs duplicate work.
    pub enabled: bool,
    /// A task is a straggler once its claim age exceeds this percent of
    /// the median completed-task duration (150 = 1.5× the median). Must be
    /// ≥ 100 when enabled.
    pub threshold_pct: u32,
    /// Claim-age floor below which a task is never speculated, so short
    /// tasks don't trip the percentile on timer noise.
    pub min_runtime: std::time::Duration,
    /// Maximum speculative launches per job. Must be ≥ 1 when enabled.
    pub budget: usize,
    /// Minimum pause between consecutive speculative launches.
    pub backoff: std::time::Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: false,
            threshold_pct: 150,
            min_runtime: std::time::Duration::from_millis(20),
            budget: 4,
            backoff: std::time::Duration::from_millis(25),
        }
    }
}

impl JobConfig {
    /// A configuration with the paper's defaults (double buffering, hash
    /// table + combiner handled by the app, HDFS-style replication 3) and
    /// host-appropriate sizes.
    pub fn new(input: impl Into<String>, output: impl Into<String>) -> Self {
        JobConfig {
            input: input.into(),
            output: output.into(),
            device: DeviceProfile::host(),
            device_threads: 2,
            map_work_items: 64,
            work_group: 16,
            buffering: Buffering::Double,
            collector: CollectorKind::HashTable,
            collector_capacity: 8 << 20,
            hash_buckets: 4096,
            partition_threads: 2,
            partitions_per_node: 1,
            merger_threads: 1,
            cache_threshold: 32 << 20,
            max_spill_files: 8,
            compress_intermediate: true,
            memory_budget: None,
            durable_map_output: false,
            reduce_concurrent_keys: 256,
            reduce_keys_per_thread: 4,
            reduce_max_values_per_chunk: 4096,
            reduce_threads_per_key: 1,
            output_replication: 3,
            output_block_size: 8 << 20,
            timing: TimingMode::Wall,
            disable_stage_fusion: false,
            max_task_retries: 0,
            job_deadline: None,
            heartbeat_interval: std::time::Duration::from_millis(25),
            node_timeout: std::time::Duration::from_millis(1000),
            speculation: SpeculationConfig::default(),
            lane_plan: LanePlan::default(),
        }
    }

    /// Auto-lanes mode: adopt lane counts chosen from a prior run's
    /// advisor output (see [`LanePlan::from_advice`]).
    pub fn with_auto_lanes(mut self, advice: &Advice) -> Self {
        self.lane_plan = LanePlan::from_advice(advice);
        self
    }

    /// Validate invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.input.is_empty() {
            return Err("input path is empty".into());
        }
        if self.output.is_empty() {
            return Err("output path is empty".into());
        }
        if self.map_work_items == 0 || self.work_group == 0 {
            return Err("map NDRange sizes must be nonzero".into());
        }
        if self.partitions_per_node == 0 {
            return Err("at least one partition per node".into());
        }
        if self.partition_threads == 0 {
            return Err("at least one partitioning thread".into());
        }
        if self.reduce_concurrent_keys == 0
            || self.reduce_keys_per_thread == 0
            || self.reduce_max_values_per_chunk == 0
            || self.reduce_threads_per_key == 0
        {
            return Err("reduce parallelism parameters must be nonzero".into());
        }
        if self.collector_capacity < 1024 {
            return Err("collector capacity unreasonably small".into());
        }
        if self.memory_budget == Some(0) {
            return Err("memory_budget must be nonzero when set".into());
        }
        if self.output_replication == 0 {
            return Err("output replication must be ≥ 1".into());
        }
        if self.node_timeout <= self.heartbeat_interval {
            return Err("node_timeout must exceed heartbeat_interval".into());
        }
        if self.job_deadline == Some(std::time::Duration::ZERO) {
            return Err("job_deadline must be nonzero when set".into());
        }
        if self.speculation.enabled {
            if self.speculation.threshold_pct < 100 {
                return Err("speculation threshold must be ≥ 100% of the median".into());
            }
            if self.speculation.budget == 0 {
                return Err("speculation budget must be ≥ 1 when enabled".into());
            }
        }
        self.lane_plan.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(JobConfig::new("/in", "/out").validate(), Ok(()));
    }

    #[test]
    fn buffering_depths() {
        assert_eq!(Buffering::Single.depth(), 1);
        assert_eq!(Buffering::Double.depth(), 2);
        assert_eq!(Buffering::Triple.depth(), 3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = JobConfig::new("/in", "/out");
        c.partitions_per_node = 0;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("", "/out");
        c.partitions_per_node = 1;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.reduce_concurrent_keys = 0;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.output_replication = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn liveness_timing_is_validated() {
        let mut c = JobConfig::new("/in", "/out");
        c.node_timeout = c.heartbeat_interval;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.job_deadline = Some(std::time::Duration::ZERO);
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.job_deadline = Some(std::time::Duration::from_secs(60));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn lane_plan_is_validated() {
        let mut c = JobConfig::new("/in", "/out");
        assert!(c.lane_plan.is_single());
        c.lane_plan.kernel = 0;
        assert!(c.validate().is_err());
        c.lane_plan.kernel = LanePlan::MAX_LANES + 1;
        assert!(c.validate().is_err());
        c.lane_plan.kernel = 4;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn lane_plan_only_widens_widenable_stages() {
        let p = LanePlan::single()
            .with_stage(StageId::Stage, 4)
            .with_stage(StageId::Retrieve, 4)
            .with_stage(StageId::Input, 3);
        assert_eq!(p.lanes_for(StageId::Stage), 1);
        assert_eq!(p.lanes_for(StageId::Retrieve), 1);
        assert_eq!(p.lanes_for(StageId::Input), 3);
        assert_eq!(p.lanes_for(StageId::Kernel), 1);
        assert!(!p.is_single());
    }

    #[test]
    fn auto_lanes_follow_the_advisor() {
        // Bottleneck named and widenable: double exactly that stage.
        let advice = Advice {
            bottleneck: Some(StageId::Input),
            lane_scaling: vec![
                (StageId::Input, 1.28),
                (StageId::Kernel, 1.05),
                (StageId::Partition, 1.01),
            ],
            ..Default::default()
        };
        assert_eq!(
            LanePlan::from_advice(&advice),
            LanePlan {
                input: 2,
                kernel: 1,
                partition: 1
            }
        );
        // Bottleneck not widenable: fall back to the best widenable gain.
        let advice = Advice {
            bottleneck: Some(StageId::Retrieve),
            lane_scaling: vec![(StageId::Retrieve, 1.30), (StageId::Kernel, 1.10)],
            ..Default::default()
        };
        assert_eq!(LanePlan::from_advice(&advice).kernel, 2);
        // Nothing clears the 2% bar: stay single-lane.
        let advice = Advice {
            bottleneck: Some(StageId::Kernel),
            lane_scaling: vec![(StageId::Kernel, 1.01)],
            ..Default::default()
        };
        assert!(LanePlan::from_advice(&advice).is_single());
        assert!(JobConfig::new("/in", "/out")
            .with_auto_lanes(&advice)
            .lane_plan
            .is_single());
    }

    #[test]
    fn speculation_policy_is_validated() {
        let mut c = JobConfig::new("/in", "/out");
        c.speculation.enabled = true;
        assert_eq!(c.validate(), Ok(()));

        c.speculation.threshold_pct = 99;
        assert!(c.validate().is_err());

        c.speculation.threshold_pct = 150;
        c.speculation.budget = 0;
        assert!(c.validate().is_err());

        // Disabled plans skip the policy checks entirely.
        c.speculation.enabled = false;
        assert_eq!(c.validate(), Ok(()));
    }
}
