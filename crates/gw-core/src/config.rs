//! The Configuration API (paper §III-F): "allows developers to specify key
//! job parameters ... input files ... which compute devices are to be used
//! and configure the pipeline buffering levels."

use gw_device::DeviceProfile;

use crate::collect::CollectorKind;

// The buffering level moved into the shared stage-graph executor (it is
// the executor's token-group depth); the historical `gw_core` path stays.
pub use gw_pipeline::Buffering;

/// Which duration the stage timers report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMode {
    /// Measured host wall time.
    Wall,
    /// Device/storage-model time (profile-transformed); equals wall for
    /// host CPU devices with free I/O models.
    Modeled,
}

/// Full job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Input file path in the job's file store.
    pub input: String,
    /// Output directory; each partition writes `{output}/part-r-{global}`.
    pub output: String,
    /// Compute device profile used by every node.
    pub device: DeviceProfile,
    /// Real host threads per node's device pool (caps the profile's
    /// compute units; in-process clusters share the machine, so keep
    /// `nodes * device_threads` within the host).
    pub device_threads: usize,
    /// Map kernel NDRange global size (work items per chunk).
    pub map_work_items: usize,
    /// Map kernel work-group size.
    pub work_group: usize,
    /// Pipeline buffering level.
    pub buffering: Buffering,
    /// Output-collection mechanism for the map kernel.
    pub collector: CollectorKind,
    /// Collector arena capacity in bytes (per in-flight chunk).
    pub collector_capacity: usize,
    /// Hash-table bucket count (hash-table collector only).
    pub hash_buckets: usize,
    /// Partitioning threads per node (the paper's `N`, Fig. 4a).
    pub partition_threads: usize,
    /// Partitions per node (the paper's `P`, Fig. 4b). The global partition
    /// count is `P * nodes`.
    pub partitions_per_node: u32,
    /// Background merger/flusher threads (the paper ties this to `P`).
    pub merger_threads: usize,
    /// Intermediate cache flush threshold, bytes.
    pub cache_threshold: usize,
    /// Maximum spill files per partition before compaction.
    pub max_spill_files: usize,
    /// Compress cached/spilled intermediate data.
    pub compress_intermediate: bool,
    /// Write a durability copy of map output to local disk (paper §III-E).
    pub durable_map_output: bool,
    /// Reduce: number of keys processed concurrently per kernel launch.
    pub reduce_concurrent_keys: usize,
    /// Reduce: keys each work item processes sequentially (amortises
    /// kernel launch overhead; paper Fig. 5).
    pub reduce_keys_per_thread: usize,
    /// Reduce: maximum values for one key per kernel invocation; larger
    /// value lists carry scratch state across invocations.
    pub reduce_max_values_per_chunk: usize,
    /// Reduce: work items cooperating on one key's value chunk (the
    /// paper's first form of reduce parallelism, "advantageous to
    /// compute-intensive applications that can benefit from parallel
    /// reduction"). Only effective when the application's
    /// [`crate::GwApp::merge_states`] declares the reduction associative;
    /// `1` keeps per-key reduction sequential.
    pub reduce_threads_per_key: usize,
    /// Replication factor for job output files.
    pub output_replication: usize,
    /// Output file block size.
    pub output_block_size: usize,
    /// Which durations timers report.
    pub timing: TimingMode,
    /// Keep the Stage (H2D) and Retrieve (D2H) stages live even on
    /// unified-memory devices, where the builder normally fuses them out
    /// of the stage graph as pass-throughs. The transfers still model to
    /// zero time, so fused and unfused graphs report the same totals;
    /// this switch exists to verify exactly that.
    pub disable_stage_fusion: bool,
    /// Map-task re-execution budget: a chunk whose kernel fails is
    /// discarded and re-executed up to this many times before the job
    /// fails (paper §III-E: "if a task fails, its partial output is
    /// discarded and its input is rescheduled for processing"). `0`
    /// matches the paper's unmodified system (no failure handling). The
    /// same budget governs reduce-task re-execution.
    pub max_task_retries: usize,
    /// Wall-clock deadline for the whole job. When set, a master-side
    /// watchdog aborts the job and returns
    /// [`crate::EngineError::JobTimeout`] once it expires — the job never
    /// hangs, even when recovery itself gets stuck. `None` (the default)
    /// disables the watchdog.
    pub job_deadline: Option<std::time::Duration>,
    /// Interval at which each node posts a liveness heartbeat to the
    /// coordinator (fault-tolerant mode only).
    pub heartbeat_interval: std::time::Duration,
    /// A node whose last heartbeat is older than this is declared dead and
    /// its work rescheduled. Must exceed `heartbeat_interval`.
    pub node_timeout: std::time::Duration,
    /// Speculative re-execution of straggler map tasks (DESIGN.md §3.8).
    pub speculation: SpeculationConfig,
}

/// Policy for speculative re-execution of straggler tasks.
///
/// Idle nodes clone a task whose claim has been outstanding longer than
/// `threshold_pct`% of the median completed-task duration (and at least
/// `min_runtime`). Clones race their primaries first-finisher-wins; the
/// tagged-run ledger plus receiver-side de-dup guarantee output bytes are
/// identical with or without speculation.
#[derive(Debug, Clone)]
pub struct SpeculationConfig {
    /// Master switch. Off by default: speculation costs duplicate work.
    pub enabled: bool,
    /// A task is a straggler once its claim age exceeds this percent of
    /// the median completed-task duration (150 = 1.5× the median). Must be
    /// ≥ 100 when enabled.
    pub threshold_pct: u32,
    /// Claim-age floor below which a task is never speculated, so short
    /// tasks don't trip the percentile on timer noise.
    pub min_runtime: std::time::Duration,
    /// Maximum speculative launches per job. Must be ≥ 1 when enabled.
    pub budget: usize,
    /// Minimum pause between consecutive speculative launches.
    pub backoff: std::time::Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: false,
            threshold_pct: 150,
            min_runtime: std::time::Duration::from_millis(20),
            budget: 4,
            backoff: std::time::Duration::from_millis(25),
        }
    }
}

impl JobConfig {
    /// A configuration with the paper's defaults (double buffering, hash
    /// table + combiner handled by the app, HDFS-style replication 3) and
    /// host-appropriate sizes.
    pub fn new(input: impl Into<String>, output: impl Into<String>) -> Self {
        JobConfig {
            input: input.into(),
            output: output.into(),
            device: DeviceProfile::host(),
            device_threads: 2,
            map_work_items: 64,
            work_group: 16,
            buffering: Buffering::Double,
            collector: CollectorKind::HashTable,
            collector_capacity: 8 << 20,
            hash_buckets: 4096,
            partition_threads: 2,
            partitions_per_node: 1,
            merger_threads: 1,
            cache_threshold: 32 << 20,
            max_spill_files: 8,
            compress_intermediate: true,
            durable_map_output: false,
            reduce_concurrent_keys: 256,
            reduce_keys_per_thread: 4,
            reduce_max_values_per_chunk: 4096,
            reduce_threads_per_key: 1,
            output_replication: 3,
            output_block_size: 8 << 20,
            timing: TimingMode::Wall,
            disable_stage_fusion: false,
            max_task_retries: 0,
            job_deadline: None,
            heartbeat_interval: std::time::Duration::from_millis(25),
            node_timeout: std::time::Duration::from_millis(1000),
            speculation: SpeculationConfig::default(),
        }
    }

    /// Validate invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.input.is_empty() {
            return Err("input path is empty".into());
        }
        if self.output.is_empty() {
            return Err("output path is empty".into());
        }
        if self.map_work_items == 0 || self.work_group == 0 {
            return Err("map NDRange sizes must be nonzero".into());
        }
        if self.partitions_per_node == 0 {
            return Err("at least one partition per node".into());
        }
        if self.partition_threads == 0 {
            return Err("at least one partitioning thread".into());
        }
        if self.reduce_concurrent_keys == 0
            || self.reduce_keys_per_thread == 0
            || self.reduce_max_values_per_chunk == 0
            || self.reduce_threads_per_key == 0
        {
            return Err("reduce parallelism parameters must be nonzero".into());
        }
        if self.collector_capacity < 1024 {
            return Err("collector capacity unreasonably small".into());
        }
        if self.output_replication == 0 {
            return Err("output replication must be ≥ 1".into());
        }
        if self.node_timeout <= self.heartbeat_interval {
            return Err("node_timeout must exceed heartbeat_interval".into());
        }
        if self.job_deadline == Some(std::time::Duration::ZERO) {
            return Err("job_deadline must be nonzero when set".into());
        }
        if self.speculation.enabled {
            if self.speculation.threshold_pct < 100 {
                return Err("speculation threshold must be ≥ 100% of the median".into());
            }
            if self.speculation.budget == 0 {
                return Err("speculation budget must be ≥ 1 when enabled".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(JobConfig::new("/in", "/out").validate(), Ok(()));
    }

    #[test]
    fn buffering_depths() {
        assert_eq!(Buffering::Single.depth(), 1);
        assert_eq!(Buffering::Double.depth(), 2);
        assert_eq!(Buffering::Triple.depth(), 3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = JobConfig::new("/in", "/out");
        c.partitions_per_node = 0;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("", "/out");
        c.partitions_per_node = 1;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.reduce_concurrent_keys = 0;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.output_replication = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn liveness_timing_is_validated() {
        let mut c = JobConfig::new("/in", "/out");
        c.node_timeout = c.heartbeat_interval;
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.job_deadline = Some(std::time::Duration::ZERO);
        assert!(c.validate().is_err());

        let mut c = JobConfig::new("/in", "/out");
        c.job_deadline = Some(std::time::Duration::from_secs(60));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn speculation_policy_is_validated() {
        let mut c = JobConfig::new("/in", "/out");
        c.speculation.enabled = true;
        assert_eq!(c.validate(), Ok(()));

        c.speculation.threshold_pct = 99;
        assert!(c.validate().is_err());

        c.speculation.threshold_pct = 150;
        c.speculation.budget = 0;
        assert!(c.validate().is_err());

        // Disabled plans skip the policy checks entirely.
        c.speculation.enabled = false;
        assert_eq!(c.validate(), Ok(()));
    }
}
