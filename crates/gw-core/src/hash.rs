//! FxHash-style byte hashing and the default partition function.
//!
//! Implemented in-repo (no external hash crates): the FxHash word-at-a-time
//! mix used by rustc, which is fast on the short keys that dominate
//! MapReduce intermediate data. "Glasswing partitions intermediate data
//! based on a hash function which can be overloaded by the user."

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Hash a byte string (FxHash recipe: 8 bytes at a time, then the tail).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash = mix(hash, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        // Include the length so "a" and "a\0" differ.
        hash = mix(hash, u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
    }
    hash
}

/// Reduce a hash to `0..n` using multiply-shift, which draws on the
/// high-entropy high bits (FxHash mixes its low bits poorly, so a plain
/// modulo skews).
#[inline]
pub fn bucket_of(hash: u64, n: usize) -> usize {
    ((hash as u128 * n as u128) >> 64) as usize
}

/// Default partitioner: multiply-shift over the key hash.
#[inline]
pub fn default_partition(key: &[u8], num_partitions: u32) -> u32 {
    debug_assert!(num_partitions > 0);
    bucket_of(hash_bytes(key), num_partitions as usize) as u32
}

/// Node that owns global partition `p` in an `n`-node cluster.
///
/// Global partitions are striped over nodes; the receiver-local index is
/// [`local_partition`].
#[inline]
pub fn partition_owner(p: u32, nodes: u32) -> u32 {
    p % nodes
}

/// Receiver-local index of global partition `p`.
#[inline]
pub fn local_partition(p: u32, nodes: u32) -> u32 {
    p / nodes
}

/// Global partition id from `(owner, local)`.
#[inline]
pub fn global_partition(owner: u32, local: u32, nodes: u32) -> u32 {
    local * nodes + owner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"a\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn partition_is_total_and_in_range() {
        for key in [b"".as_slice(), b"x", b"word", b"longer-key-material"] {
            for parts in [1u32, 2, 7, 64] {
                assert!(default_partition(key, parts) < parts);
            }
        }
    }

    #[test]
    fn partition_distribution_is_roughly_uniform() {
        let parts = 16u32;
        let mut counts = vec![0usize; parts as usize];
        for i in 0..16_000 {
            let key = format!("key-{i}");
            counts[default_partition(key.as_bytes(), parts) as usize] += 1;
        }
        let expect = 1000.0;
        for (p, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.7 && (c as f64) < expect * 1.3,
                "partition {p} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn owner_local_global_roundtrip() {
        let nodes = 6;
        for p in 0..60u32 {
            let owner = partition_owner(p, nodes);
            let local = local_partition(p, nodes);
            assert!(owner < nodes);
            assert_eq!(global_partition(owner, local, nodes), p);
        }
    }

    #[test]
    fn partitions_per_node_are_balanced() {
        let nodes = 4;
        let per_node = 3;
        let total = nodes * per_node;
        let mut counts = vec![0u32; nodes as usize];
        for p in 0..total {
            counts[partition_owner(p, nodes) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == per_node));
    }
}
