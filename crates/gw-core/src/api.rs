//! The Glasswing application API (paper §III-F).
//!
//! "The Glasswing OpenCL API provides utilities for the user's OpenCL
//! map/reduce functions that process the data. This API strictly follows
//! the MapReduce model: the user functions consume input and emit output in
//! the form of key/value pairs."
//!
//! An application implements [`GwApp`]. The `map` and `reduce` bodies play
//! the role of the user's OpenCL kernel functions: the engine invokes them
//! from NDRange work items, concurrently, so they must be `Sync` and all
//! shared state must be internally synchronised (just as OpenCL kernels
//! must use atomics).

use crate::collect::Collector;
use crate::hash;

/// Output emitter handed to map/reduce functions.
///
/// Backed by one of the two collection mechanisms (shared buffer pool or
/// hash table); see [`crate::collect`].
pub struct Emit<'a> {
    collector: &'a dyn Collector,
}

impl<'a> Emit<'a> {
    /// Wrap a collector.
    pub fn new(collector: &'a dyn Collector) -> Self {
        Emit { collector }
    }

    /// Emit one key/value pair.
    #[inline]
    pub fn emit(&self, key: &[u8], value: &[u8]) {
        self.collector.emit(key, value);
    }
}

/// An in-kernel combiner: merges a newly emitted value into the
/// accumulated value for a key ("a local reduce over the results of one
/// map chunk"). Only used with the hash-table collection mechanism, as in
/// the paper.
pub trait Combiner: Send + Sync {
    /// Merge `value` into `acc` (both in the application's value encoding).
    fn combine(&self, key: &[u8], acc: &mut Vec<u8>, value: &[u8]);
}

/// A Glasswing MapReduce application.
pub trait GwApp: Send + Sync + 'static {
    /// Application name (reports, output naming).
    fn name(&self) -> &'static str;

    /// Map one input record. Invoked concurrently by kernel work items.
    fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>);

    /// The application's combiner, if any.
    fn combiner(&self) -> Option<std::sync::Arc<dyn Combiner>> {
        None
    }

    /// Whether the job has a reduce phase. When `false` (TeraSort), the
    /// framework writes the merged, sorted intermediate data directly:
    /// "its output is fully processed by the end of the intermediate data
    /// shuffle".
    fn has_reduce(&self) -> bool {
        true
    }

    /// Reduce a chunk of values for one key.
    ///
    /// Large value lists are fed in several chunks across kernel
    /// invocations; `state` is the key's scratch buffer persisting between
    /// chunks (paper §III-C) and `last` marks the final chunk. Typical
    /// implementations accumulate into `state` and emit on `last`.
    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    );

    /// Partition function over the global partition space. "Glasswing
    /// partitions intermediate data based on a hash function which can be
    /// overloaded by the user" — TeraSort overloads it with its sampled
    /// key-range partitioner.
    fn partition(&self, key: &[u8], num_partitions: u32) -> u32 {
        hash::default_partition(key, num_partitions)
    }

    /// Merge another partial reduction state into `acc` (both produced by
    /// [`GwApp::reduce`] calls with `last = false`). Returning `true`
    /// declares the reduction *associative* and unlocks the paper's first
    /// form of reduce parallelism: "applications can choose to process
    /// each single key with multiple threads" — the engine splits a large
    /// key's values over several work items, reduces partials
    /// concurrently, merges the states with this function, and finishes
    /// with one `last = true` call. The default (`false`) keeps per-key
    /// reduction sequential.
    fn merge_states(&self, _acc: &mut Vec<u8>, _other: &[u8]) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{BufferPoolCollector, Collector};

    struct Echo;
    impl GwApp for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
            emit.emit(key, value);
        }
        fn reduce(
            &self,
            key: &[u8],
            values: &[&[u8]],
            _state: &mut Vec<u8>,
            last: bool,
            emit: &Emit<'_>,
        ) {
            if last {
                emit.emit(key, &(values.len() as u32).to_le_bytes());
            }
        }
    }

    #[test]
    fn default_partition_matches_hash() {
        let app = Echo;
        assert_eq!(app.partition(b"k", 8), hash::default_partition(b"k", 8));
        assert!(app.has_reduce());
        assert!(app.combiner().is_none());
    }

    #[test]
    fn emit_routes_to_collector() {
        let app = Echo;
        let collector = BufferPoolCollector::new(4096, 2);
        app.map(b"key", b"val", &Emit::new(&collector));
        assert_eq!(collector.records(), 1);
    }
}
