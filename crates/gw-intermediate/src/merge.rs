//! K-way merging of sorted runs.
//!
//! Used in three places, exactly as in the paper: merging cached runs
//! before a flush, continuously merging spilled runs to bound the file
//! count, and the reduce input reader's "one last merge operation" that
//! presents a consistent, key-grouped view of a partition's data.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::kv::{Run, RunBuilder, RunIter};

/// Streaming k-way merge over borrowed runs, yielding records in
/// `(key, value)` order.
pub struct MergeIter<'a> {
    heap: BinaryHeap<HeapEntry<'a>>,
}

struct HeapEntry<'a> {
    key: &'a [u8],
    value: &'a [u8],
    /// Source run index; breaks ties deterministically.
    src: usize,
    iter: RunIter<'a>,
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry<'_> {}
impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for ascending output.
        (other.key, other.value, other.src).cmp(&(self.key, self.value, self.src))
    }
}

impl<'a> MergeIter<'a> {
    /// Merge the given runs.
    pub fn new<I>(runs: I) -> Self
    where
        I: IntoIterator<Item = &'a Run>,
    {
        let mut heap = BinaryHeap::new();
        for (src, run) in runs.into_iter().enumerate() {
            let mut iter = run.iter();
            if let Some((key, value)) = iter.next() {
                heap.push(HeapEntry {
                    key,
                    value,
                    src,
                    iter,
                });
            }
        }
        MergeIter { heap }
    }
}

impl<'a> Iterator for MergeIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let mut top = self.heap.pop()?;
        let out = (top.key, top.value);
        if let Some((key, value)) = top.iter.next() {
            top.key = key;
            top.value = value;
            self.heap.push(top);
        }
        Some(out)
    }
}

/// Merge runs into a single new [`Run`].
pub fn merge_runs(runs: &[Run]) -> Run {
    // Fast path: nothing to merge.
    if runs.len() == 1 {
        return runs[0].clone();
    }
    let mut builder = RunBuilder::new();
    for (k, v) in MergeIter::new(runs) {
        builder.push(k, v);
    }
    // Input runs are sorted, so the builder's sort is a no-op pass; we reuse
    // it for serialization symmetry.
    builder.build()
}

/// Key-grouped view over a k-way merge: yields each distinct key once,
/// with all of its values (already in sorted order).
pub struct GroupedMerge<'a> {
    inner: std::iter::Peekable<MergeIter<'a>>,
}

impl<'a> GroupedMerge<'a> {
    /// Group the merge of `runs` by key.
    pub fn new<I>(runs: I) -> Self
    where
        I: IntoIterator<Item = &'a Run>,
    {
        GroupedMerge {
            inner: MergeIter::new(runs).peekable(),
        }
    }
}

impl<'a> Iterator for GroupedMerge<'a> {
    type Item = (&'a [u8], Vec<&'a [u8]>);

    fn next(&mut self) -> Option<Self::Item> {
        let (key, first) = self.inner.next()?;
        let mut values = vec![first];
        while let Some((k, _)) = self.inner.peek() {
            if *k != key {
                break;
            }
            let (_, v) = self.inner.next().unwrap();
            values.push(v);
        }
        Some((key, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::run_from_pairs;
    use proptest::prelude::*;

    #[test]
    fn merge_interleaves_in_order() {
        let a = run_from_pairs([(b"a".as_slice(), b"1".as_slice()), (b"c", b"3")]);
        let b = run_from_pairs([(b"b".as_slice(), b"2".as_slice()), (b"d", b"4")]);
        let merged: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new([&a, &b])
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let keys: Vec<&[u8]> = merged.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"a".as_slice(), b"b", b"c", b"d"]);
    }

    #[test]
    fn merge_of_empty_inputs_is_empty() {
        let runs: Vec<Run> = vec![RunBuilder::new().build(); 3];
        assert_eq!(MergeIter::new(runs.iter()).count(), 0);
        assert!(merge_runs(&runs).is_empty());
    }

    #[test]
    fn grouped_merge_collects_values_across_runs() {
        let a = run_from_pairs([(b"x".as_slice(), b"1".as_slice()), (b"y", b"2")]);
        let b = run_from_pairs([(b"x".as_slice(), b"3".as_slice())]);
        let groups: Vec<(Vec<u8>, Vec<Vec<u8>>)> = GroupedMerge::new([&a, &b])
            .map(|(k, vs)| (k.to_vec(), vs.iter().map(|v| v.to_vec()).collect()))
            .collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, b"x");
        assert_eq!(groups[0].1, vec![b"1".to_vec(), b"3".to_vec()]);
        assert_eq!(groups[1].0, b"y");
    }

    #[test]
    fn merge_runs_produces_sorted_run() {
        let a = run_from_pairs([(b"m".as_slice(), b"".as_slice()), (b"z", b"")]);
        let b = run_from_pairs([(b"a".as_slice(), b"".as_slice()), (b"m", b"")]);
        let merged = merge_runs(&[a, b]);
        assert!(merged.check_sorted());
        assert_eq!(merged.records(), 4);
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            runs in proptest::collection::vec(
                proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..8),
                     proptest::collection::vec(any::<u8>(), 0..8)), 0..40),
                0..6))
        {
            let built: Vec<Run> = runs.iter().map(|pairs| {
                let mut b = RunBuilder::new();
                for (k, v) in pairs {
                    b.push(k, v);
                }
                b.build()
            }).collect();
            let merged: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(built.iter())
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            let mut expect: Vec<(Vec<u8>, Vec<u8>)> =
                runs.into_iter().flatten().collect();
            expect.sort();
            prop_assert_eq!(merged, expect);
        }

        #[test]
        fn grouped_merge_covers_every_record(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..4),
                 proptest::collection::vec(any::<u8>(), 0..4)), 0..100))
        {
            let run = {
                let mut b = RunBuilder::new();
                for (k, v) in &pairs {
                    b.push(k, v);
                }
                b.build()
            };
            let total: usize = GroupedMerge::new([&run]).map(|(_, vs)| vs.len()).sum();
            prop_assert_eq!(total, pairs.len());
            // Distinct keys appear exactly once.
            let keys: Vec<Vec<u8>> = GroupedMerge::new([&run]).map(|(k, _)| k.to_vec()).collect();
            let mut dedup = keys.clone();
            dedup.dedup();
            prop_assert_eq!(keys.len(), dedup.len());
        }
    }
}
