//! K-way merging of sorted runs, in memory or external.
//!
//! Used in three places, exactly as in the paper: merging cached runs
//! before a flush, continuously merging spilled runs to bound the file
//! count, and the reduce input reader's "one last merge operation" that
//! presents a consistent, key-grouped view of a partition's data.
//!
//! All sites run on one **loser tree** (tournament tree) core,
//! [`LoserTree`], generic over [`RunCursor`] sources: emitting a record
//! replays exactly one root-to-leaf path — one comparison per level,
//! `⌈log₂ k⌉` total. Two fronts wrap it:
//!
//! * [`MergeIter`]/[`GroupedMerge`] — borrowed in-memory runs, the
//!   zero-copy fast path for per-chunk lane merges and tests;
//! * [`CursorMerge`]/[`GroupedCursorMerge`] — boxed/owned cursors mixing
//!   in-memory runs and framed spills, the **external merge**: peak
//!   memory is `k` frames (one decode buffer per open spill cursor),
//!   not `k` runs, no matter how large the partition is.
//!
//! Output order is `(key, value, source index)` — record-for-record
//! identical to the previous heap merge. Equal `(key, value)` records
//! are byte-identical regardless of which source they came from, so the
//! merged byte stream does not depend on how records were split across
//! runs and spills: the determinism contract survives spilling.

use gw_storage::varint;

use crate::cursor::RunCursor;
use crate::kv::Run;

/// A buffered read cursor over one sorted run's serialized bytes,
/// borrowing from the run (`'a`-returning fields let [`MergeIter`]
/// remain a plain [`Iterator`] decoupled from `&mut self`).
struct SliceCursor<'a> {
    key: &'a [u8],
    value: &'a [u8],
    /// Full serialized extent of the current record (header + payload).
    rec: &'a [u8],
    rest: &'a [u8],
    done: bool,
}

impl<'a> SliceCursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        let mut c = SliceCursor {
            key: &[],
            value: &[],
            rec: &[],
            rest: bytes,
            done: false,
        };
        c.step();
        c
    }

    fn step(&mut self) {
        if self.rest.is_empty() {
            self.done = true;
            self.key = &[];
            self.value = &[];
            self.rec = &[];
            return;
        }
        let (klen, n1) = varint::read_len(self.rest).expect("corrupt run: key length");
        let (vlen, n2) = varint::read_len(&self.rest[n1..]).expect("corrupt run: value length");
        let hdr = n1 + n2;
        let total = hdr + klen + vlen;
        assert!(self.rest.len() >= total, "corrupt run: truncated record");
        self.rec = &self.rest[..total];
        self.key = &self.rest[hdr..hdr + klen];
        self.value = &self.rest[hdr + klen..total];
        self.rest = &self.rest[total..];
    }
}

impl RunCursor for SliceCursor<'_> {
    fn done(&self) -> bool {
        self.done
    }
    fn key(&self) -> &[u8] {
        self.key
    }
    fn value(&self) -> &[u8] {
        self.value
    }
    fn rec(&self) -> &[u8] {
        self.rec
    }
    fn advance(&mut self) -> std::io::Result<()> {
        self.step();
        Ok(())
    }
}

/// The shared loser-tree core, generic over cursor sources.
///
/// `tree[0]` is the overall winner, `tree[1..k]` hold the losers of each
/// internal match; the leaf of source `s` is node `k + s`. Exhausted
/// (`done`) cursors are filtered at construction, and ties break by
/// source index, matching the original heap's `(key, value, src)` order.
pub(crate) struct LoserTree<C: RunCursor> {
    pub(crate) cursors: Vec<C>,
    tree: Vec<usize>,
}

impl<C: RunCursor> LoserTree<C> {
    pub(crate) fn new(cursors: Vec<C>) -> Self {
        let cursors: Vec<C> = cursors.into_iter().filter(|c| !c.done()).collect();
        let k = cursors.len();
        let mut t = LoserTree {
            cursors,
            tree: vec![0; k.max(1)],
        };
        if k > 0 {
            let winner = t.play(1);
            t.tree[0] = winner;
        }
        t
    }

    /// `true` when source `a`'s current record sorts before source `b`'s.
    /// Exhausted cursors lose to everything.
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        let (ca, cb) = (&self.cursors[a], &self.cursors[b]);
        match (ca.done(), cb.done()) {
            (true, _) => false,
            (false, true) => true,
            (false, false) => (ca.key(), ca.value(), a) < (cb.key(), cb.value(), b),
        }
    }

    /// Recursively play the initial tournament for the subtree at `node`,
    /// storing losers and returning the subtree winner.
    fn play(&mut self, node: usize) -> usize {
        let k = self.cursors.len();
        if node >= k {
            return node - k; // leaf: the source itself
        }
        let a = self.play(2 * node);
        let b = self.play(2 * node + 1);
        if self.beats(a, b) {
            self.tree[node] = b;
            a
        } else {
            self.tree[node] = a;
            b
        }
    }

    /// The winning source index, or `None` when all are exhausted.
    #[inline]
    pub(crate) fn winner(&self) -> Option<usize> {
        if self.cursors.is_empty() {
            return None;
        }
        let w = self.tree[0];
        if self.cursors[w].done() {
            None
        } else {
            Some(w)
        }
    }

    /// Advance the current winner's cursor and replay its leaf-to-root
    /// path. The only fallible step of a merge (spill cursors touch disk).
    pub(crate) fn advance_winner(&mut self) -> std::io::Result<()> {
        let s = self.tree[0];
        self.cursors[s].advance()?;
        let k = self.cursors.len();
        let mut winner = s;
        let mut t = (k + s) / 2;
        while t >= 1 {
            let other = self.tree[t];
            if self.beats(other, winner) {
                self.tree[t] = winner;
                winner = other;
            }
            t /= 2;
        }
        self.tree[0] = winner;
        Ok(())
    }
}

/// Streaming k-way merge over borrowed runs, yielding records in
/// `(key, value)` order.
pub struct MergeIter<'a> {
    tree: LoserTree<SliceCursor<'a>>,
}

impl<'a> MergeIter<'a> {
    /// Merge the given runs.
    pub fn new<I>(runs: I) -> Self
    where
        I: IntoIterator<Item = &'a Run>,
    {
        let cursors: Vec<SliceCursor<'a>> = runs
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|r| SliceCursor::new(r.bytes()))
            .collect();
        MergeIter {
            tree: LoserTree::new(cursors),
        }
    }

    /// Next record with its full serialized slice (header included), for
    /// gather-style merging without re-encoding.
    pub(crate) fn next_record(&mut self) -> Option<&'a [u8]> {
        let w = self.tree.winner()?;
        let rec = self.tree.cursors[w].rec;
        self.tree
            .advance_winner()
            .expect("in-memory merge cannot fail");
        Some(rec)
    }
}

impl<'a> Iterator for MergeIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let w = self.tree.winner()?;
        let out = (self.tree.cursors[w].key, self.tree.cursors[w].value);
        self.tree
            .advance_winner()
            .expect("in-memory merge cannot fail");
        Some(out)
    }
}

/// Merge runs into a single new [`Run`].
///
/// Output bytes are gathered record-slice by record-slice — input records
/// are already serialized, so no varint re-encoding happens. A single
/// non-empty input is returned by refcount clone (no byte copy).
pub fn merge_runs<'a, I>(runs: I) -> Run
where
    I: IntoIterator<Item = &'a Run>,
{
    let runs: Vec<&Run> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    match runs.len() {
        0 => Run::default(),
        // Fast path: nothing to merge; Bytes-backed clone shares the buffer.
        1 => runs[0].clone(),
        _ => {
            let total: usize = runs.iter().map(|r| r.len_bytes()).sum();
            let mut bytes = Vec::with_capacity(total);
            let mut records = 0usize;
            let mut it = MergeIter::new(runs);
            while let Some(rec) = it.next_record() {
                bytes.extend_from_slice(rec);
                records += 1;
            }
            Run::from_sorted_bytes(bytes, records)
        }
    }
}

/// External (or mixed) k-way merge over owned cursors — the lending
/// counterpart of [`MergeIter`] for sources whose buffers are refilled
/// on `advance` (framed spills). Peek, copy what you need, advance.
pub struct CursorMerge<C: RunCursor = Box<dyn RunCursor>> {
    tree: LoserTree<C>,
}

impl<C: RunCursor> CursorMerge<C> {
    /// Merge the given cursors (already positioned at their first record;
    /// exhausted ones are dropped).
    pub fn new(cursors: Vec<C>) -> Self {
        CursorMerge {
            tree: LoserTree::new(cursors),
        }
    }

    /// View the smallest remaining `(key, value)`, or `None` when done.
    pub fn peek(&self) -> Option<(&[u8], &[u8])> {
        let w = self.tree.winner()?;
        let c = &self.tree.cursors[w];
        Some((c.key(), c.value()))
    }

    /// View the smallest remaining record's full serialized slice.
    pub fn peek_rec(&self) -> Option<&[u8]> {
        let w = self.tree.winner()?;
        Some(self.tree.cursors[w].rec())
    }

    /// Step past the current record.
    pub fn advance(&mut self) -> std::io::Result<()> {
        if self.tree.winner().is_some() {
            self.tree.advance_winner()?;
        }
        Ok(())
    }
}

/// Key-grouped view over a k-way merge: yields each distinct key once,
/// with all of its values (already in sorted order).
pub struct GroupedMerge<'a> {
    inner: std::iter::Peekable<MergeIter<'a>>,
}

impl<'a> GroupedMerge<'a> {
    /// Group the merge of `runs` by key.
    pub fn new<I>(runs: I) -> Self
    where
        I: IntoIterator<Item = &'a Run>,
    {
        GroupedMerge {
            inner: MergeIter::new(runs).peekable(),
        }
    }
}

impl<'a> Iterator for GroupedMerge<'a> {
    type Item = (&'a [u8], Vec<&'a [u8]>);

    fn next(&mut self) -> Option<Self::Item> {
        let (key, first) = self.inner.next()?;
        let mut values = vec![first];
        while let Some((k, _)) = self.inner.peek() {
            if *k != key {
                break;
            }
            let (_, v) = self.inner.next().unwrap();
            values.push(v);
        }
        Some((key, values))
    }
}

/// One key-group slice streamed out of a [`GroupedCursorMerge`]: the key
/// and value payloads were appended to the caller's arena, and the
/// ranges here point into it (`(offset, len)` pairs).
#[derive(Debug)]
pub struct GroupSlice {
    /// Key bytes in the arena.
    pub key: (u32, u32),
    /// Value byte ranges in the arena, in merge order.
    pub values: Vec<(u32, u32)>,
    /// `true` when this slice completes its key (no more values follow).
    pub last: bool,
}

/// Streaming, bounded-memory counterpart of [`GroupedMerge`] over owned
/// cursors: instead of collecting a key's full value list (which for a
/// hot key can exceed memory), values stream out in caller-sized slices
/// copied into a caller-owned arena. A key whose values span multiple
/// slices yields `last = false` until its final slice — exactly the
/// chunk-continuation contract the reduce pipeline's scratch-state
/// machinery expects.
pub struct GroupedCursorMerge<C: RunCursor = Box<dyn RunCursor>> {
    merge: CursorMerge<C>,
    /// Owned copy of the key mid-slicing (`None` = next slice starts a
    /// fresh key at the merge head).
    pending: Option<Vec<u8>>,
}

impl<C: RunCursor> GroupedCursorMerge<C> {
    /// Group the merge of `cursors` by key.
    pub fn new(cursors: Vec<C>) -> Self {
        GroupedCursorMerge {
            merge: CursorMerge::new(cursors),
            pending: None,
        }
    }

    /// `true` when the next slice starts a new key (the previous slice,
    /// if any, was its key's last).
    pub fn at_key_start(&self) -> bool {
        self.pending.is_none()
    }

    /// Stream the next slice of up to `max_values` values of one key into
    /// `arena`. Returns `None` when the merge is exhausted.
    pub fn next_slice(
        &mut self,
        max_values: usize,
        arena: &mut Vec<u8>,
    ) -> std::io::Result<Option<GroupSlice>> {
        let key: Vec<u8> = match self.pending.take() {
            Some(k) => k,
            None => match self.merge.peek() {
                Some((k, _)) => k.to_vec(),
                None => return Ok(None),
            },
        };
        assert!(
            arena.len() + key.len() <= u32::MAX as usize,
            "reduce chunk arena exceeds the 4 GiB range limit"
        );
        let key_off = arena.len() as u32;
        arena.extend_from_slice(&key);
        let mut values: Vec<(u32, u32)> = Vec::new();
        while values.len() < max_values {
            let matched = match self.merge.peek() {
                Some((k, v)) if k == key.as_slice() => {
                    assert!(
                        arena.len() + v.len() <= u32::MAX as usize,
                        "reduce chunk arena exceeds the 4 GiB range limit"
                    );
                    let off = arena.len() as u32;
                    arena.extend_from_slice(v);
                    values.push((off, v.len() as u32));
                    true
                }
                _ => false,
            };
            if !matched {
                break;
            }
            self.merge.advance()?;
        }
        let last = match self.merge.peek() {
            Some((k, _)) => k != key.as_slice(),
            None => true,
        };
        let slice = GroupSlice {
            key: (key_off, key.len() as u32),
            values,
            last,
        };
        if !last {
            self.pending = Some(key);
        }
        Ok(Some(slice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::MemCursor;
    use crate::kv::{run_from_pairs, RunBuilder, RunIter};
    use proptest::prelude::*;

    #[test]
    fn merge_interleaves_in_order() {
        let a = run_from_pairs([(b"a".as_slice(), b"1".as_slice()), (b"c", b"3")]);
        let b = run_from_pairs([(b"b".as_slice(), b"2".as_slice()), (b"d", b"4")]);
        let merged: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new([&a, &b])
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let keys: Vec<&[u8]> = merged.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"a".as_slice(), b"b", b"c", b"d"]);
    }

    #[test]
    fn merge_of_empty_inputs_is_empty() {
        let runs: Vec<Run> = vec![RunBuilder::new().build(); 3];
        assert_eq!(MergeIter::new(runs.iter()).count(), 0);
        assert!(merge_runs(&runs).is_empty());
    }

    #[test]
    fn single_run_merge_shares_the_buffer() {
        let a = run_from_pairs([(b"a".as_slice(), b"1".as_slice()), (b"b", b"2")]);
        let empty = RunBuilder::new().build();
        let merged = merge_runs([&empty, &a, &empty]);
        // No byte copy: the merged run IS the single non-empty input.
        assert_eq!(merged.bytes().as_ptr(), a.bytes().as_ptr());
        assert_eq!(merged.records(), 2);
    }

    #[test]
    fn grouped_merge_collects_values_across_runs() {
        let a = run_from_pairs([(b"x".as_slice(), b"1".as_slice()), (b"y", b"2")]);
        let b = run_from_pairs([(b"x".as_slice(), b"3".as_slice())]);
        let groups: Vec<(Vec<u8>, Vec<Vec<u8>>)> = GroupedMerge::new([&a, &b])
            .map(|(k, vs)| (k.to_vec(), vs.iter().map(|v| v.to_vec()).collect()))
            .collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, b"x");
        assert_eq!(groups[0].1, vec![b"1".to_vec(), b"3".to_vec()]);
        assert_eq!(groups[1].0, b"y");
    }

    #[test]
    fn merge_runs_produces_sorted_run() {
        let a = run_from_pairs([(b"m".as_slice(), b"".as_slice()), (b"z", b"")]);
        let b = run_from_pairs([(b"a".as_slice(), b"".as_slice()), (b"m", b"")]);
        let merged = merge_runs(&[a, b]);
        assert!(merged.check_sorted());
        assert_eq!(merged.records(), 4);
    }

    #[test]
    fn cursor_merge_matches_merge_iter() {
        let runs = [
            run_from_pairs([(b"a".as_slice(), b"1".as_slice()), (b"m", b"2")]),
            run_from_pairs([(b"a".as_slice(), b"0".as_slice()), (b"z", b"9")]),
            RunBuilder::new().build(),
        ];
        let borrowed: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(runs.iter())
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let cursors: Vec<Box<dyn RunCursor>> = runs
            .iter()
            .map(|r| Box::new(MemCursor::new(r.clone())) as Box<dyn RunCursor>)
            .collect();
        let mut m = CursorMerge::new(cursors);
        let mut external = Vec::new();
        while let Some((k, v)) = m.peek() {
            external.push((k.to_vec(), v.to_vec()));
            m.advance().unwrap();
        }
        assert_eq!(external, borrowed);
    }

    #[test]
    fn grouped_cursor_merge_slices_match_grouped_merge() {
        let runs = [
            run_from_pairs((0..40).map(|_| (b"hot".as_slice(), b"v".as_slice()))),
            run_from_pairs([(b"cold".as_slice(), b"1".as_slice()), (b"hot", b"v")]),
        ];
        // Reference: full value lists per key.
        let reference: Vec<(Vec<u8>, usize)> = GroupedMerge::new(runs.iter())
            .map(|(k, vs)| (k.to_vec(), vs.len()))
            .collect();
        // Streamed in slices of 16: reassemble per-key value counts and
        // check the last-flag protocol.
        let cursors: Vec<Box<dyn RunCursor>> = runs
            .iter()
            .map(|r| Box::new(MemCursor::new(r.clone())) as Box<dyn RunCursor>)
            .collect();
        let mut gm = GroupedCursorMerge::new(cursors);
        let mut arena = Vec::new();
        let mut got: Vec<(Vec<u8>, usize)> = Vec::new();
        let mut prev_last = true;
        while let Some(slice) = gm.next_slice(16, &mut arena).unwrap() {
            let key = arena[slice.key.0 as usize..(slice.key.0 + slice.key.1) as usize].to_vec();
            if prev_last {
                got.push((key, slice.values.len()));
            } else {
                let cur = got.last_mut().unwrap();
                assert_eq!(cur.0, key, "continuation keeps its key");
                cur.1 += slice.values.len();
            }
            if !slice.last {
                assert_eq!(slice.values.len(), 16, "non-final slices are full");
            }
            prev_last = slice.last;
        }
        assert_eq!(got, reference);
    }

    /// Reference model: the previous `BinaryHeap`-based merge, preserved
    /// here verbatim so the loser tree is checked against it
    /// record-for-record.
    mod heap_reference {
        use super::RunIter;
        use crate::kv::Run;
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        pub struct HeapMerge<'a> {
            heap: BinaryHeap<Entry<'a>>,
        }

        struct Entry<'a> {
            key: &'a [u8],
            value: &'a [u8],
            src: usize,
            iter: RunIter<'a>,
        }

        impl PartialEq for Entry<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == Ordering::Equal
            }
        }
        impl Eq for Entry<'_> {}
        impl PartialOrd for Entry<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                (other.key, other.value, other.src).cmp(&(self.key, self.value, self.src))
            }
        }

        impl<'a> HeapMerge<'a> {
            pub fn new<I: IntoIterator<Item = &'a Run>>(runs: I) -> Self {
                let mut heap = BinaryHeap::new();
                for (src, run) in runs.into_iter().enumerate() {
                    let mut iter = run.iter();
                    if let Some((key, value)) = iter.next() {
                        heap.push(Entry {
                            key,
                            value,
                            src,
                            iter,
                        });
                    }
                }
                HeapMerge { heap }
            }
        }

        impl<'a> Iterator for HeapMerge<'a> {
            type Item = (&'a [u8], &'a [u8]);
            fn next(&mut self) -> Option<Self::Item> {
                let mut top = self.heap.pop()?;
                let out = (top.key, top.value);
                if let Some((key, value)) = top.iter.next() {
                    top.key = key;
                    top.value = value;
                    self.heap.push(top);
                }
                Some(out)
            }
        }
    }

    fn runs_from(pair_lists: &[Vec<(Vec<u8>, Vec<u8>)>]) -> Vec<Run> {
        pair_lists
            .iter()
            .map(|pairs| {
                let mut b = RunBuilder::new();
                for (k, v) in pairs {
                    b.push(k, v);
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn loser_tree_matches_heap_with_duplicates_and_empties() {
        let built = runs_from(&[
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"1".to_vec()),
            ],
            vec![],
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec()),
            ],
            vec![],
            vec![(b"a".to_vec(), b"0".to_vec())],
        ]);
        let tree: Vec<_> = MergeIter::new(built.iter()).collect();
        let heap: Vec<_> = heap_reference::HeapMerge::new(built.iter()).collect();
        assert_eq!(tree, heap);
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            runs in proptest::collection::vec(
                proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..8),
                     proptest::collection::vec(any::<u8>(), 0..8)), 0..40),
                0..6))
        {
            let built = runs_from(&runs);
            let merged: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(built.iter())
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            let mut expect: Vec<(Vec<u8>, Vec<u8>)> =
                runs.into_iter().flatten().collect();
            expect.sort();
            prop_assert_eq!(merged, expect);
        }

        /// Tentpole determinism contract: the loser tree emits the exact
        /// record sequence of the previous BinaryHeap merge — duplicate
        /// keys, duplicate records, and empty runs included — and
        /// [`merge_runs`] serializes that sequence byte-identically.
        #[test]
        fn loser_tree_equals_heap_record_for_record(
            runs in proptest::collection::vec(
                proptest::collection::vec(
                    (proptest::collection::vec(0u8..5, 0..4),
                     proptest::collection::vec(0u8..5, 0..3)), 0..30),
                0..8))
        {
            let built = runs_from(&runs);
            let tree: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(built.iter())
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            let heap: Vec<(Vec<u8>, Vec<u8>)> =
                heap_reference::HeapMerge::new(built.iter())
                    .map(|(k, v)| (k.to_vec(), v.to_vec()))
                    .collect();
            prop_assert_eq!(&tree, &heap);

            // Byte identity of the materialized merge vs. serializing the
            // heap's record sequence.
            let merged = merge_runs(built.iter());
            let mut expect_bytes = Vec::new();
            for (k, v) in &heap {
                gw_storage::varint::write_len(&mut expect_bytes, k.len());
                gw_storage::varint::write_len(&mut expect_bytes, v.len());
                expect_bytes.extend_from_slice(k);
                expect_bytes.extend_from_slice(v);
            }
            prop_assert_eq!(merged.bytes(), expect_bytes.as_slice());
        }

        /// The external cursor merge emits the exact record sequence of
        /// the borrowed merge for any mix of runs — the contract that
        /// lets spilled and cached data merge interchangeably.
        #[test]
        fn cursor_merge_equals_borrowed_merge(
            runs in proptest::collection::vec(
                proptest::collection::vec(
                    (proptest::collection::vec(0u8..5, 0..4),
                     proptest::collection::vec(0u8..5, 0..3)), 0..30),
                0..8))
        {
            let built = runs_from(&runs);
            let borrowed: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(built.iter())
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            let cursors: Vec<Box<dyn RunCursor>> = built
                .iter()
                .map(|r| Box::new(MemCursor::new(r.clone())) as Box<dyn RunCursor>)
                .collect();
            let mut m = CursorMerge::new(cursors);
            let mut external = Vec::new();
            while let Some((k, v)) = m.peek() {
                external.push((k.to_vec(), v.to_vec()));
                m.advance().unwrap();
            }
            prop_assert_eq!(external, borrowed);
        }

        #[test]
        fn grouped_merge_covers_every_record(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..4),
                 proptest::collection::vec(any::<u8>(), 0..4)), 0..100))
        {
            let run = {
                let mut b = RunBuilder::new();
                for (k, v) in &pairs {
                    b.push(k, v);
                }
                b.build()
            };
            let total: usize = GroupedMerge::new([&run]).map(|(_, vs)| vs.len()).sum();
            prop_assert_eq!(total, pairs.len());
            // Distinct keys appear exactly once.
            let keys: Vec<Vec<u8>> = GroupedMerge::new([&run]).map(|(k, _)| k.to_vec()).collect();
            let mut dedup = keys.clone();
            dedup.dedup();
            prop_assert_eq!(keys.len(), dedup.len());
        }

        /// Streamed group slices reassemble to exactly the grouped merge:
        /// same keys in order, same per-key value multiset, full slices
        /// everywhere except each key's final slice.
        #[test]
        fn grouped_cursor_slices_reassemble(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(0u8..3, 0..3),
                 proptest::collection::vec(0u8..3, 0..3)), 0..120),
            max_values in 1usize..8)
        {
            let run = {
                let mut b = RunBuilder::new();
                for (k, v) in &pairs {
                    b.push(k, v);
                }
                b.build()
            };
            let reference: Vec<(Vec<u8>, Vec<Vec<u8>>)> = GroupedMerge::new([&run])
                .map(|(k, vs)| (k.to_vec(), vs.iter().map(|v| v.to_vec()).collect()))
                .collect();
            let cursors: Vec<Box<dyn RunCursor>> =
                vec![Box::new(MemCursor::new(run.clone()))];
            let mut gm = GroupedCursorMerge::new(cursors);
            let mut arena = Vec::new();
            let mut got: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
            let mut prev_last = true;
            while let Some(s) = gm.next_slice(max_values, &mut arena).unwrap() {
                let key = arena[s.key.0 as usize..(s.key.0 + s.key.1) as usize].to_vec();
                let vals: Vec<Vec<u8>> = s.values.iter()
                    .map(|&(o, l)| arena[o as usize..(o + l) as usize].to_vec())
                    .collect();
                if prev_last {
                    got.push((key, vals));
                } else {
                    let cur = got.last_mut().unwrap();
                    prop_assert_eq!(&cur.0, &key);
                    cur.1.extend(vals);
                }
                if !s.last {
                    prop_assert_eq!(s.values.len(), max_values);
                }
                prev_last = s.last;
            }
            prop_assert_eq!(got, reference);
        }
    }
}
