//! K-way merging of sorted runs.
//!
//! Used in three places, exactly as in the paper: merging cached runs
//! before a flush, continuously merging spilled runs to bound the file
//! count, and the reduce input reader's "one last merge operation" that
//! presents a consistent, key-grouped view of a partition's data.
//!
//! All three sites run on a **loser tree** (tournament tree) over
//! per-source buffered cursors: emitting a record replays exactly one
//! root-to-leaf path — one comparison per level, `⌈log₂ k⌉` total —
//! where the previous `BinaryHeap` paid a pop *and* a push re-sift per
//! record. Cursors parse records lazily from each run's flat byte buffer
//! and expose the full serialized record slice, so [`merge_runs`] gathers
//! output bytes without re-encoding varint headers.
//!
//! Output order is `(key, value, source index)` — record-for-record
//! identical to the previous heap merge, preserving the run-byte
//! determinism contract.

use gw_storage::varint;

use crate::kv::Run;

/// A buffered read cursor over one sorted run's serialized bytes.
struct Cursor<'a> {
    key: &'a [u8],
    value: &'a [u8],
    /// Full serialized extent of the current record (header + payload).
    rec: &'a [u8],
    rest: &'a [u8],
    done: bool,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        let mut c = Cursor {
            key: &[],
            value: &[],
            rec: &[],
            rest: bytes,
            done: false,
        };
        c.advance();
        c
    }

    fn advance(&mut self) {
        if self.rest.is_empty() {
            self.done = true;
            self.key = &[];
            self.value = &[];
            self.rec = &[];
            return;
        }
        let (klen, n1) = varint::read_len(self.rest).expect("corrupt run: key length");
        let (vlen, n2) = varint::read_len(&self.rest[n1..]).expect("corrupt run: value length");
        let hdr = n1 + n2;
        let total = hdr + klen + vlen;
        assert!(self.rest.len() >= total, "corrupt run: truncated record");
        self.rec = &self.rest[..total];
        self.key = &self.rest[hdr..hdr + klen];
        self.value = &self.rest[hdr + klen..total];
        self.rest = &self.rest[total..];
    }
}

/// Streaming k-way merge over borrowed runs, yielding records in
/// `(key, value)` order.
pub struct MergeIter<'a> {
    cursors: Vec<Cursor<'a>>,
    /// Loser tree: `tree[0]` is the overall winner, `tree[1..k]` hold the
    /// losers of each internal match. Leaf of source `s` is node `k + s`.
    tree: Vec<usize>,
}

impl<'a> MergeIter<'a> {
    /// Merge the given runs.
    pub fn new<I>(runs: I) -> Self
    where
        I: IntoIterator<Item = &'a Run>,
    {
        let cursors: Vec<Cursor<'a>> = runs
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|r| Cursor::new(r.bytes()))
            .collect();
        let k = cursors.len();
        let mut it = MergeIter {
            cursors,
            tree: vec![0; k.max(1)],
        };
        if k > 0 {
            let winner = it.play(1);
            it.tree[0] = winner;
        }
        it
    }

    /// `true` when source `a`'s current record sorts before source `b`'s.
    /// Exhausted cursors lose to everything; ties break by source index,
    /// matching the previous heap's `(key, value, src)` order.
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        let (ca, cb) = (&self.cursors[a], &self.cursors[b]);
        match (ca.done, cb.done) {
            (true, _) => false,
            (false, true) => true,
            (false, false) => (ca.key, ca.value, a) < (cb.key, cb.value, b),
        }
    }

    /// Recursively play the initial tournament for the subtree at `node`,
    /// storing losers and returning the subtree winner.
    fn play(&mut self, node: usize) -> usize {
        let k = self.cursors.len();
        if node >= k {
            return node - k; // leaf: the source itself
        }
        let a = self.play(2 * node);
        let b = self.play(2 * node + 1);
        if self.beats(a, b) {
            self.tree[node] = b;
            a
        } else {
            self.tree[node] = a;
            b
        }
    }

    /// Advance source `s` and replay its leaf-to-root path.
    fn replay(&mut self, s: usize) {
        self.cursors[s].advance();
        let k = self.cursors.len();
        let mut winner = s;
        let mut t = (k + s) / 2;
        while t >= 1 {
            let other = self.tree[t];
            if self.beats(other, winner) {
                self.tree[t] = winner;
                winner = other;
            }
            t /= 2;
        }
        self.tree[0] = winner;
    }

    #[inline]
    fn winner(&self) -> Option<usize> {
        if self.cursors.is_empty() {
            return None;
        }
        let w = self.tree[0];
        if self.cursors[w].done {
            None
        } else {
            Some(w)
        }
    }

    /// Next record with its full serialized slice (header included), for
    /// gather-style merging without re-encoding.
    fn next_record(&mut self) -> Option<&'a [u8]> {
        let w = self.winner()?;
        let rec = self.cursors[w].rec;
        self.replay(w);
        Some(rec)
    }
}

impl<'a> Iterator for MergeIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let w = self.winner()?;
        let out = (self.cursors[w].key, self.cursors[w].value);
        self.replay(w);
        Some(out)
    }
}

/// Merge runs into a single new [`Run`].
///
/// Output bytes are gathered record-slice by record-slice — input records
/// are already serialized, so no varint re-encoding happens. A single
/// non-empty input is returned by refcount clone (no byte copy).
pub fn merge_runs<'a, I>(runs: I) -> Run
where
    I: IntoIterator<Item = &'a Run>,
{
    let runs: Vec<&Run> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    match runs.len() {
        0 => Run::default(),
        // Fast path: nothing to merge; Bytes-backed clone shares the buffer.
        1 => runs[0].clone(),
        _ => {
            let total: usize = runs.iter().map(|r| r.len_bytes()).sum();
            let mut bytes = Vec::with_capacity(total);
            let mut records = 0usize;
            let mut it = MergeIter::new(runs);
            while let Some(rec) = it.next_record() {
                bytes.extend_from_slice(rec);
                records += 1;
            }
            Run::from_sorted_bytes(bytes, records)
        }
    }
}

/// Key-grouped view over a k-way merge: yields each distinct key once,
/// with all of its values (already in sorted order).
pub struct GroupedMerge<'a> {
    inner: std::iter::Peekable<MergeIter<'a>>,
}

impl<'a> GroupedMerge<'a> {
    /// Group the merge of `runs` by key.
    pub fn new<I>(runs: I) -> Self
    where
        I: IntoIterator<Item = &'a Run>,
    {
        GroupedMerge {
            inner: MergeIter::new(runs).peekable(),
        }
    }
}

impl<'a> Iterator for GroupedMerge<'a> {
    type Item = (&'a [u8], Vec<&'a [u8]>);

    fn next(&mut self) -> Option<Self::Item> {
        let (key, first) = self.inner.next()?;
        let mut values = vec![first];
        while let Some((k, _)) = self.inner.peek() {
            if *k != key {
                break;
            }
            let (_, v) = self.inner.next().unwrap();
            values.push(v);
        }
        Some((key, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{run_from_pairs, RunBuilder, RunIter};
    use proptest::prelude::*;

    #[test]
    fn merge_interleaves_in_order() {
        let a = run_from_pairs([(b"a".as_slice(), b"1".as_slice()), (b"c", b"3")]);
        let b = run_from_pairs([(b"b".as_slice(), b"2".as_slice()), (b"d", b"4")]);
        let merged: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new([&a, &b])
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let keys: Vec<&[u8]> = merged.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"a".as_slice(), b"b", b"c", b"d"]);
    }

    #[test]
    fn merge_of_empty_inputs_is_empty() {
        let runs: Vec<Run> = vec![RunBuilder::new().build(); 3];
        assert_eq!(MergeIter::new(runs.iter()).count(), 0);
        assert!(merge_runs(&runs).is_empty());
    }

    #[test]
    fn single_run_merge_shares_the_buffer() {
        let a = run_from_pairs([(b"a".as_slice(), b"1".as_slice()), (b"b", b"2")]);
        let empty = RunBuilder::new().build();
        let merged = merge_runs([&empty, &a, &empty]);
        // No byte copy: the merged run IS the single non-empty input.
        assert_eq!(merged.bytes().as_ptr(), a.bytes().as_ptr());
        assert_eq!(merged.records(), 2);
    }

    #[test]
    fn grouped_merge_collects_values_across_runs() {
        let a = run_from_pairs([(b"x".as_slice(), b"1".as_slice()), (b"y", b"2")]);
        let b = run_from_pairs([(b"x".as_slice(), b"3".as_slice())]);
        let groups: Vec<(Vec<u8>, Vec<Vec<u8>>)> = GroupedMerge::new([&a, &b])
            .map(|(k, vs)| (k.to_vec(), vs.iter().map(|v| v.to_vec()).collect()))
            .collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, b"x");
        assert_eq!(groups[0].1, vec![b"1".to_vec(), b"3".to_vec()]);
        assert_eq!(groups[1].0, b"y");
    }

    #[test]
    fn merge_runs_produces_sorted_run() {
        let a = run_from_pairs([(b"m".as_slice(), b"".as_slice()), (b"z", b"")]);
        let b = run_from_pairs([(b"a".as_slice(), b"".as_slice()), (b"m", b"")]);
        let merged = merge_runs(&[a, b]);
        assert!(merged.check_sorted());
        assert_eq!(merged.records(), 4);
    }

    /// Reference model: the previous `BinaryHeap`-based merge, preserved
    /// here verbatim so the loser tree is checked against it
    /// record-for-record.
    mod heap_reference {
        use super::RunIter;
        use crate::kv::Run;
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        pub struct HeapMerge<'a> {
            heap: BinaryHeap<Entry<'a>>,
        }

        struct Entry<'a> {
            key: &'a [u8],
            value: &'a [u8],
            src: usize,
            iter: RunIter<'a>,
        }

        impl PartialEq for Entry<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == Ordering::Equal
            }
        }
        impl Eq for Entry<'_> {}
        impl PartialOrd for Entry<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                (other.key, other.value, other.src).cmp(&(self.key, self.value, self.src))
            }
        }

        impl<'a> HeapMerge<'a> {
            pub fn new<I: IntoIterator<Item = &'a Run>>(runs: I) -> Self {
                let mut heap = BinaryHeap::new();
                for (src, run) in runs.into_iter().enumerate() {
                    let mut iter = run.iter();
                    if let Some((key, value)) = iter.next() {
                        heap.push(Entry {
                            key,
                            value,
                            src,
                            iter,
                        });
                    }
                }
                HeapMerge { heap }
            }
        }

        impl<'a> Iterator for HeapMerge<'a> {
            type Item = (&'a [u8], &'a [u8]);
            fn next(&mut self) -> Option<Self::Item> {
                let mut top = self.heap.pop()?;
                let out = (top.key, top.value);
                if let Some((key, value)) = top.iter.next() {
                    top.key = key;
                    top.value = value;
                    self.heap.push(top);
                }
                Some(out)
            }
        }
    }

    fn runs_from(pair_lists: &[Vec<(Vec<u8>, Vec<u8>)>]) -> Vec<Run> {
        pair_lists
            .iter()
            .map(|pairs| {
                let mut b = RunBuilder::new();
                for (k, v) in pairs {
                    b.push(k, v);
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn loser_tree_matches_heap_with_duplicates_and_empties() {
        let built = runs_from(&[
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"1".to_vec()),
            ],
            vec![],
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec()),
            ],
            vec![],
            vec![(b"a".to_vec(), b"0".to_vec())],
        ]);
        let tree: Vec<_> = MergeIter::new(built.iter()).collect();
        let heap: Vec<_> = heap_reference::HeapMerge::new(built.iter()).collect();
        assert_eq!(tree, heap);
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            runs in proptest::collection::vec(
                proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..8),
                     proptest::collection::vec(any::<u8>(), 0..8)), 0..40),
                0..6))
        {
            let built = runs_from(&runs);
            let merged: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(built.iter())
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            let mut expect: Vec<(Vec<u8>, Vec<u8>)> =
                runs.into_iter().flatten().collect();
            expect.sort();
            prop_assert_eq!(merged, expect);
        }

        /// Tentpole determinism contract: the loser tree emits the exact
        /// record sequence of the previous BinaryHeap merge — duplicate
        /// keys, duplicate records, and empty runs included — and
        /// [`merge_runs`] serializes that sequence byte-identically.
        #[test]
        fn loser_tree_equals_heap_record_for_record(
            runs in proptest::collection::vec(
                proptest::collection::vec(
                    (proptest::collection::vec(0u8..5, 0..4),
                     proptest::collection::vec(0u8..5, 0..3)), 0..30),
                0..8))
        {
            let built = runs_from(&runs);
            let tree: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(built.iter())
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            let heap: Vec<(Vec<u8>, Vec<u8>)> =
                heap_reference::HeapMerge::new(built.iter())
                    .map(|(k, v)| (k.to_vec(), v.to_vec()))
                    .collect();
            prop_assert_eq!(&tree, &heap);

            // Byte identity of the materialized merge vs. serializing the
            // heap's record sequence.
            let merged = merge_runs(built.iter());
            let mut expect_bytes = Vec::new();
            for (k, v) in &heap {
                gw_storage::varint::write_len(&mut expect_bytes, k.len());
                gw_storage::varint::write_len(&mut expect_bytes, v.len());
                expect_bytes.extend_from_slice(k);
                expect_bytes.extend_from_slice(v);
            }
            prop_assert_eq!(merged.bytes(), expect_bytes.as_slice());
        }

        #[test]
        fn grouped_merge_covers_every_record(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..4),
                 proptest::collection::vec(any::<u8>(), 0..4)), 0..100))
        {
            let run = {
                let mut b = RunBuilder::new();
                for (k, v) in &pairs {
                    b.push(k, v);
                }
                b.build()
            };
            let total: usize = GroupedMerge::new([&run]).map(|(_, vs)| vs.len()).sum();
            prop_assert_eq!(total, pairs.len());
            // Distinct keys appear exactly once.
            let keys: Vec<Vec<u8>> = GroupedMerge::new([&run]).map(|(k, _)| k.to_vec()).collect();
            let mut dedup = keys.clone();
            dedup.dedup();
            prop_assert_eq!(keys.len(), dedup.len());
        }
    }
}
