//! MSB-radix sort over a flat record arena's offset index.
//!
//! The partitioning stage sorts each chunk's records by `(key, value)`
//! bytes. Instead of comparison-sorting owned `(Vec<u8>, Vec<u8>)` pairs,
//! records stay serialized in one flat arena (see [`crate::kv::RunBuilder`])
//! and only the compact offset index moves: an MSB (most-significant-byte
//! first) radix pass buckets the index by successive key bytes, falling back
//! to comparison sort below a small-bucket threshold. This is the flat-run
//! layout that k-mer pipelines (GGCAT's `fast_smart_radix_sort` over bucket
//! arenas) use for exactly this stage shape.
//!
//! ## Determinism contract
//!
//! The produced order is **identical** to `sort_unstable()` on owned
//! `(key, value)` pairs: keys compare bytewise, ties compare by value bytes.
//! Records equal in both key and value serialize identically, so run bytes
//! are byte-for-byte what the previous comparison sort emitted — the shuffle
//! de-duplication of re-executed map tasks relies on this.

use crate::kv::RecRef;

/// Below this many entries a bucket is comparison-sorted; the radix
/// machinery only pays off on larger buckets.
const SMALL: usize = 32;

/// Sort `index` by `(key, value)` bytes of the records it references in
/// `arena`. `scratch` is scatter space, grown as needed and reusable across
/// calls (the run pool recycles it).
pub(crate) fn sort_index(arena: &[u8], index: &mut [RecRef], scratch: &mut Vec<RecRef>) {
    if index.len() <= 1 {
        return;
    }
    if scratch.len() < index.len() {
        scratch.resize(index.len(), RecRef::default());
    }
    sort_at(arena, index, 0, scratch);
}

/// Compare two records whose keys agree on the first `depth` bytes.
#[inline]
fn cmp_suffix(arena: &[u8], a: &RecRef, b: &RecRef, depth: usize) -> std::cmp::Ordering {
    (&a.key(arena)[depth..], a.value(arena)).cmp(&(&b.key(arena)[depth..], b.value(arena)))
}

/// Bucket of a record at `depth`: 0 for "key exhausted", `1 + byte` else.
#[inline]
fn bucket_of(arena: &[u8], r: &RecRef, depth: usize) -> usize {
    let key = r.key(arena);
    if key.len() <= depth {
        0
    } else {
        1 + key[depth] as usize
    }
}

/// Recursive MSB pass. Invariant: every key in `idx` shares its first
/// `depth` bytes.
fn sort_at(arena: &[u8], idx: &mut [RecRef], mut depth: usize, scratch: &mut Vec<RecRef>) {
    loop {
        if idx.len() <= SMALL {
            idx.sort_unstable_by(|a, b| cmp_suffix(arena, a, b, depth));
            return;
        }
        let mut counts = [0usize; 257];
        for r in idx.iter() {
            counts[bucket_of(arena, r, depth)] += 1;
        }
        // Long-common-prefix fast path: all records in one byte bucket means
        // no scatter is needed — advance a byte and loop (this also bounds
        // recursion depth on pathological shared-prefix keys).
        if let Some(only) = counts.iter().position(|&c| c == idx.len()) {
            if only == 0 {
                // Keys fully equal: order by value bytes.
                idx.sort_unstable_by(|a, b| a.value(arena).cmp(b.value(arena)));
                return;
            }
            depth += 1;
            continue;
        }
        let mut starts = [0usize; 257];
        let mut acc = 0usize;
        for (s, &c) in starts.iter_mut().zip(counts.iter()) {
            *s = acc;
            acc += c;
        }
        let mut cursors = starts;
        for r in idx.iter() {
            let b = bucket_of(arena, r, depth);
            scratch[cursors[b]] = *r;
            cursors[b] += 1;
        }
        idx.copy_from_slice(&scratch[..idx.len()]);
        // Bucket 0 holds records whose keys end here — equal keys, ordered
        // by value. The byte buckets recurse one key byte deeper.
        if counts[0] > 1 {
            idx[..counts[0]].sort_unstable_by(|a, b| a.value(arena).cmp(b.value(arena)));
        }
        for b in 1..257 {
            if counts[b] > 1 {
                let lo = starts[b];
                sort_at(arena, &mut idx[lo..lo + counts[b]], depth + 1, scratch);
            }
        }
        return;
    }
}

#[cfg(test)]
mod tests {
    use crate::kv::RunBuilder;
    use proptest::prelude::*;

    /// Reference model: the exact pre-arena implementation — owned pairs,
    /// `sort_unstable`, varint serialization.
    fn naive_run_bytes(pairs: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
        let mut sorted = pairs.to_vec();
        sorted.sort_unstable();
        let mut bytes = Vec::new();
        for (k, v) in &sorted {
            gw_storage::varint::write_len(&mut bytes, k.len());
            gw_storage::varint::write_len(&mut bytes, v.len());
            bytes.extend_from_slice(k);
            bytes.extend_from_slice(v);
        }
        bytes
    }

    fn build_bytes(pairs: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
        let mut b = RunBuilder::new();
        for (k, v) in pairs {
            b.push(k, v);
        }
        b.build().bytes().to_vec()
    }

    #[test]
    fn shared_prefix_keys_sort_correctly() {
        let prefix = vec![0xABu8; 300];
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..200u32)
            .map(|i| {
                let mut k = prefix.clone();
                k.extend_from_slice(&(i % 50).to_be_bytes());
                (k, i.to_le_bytes().to_vec())
            })
            .collect();
        pairs.reverse();
        assert_eq!(build_bytes(&pairs), naive_run_bytes(&pairs));
    }

    #[test]
    fn prefix_of_another_key_sorts_first() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"abcd".to_vec(), b"1".to_vec()),
            (b"ab".to_vec(), b"2".to_vec()),
            (b"abc".to_vec(), b"3".to_vec()),
            (b"".to_vec(), b"4".to_vec()),
        ];
        assert_eq!(build_bytes(&pairs), naive_run_bytes(&pairs));
    }

    proptest! {
        /// Tentpole determinism contract: radix index-sort output is
        /// byte-identical to the previous `sort_unstable` path for
        /// arbitrary key/value sets (duplicates included).
        #[test]
        fn radix_bytes_equal_sort_unstable_bytes(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..12),
                 proptest::collection::vec(any::<u8>(), 0..10)), 0..300))
        {
            prop_assert_eq!(build_bytes(&pairs), naive_run_bytes(&pairs));
        }

        /// Low-entropy keys drive records through the large-bucket radix
        /// path and the equal-key value sort.
        #[test]
        fn radix_bytes_equal_on_dense_duplicates(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(0u8..3, 0..4),
                 proptest::collection::vec(0u8..3, 0..3)), 0..400))
        {
            prop_assert_eq!(build_bytes(&pairs), naive_run_bytes(&pairs));
        }
    }
}
