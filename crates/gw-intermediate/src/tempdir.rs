//! Minimal self-cleaning temporary directory (no external crates).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory with a unique name under the OS temp dir.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let unique = format!(
            "{prefix}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let path;
        {
            let dir = TempDir::new("gw-test").unwrap();
            path = dir.path().to_path_buf();
            assert!(path.is_dir());
            std::fs::write(dir.file("x.bin"), b"data").unwrap();
        }
        assert!(!path.exists());
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("gw-test").unwrap();
        let b = TempDir::new("gw-test").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
