//! Sorted key/value runs — the unit of intermediate data.
//!
//! A [`Run`] is a byte buffer holding records `varint(klen) varint(vlen)
//! key value`, sorted by `(key, value)`. Runs are produced by the map
//! pipeline's partitioning stage (which sorts each chunk's output), cached,
//! spilled, shipped between nodes, and finally k-way merged for reduction.
//! Byte-wise key order is the job's sort order, as in Hadoop's raw
//! comparator fast path.
//!
//! Run bytes are [`Bytes`]-backed: cloning a run, caching it, retaining it
//! for shuffle recovery, and framing it onto the network all share one
//! refcounted arena slice instead of copying. [`RunBuilder`] accumulates
//! records in a single flat arena (records serialized at push time) with a
//! compact offset index; `build` sorts the index with the MSB radix sort in
//! [`crate::radix`] and gathers the records in one pass — no per-record
//! allocation, and the arena/index buffers recycle through a
//! [`crate::pool::RunPool`].

use bytes::Bytes;
use gw_storage::varint;

use crate::pool::RunPool;
use crate::radix;

/// A sorted, serialized run of key/value records.
///
/// Cheap to clone: the underlying buffer is refcounted ([`Bytes`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Run {
    bytes: Bytes,
    records: usize,
}

impl Run {
    /// Wrap raw bytes known to be a valid, sorted record stream.
    ///
    /// Used when receiving runs from the network; validity is checked in
    /// debug builds. Accepts `Vec<u8>` or [`Bytes`]; the latter is
    /// zero-copy.
    pub fn from_sorted_bytes(bytes: impl Into<Bytes>, records: usize) -> Self {
        let run = Run {
            bytes: bytes.into(),
            records,
        };
        debug_assert!(run.check_sorted(), "run bytes are not sorted");
        run
    }

    /// Serialized length in bytes.
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of records.
    #[inline]
    pub fn records(&self) -> usize {
        self.records
    }

    /// `true` when the run has no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The raw serialized bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into the shared byte buffer (zero-copy: the shuffle ships
    /// this slice as-is, and retention/caching clones are refcounts).
    pub fn into_shared(self) -> Bytes {
        self.bytes
    }

    /// Iterate over `(key, value)` slices in sorted order.
    pub fn iter(&self) -> RunIter<'_> {
        RunIter { rest: &self.bytes }
    }

    /// Verify the sorted invariant (O(n), used in debug assertions/tests).
    pub fn check_sorted(&self) -> bool {
        let mut prev: Option<(&[u8], &[u8])> = None;
        let mut count = 0usize;
        for (k, v) in self.iter() {
            if let Some((pk, pv)) = prev {
                if (pk, pv) > (k, v) {
                    return false;
                }
            }
            prev = Some((k, v));
            count += 1;
        }
        count == self.records
    }
}

/// Borrowing iterator over a run's records.
#[derive(Debug, Clone)]
pub struct RunIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for RunIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        let (klen, n1) = varint::read_len(self.rest).expect("corrupt run: key length");
        let (vlen, n2) = varint::read_len(&self.rest[n1..]).expect("corrupt run: value length");
        let body = &self.rest[n1 + n2..];
        assert!(body.len() >= klen + vlen, "corrupt run: truncated record");
        let key = &body[..klen];
        let value = &body[klen..klen + vlen];
        self.rest = &body[klen + vlen..];
        Some((key, value))
    }
}

impl<'a> IntoIterator for &'a Run {
    type Item = (&'a [u8], &'a [u8]);
    type IntoIter = RunIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Compact reference to one serialized record inside a builder arena.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RecRef {
    /// Arena offset of the record header.
    off: u32,
    /// Header (two varints) length.
    hdr: u16,
    klen: u32,
    vlen: u32,
}

impl RecRef {
    #[inline]
    pub(crate) fn key<'a>(&self, arena: &'a [u8]) -> &'a [u8] {
        let start = self.off as usize + self.hdr as usize;
        &arena[start..start + self.klen as usize]
    }

    #[inline]
    pub(crate) fn value<'a>(&self, arena: &'a [u8]) -> &'a [u8] {
        let start = self.off as usize + self.hdr as usize + self.klen as usize;
        &arena[start..start + self.vlen as usize]
    }

    /// Serialized record length (header + key + value).
    #[inline]
    fn total(&self) -> usize {
        self.hdr as usize + self.klen as usize + self.vlen as usize
    }
}

/// The recyclable guts of a [`RunBuilder`]: the flat record arena, the
/// offset index sorted in its place, and the radix scatter scratch.
#[derive(Debug, Default)]
pub(crate) struct BuilderParts {
    pub(crate) arena: Vec<u8>,
    pub(crate) index: Vec<RecRef>,
    pub(crate) scratch: Vec<RecRef>,
}

impl BuilderParts {
    /// Clear contents, keeping capacity for reuse.
    pub(crate) fn clear(&mut self) {
        self.arena.clear();
        self.index.clear();
        // `scratch` holds no live data between sorts; keep as-is.
    }
}

/// Accumulates unsorted records in a flat arena, then index-sorts and
/// gathers them into a [`Run`]. This is the partitioning stage's workhorse.
///
/// Records are serialized once at `push`; `build` never re-encodes — it
/// sorts the offset index (MSB radix on key bytes, value tie-break) and
/// copies whole record slices in index order.
#[derive(Debug, Default)]
pub struct RunBuilder {
    parts: BuilderParts,
    pool: Option<std::sync::Arc<RunPool>>,
}

impl RunBuilder {
    /// Empty builder (unpooled; see [`RunPool::builder`] for the recycling
    /// path).
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn recycled(parts: BuilderParts, pool: std::sync::Arc<RunPool>) -> Self {
        RunBuilder {
            parts,
            pool: Some(pool),
        }
    }

    /// Add one record.
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        let off = self.parts.arena.len();
        assert!(
            off + 20 + key.len() + value.len() <= u32::MAX as usize,
            "run arena exceeds the 4 GiB index limit"
        );
        let h1 = varint::write_len(&mut self.parts.arena, key.len());
        let h2 = varint::write_len(&mut self.parts.arena, value.len());
        self.parts.arena.extend_from_slice(key);
        self.parts.arena.extend_from_slice(value);
        self.parts.index.push(RecRef {
            off: off as u32,
            hdr: (h1 + h2) as u16,
            klen: key.len() as u32,
            vlen: value.len() as u32,
        });
    }

    /// Add one owned record. (Retained for API compatibility; the arena
    /// layout copies payload bytes exactly once either way.)
    pub fn push_owned(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.push(&key, &value);
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.parts.index.len()
    }

    /// `true` when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.parts.index.is_empty()
    }

    /// Sort by `(key, value)` and serialize. Byte-identical to sorting
    /// owned pairs with `sort_unstable` and serializing in order (the
    /// determinism contract shuffle de-duplication relies on).
    pub fn build(mut self) -> Run {
        let parts = &mut self.parts;
        radix::sort_index(&parts.arena, &mut parts.index, &mut parts.scratch);
        let mut bytes = Vec::with_capacity(parts.arena.len());
        for r in &parts.index {
            let start = r.off as usize;
            bytes.extend_from_slice(&parts.arena[start..start + r.total()]);
        }
        let records = parts.index.len();
        // `self` drops here, recycling arena/index/scratch into the pool.
        Run {
            bytes: Bytes::from(bytes),
            records,
        }
    }
}

impl Drop for RunBuilder {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.release(std::mem::take(&mut self.parts));
        }
    }
}

/// Build a run directly from a record list (tests, generators).
pub fn run_from_pairs<'r>(pairs: impl IntoIterator<Item = (&'r [u8], &'r [u8])>) -> Run {
    let mut b = RunBuilder::new();
    for (k, v) in pairs {
        b.push(k, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builder_sorts_records() {
        let run = run_from_pairs([
            (b"zebra".as_slice(), b"1".as_slice()),
            (b"apple".as_slice(), b"2".as_slice()),
            (b"mango".as_slice(), b"3".as_slice()),
            (b"apple".as_slice(), b"1".as_slice()),
        ]);
        let keys: Vec<&[u8]> = run.iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![b"apple".as_slice(), b"apple", b"mango", b"zebra"]
        );
        // Duplicate keys sorted by value.
        let apples: Vec<&[u8]> = run
            .iter()
            .filter(|(k, _)| *k == b"apple")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(apples, vec![b"1".as_slice(), b"2"]);
        assert!(run.check_sorted());
        assert_eq!(run.records(), 4);
    }

    #[test]
    fn empty_run_is_valid() {
        let run = RunBuilder::new().build();
        assert!(run.is_empty());
        assert!(run.check_sorted());
        assert_eq!(run.iter().count(), 0);
    }

    #[test]
    fn from_sorted_bytes_roundtrip() {
        let run = run_from_pairs([(b"a".as_slice(), b"x".as_slice()), (b"b", b"y")]);
        let rebuilt = Run::from_sorted_bytes(run.bytes().to_vec(), run.records());
        assert_eq!(rebuilt, run);
    }

    #[test]
    fn clone_shares_the_buffer() {
        let run = run_from_pairs([(b"a".as_slice(), b"x".as_slice()), (b"b", b"y")]);
        let dup = run.clone();
        // Bytes clones are refcounts over one allocation, not copies.
        assert_eq!(run.bytes().as_ptr(), dup.bytes().as_ptr());
        assert_eq!(run.into_shared().as_ptr(), dup.bytes().as_ptr());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not sorted")]
    fn from_unsorted_bytes_panics_in_debug() {
        let a = run_from_pairs([(b"b".as_slice(), b"".as_slice())]);
        let b = run_from_pairs([(b"a".as_slice(), b"".as_slice())]);
        let mut bytes = a.bytes().to_vec();
        bytes.extend_from_slice(b.bytes());
        let _ = Run::from_sorted_bytes(bytes, 2);
    }

    proptest! {
        #[test]
        fn build_preserves_multiset(pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..12),
             proptest::collection::vec(any::<u8>(), 0..24)), 0..100)) {
            let mut builder = RunBuilder::new();
            for (k, v) in &pairs {
                builder.push(k, v);
            }
            let run = builder.build();
            prop_assert!(run.check_sorted());
            let mut expect: Vec<(Vec<u8>, Vec<u8>)> = pairs.clone();
            expect.sort();
            let got: Vec<(Vec<u8>, Vec<u8>)> =
                run.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
