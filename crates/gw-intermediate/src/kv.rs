//! Sorted key/value runs — the unit of intermediate data.
//!
//! A [`Run`] is a byte buffer holding records `varint(klen) varint(vlen)
//! key value`, sorted by `(key, value)`. Runs are produced by the map
//! pipeline's partitioning stage (which sorts each chunk's output), cached,
//! spilled, shipped between nodes, and finally k-way merged for reduction.
//! Byte-wise key order is the job's sort order, as in Hadoop's raw
//! comparator fast path.

use gw_storage::varint;

/// A sorted, serialized run of key/value records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Run {
    bytes: Vec<u8>,
    records: usize,
}

impl Run {
    /// Wrap raw bytes known to be a valid, sorted record stream.
    ///
    /// Used when receiving runs from the network; validity is checked in
    /// debug builds.
    pub fn from_sorted_bytes(bytes: Vec<u8>, records: usize) -> Self {
        let run = Run { bytes, records };
        debug_assert!(run.check_sorted(), "run bytes are not sorted");
        run
    }

    /// Serialized length in bytes.
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of records.
    #[inline]
    pub fn records(&self) -> usize {
        self.records
    }

    /// `true` when the run has no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The raw serialized bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Iterate over `(key, value)` slices in sorted order.
    pub fn iter(&self) -> RunIter<'_> {
        RunIter { rest: &self.bytes }
    }

    /// Verify the sorted invariant (O(n), used in debug assertions/tests).
    pub fn check_sorted(&self) -> bool {
        let mut prev: Option<(&[u8], &[u8])> = None;
        let mut count = 0usize;
        for (k, v) in self.iter() {
            if let Some((pk, pv)) = prev {
                if (pk, pv) > (k, v) {
                    return false;
                }
            }
            prev = Some((k, v));
            count += 1;
        }
        count == self.records
    }
}

/// Borrowing iterator over a run's records.
#[derive(Debug, Clone)]
pub struct RunIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for RunIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        let (klen, n1) = varint::read_len(self.rest).expect("corrupt run: key length");
        let (vlen, n2) = varint::read_len(&self.rest[n1..]).expect("corrupt run: value length");
        let body = &self.rest[n1 + n2..];
        assert!(body.len() >= klen + vlen, "corrupt run: truncated record");
        let key = &body[..klen];
        let value = &body[klen..klen + vlen];
        self.rest = &body[klen + vlen..];
        Some((key, value))
    }
}

impl<'a> IntoIterator for &'a Run {
    type Item = (&'a [u8], &'a [u8]);
    type IntoIter = RunIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Accumulates unsorted records, then sorts and serializes them into a
/// [`Run`]. This is the partitioning stage's workhorse.
#[derive(Debug, Default)]
pub struct RunBuilder {
    records: Vec<(Vec<u8>, Vec<u8>)>,
    payload_bytes: usize,
}

impl RunBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one record.
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        self.payload_bytes += key.len() + value.len();
        self.records.push((key.to_vec(), value.to_vec()));
    }

    /// Add one owned record (avoids a copy).
    pub fn push_owned(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.payload_bytes += key.len() + value.len();
        self.records.push((key, value));
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sort by `(key, value)` and serialize.
    pub fn build(mut self) -> Run {
        self.records.sort_unstable();
        let mut bytes =
            Vec::with_capacity(self.payload_bytes + self.records.len() * 4 + 16);
        for (k, v) in &self.records {
            varint::write_len(&mut bytes, k.len());
            varint::write_len(&mut bytes, v.len());
            bytes.extend_from_slice(k);
            bytes.extend_from_slice(v);
        }
        Run {
            bytes,
            records: self.records.len(),
        }
    }
}

/// Build a run directly from a record list (tests, generators).
pub fn run_from_pairs<'r>(pairs: impl IntoIterator<Item = (&'r [u8], &'r [u8])>) -> Run {
    let mut b = RunBuilder::new();
    for (k, v) in pairs {
        b.push(k, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builder_sorts_records() {
        let run = run_from_pairs([
            (b"zebra".as_slice(), b"1".as_slice()),
            (b"apple".as_slice(), b"2".as_slice()),
            (b"mango".as_slice(), b"3".as_slice()),
            (b"apple".as_slice(), b"1".as_slice()),
        ]);
        let keys: Vec<&[u8]> = run.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"apple".as_slice(), b"apple", b"mango", b"zebra"]);
        // Duplicate keys sorted by value.
        let apples: Vec<&[u8]> = run
            .iter()
            .filter(|(k, _)| *k == b"apple")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(apples, vec![b"1".as_slice(), b"2"]);
        assert!(run.check_sorted());
        assert_eq!(run.records(), 4);
    }

    #[test]
    fn empty_run_is_valid() {
        let run = RunBuilder::new().build();
        assert!(run.is_empty());
        assert!(run.check_sorted());
        assert_eq!(run.iter().count(), 0);
    }

    #[test]
    fn from_sorted_bytes_roundtrip() {
        let run = run_from_pairs([(b"a".as_slice(), b"x".as_slice()), (b"b", b"y")]);
        let rebuilt = Run::from_sorted_bytes(run.bytes().to_vec(), run.records());
        assert_eq!(rebuilt, run);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not sorted")]
    fn from_unsorted_bytes_panics_in_debug() {
        let a = run_from_pairs([(b"b".as_slice(), b"".as_slice())]);
        let b = run_from_pairs([(b"a".as_slice(), b"".as_slice())]);
        let mut bytes = a.into_bytes();
        bytes.extend_from_slice(b.bytes());
        let _ = Run::from_sorted_bytes(bytes, 2);
    }

    proptest! {
        #[test]
        fn build_preserves_multiset(pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..12),
             proptest::collection::vec(any::<u8>(), 0..24)), 0..100)) {
            let mut builder = RunBuilder::new();
            for (k, v) in &pairs {
                builder.push(k, v);
            }
            let run = builder.build();
            prop_assert!(run.check_sorted());
            let mut expect: Vec<(Vec<u8>, Vec<u8>)> = pairs.clone();
            expect.sort();
            let got: Vec<(Vec<u8>, Vec<u8>)> =
                run.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
