//! Sorted-record stream cursors: the abstraction that makes every merge
//! site external-merge-capable.
//!
//! A [`RunCursor`] is a positioned read head over one sorted record
//! stream: `key()`/`value()`/`rec()` view the current record,
//! `advance()` steps to the next (and is the only operation that can
//! fail, since it may touch disk). Two implementations cover the two
//! places intermediate data lives:
//!
//! * [`MemCursor`] — an in-memory [`Run`] (refcounted, zero-copy);
//! * [`SpillCursor`] — a framed spill file (see [`crate::frame`]),
//!   streamed with exactly one decoded frame resident at a time.
//!
//! The loser-tree merges in [`crate::merge`] are generic over this
//! trait, so compaction and the reduce-input merge operate on any mix of
//! cached and spilled data in `k × frame` memory — never `k × run`.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gw_storage::varint;

use crate::frame::{self, FrameIndex, SpillFaultHook, SpillOp};
use crate::gauge::MemGauge;
use crate::kv::Run;

/// A positioned cursor over one sorted stream of serialized records.
///
/// While `!done()`, the accessor methods view the current record; after
/// the last record `advance()` sets `done()` and the accessors return
/// empty slices. Borrows returned by the accessors are invalidated by
/// `advance()` (the underlying buffer may be refilled), which is why
/// this is a lending cursor and not an [`Iterator`].
pub trait RunCursor: Send {
    /// `true` once the stream is exhausted.
    fn done(&self) -> bool;
    /// Current record's key.
    fn key(&self) -> &[u8];
    /// Current record's value.
    fn value(&self) -> &[u8];
    /// Current record's full serialized extent (header + payload), for
    /// gather-style merging without re-encoding.
    fn rec(&self) -> &[u8];
    /// Step to the next record. Infallible for in-memory sources; a
    /// spill cursor may fail with a typed I/O or corruption error.
    fn advance(&mut self) -> io::Result<()>;
}

impl<T: RunCursor + ?Sized> RunCursor for Box<T> {
    fn done(&self) -> bool {
        (**self).done()
    }
    fn key(&self) -> &[u8] {
        (**self).key()
    }
    fn value(&self) -> &[u8] {
        (**self).value()
    }
    fn rec(&self) -> &[u8] {
        (**self).rec()
    }
    fn advance(&mut self) -> io::Result<()> {
        (**self).advance()
    }
}

/// Parse the record at `pos`: returns `(header_len, key_len, value_len)`.
#[inline]
fn parse_record(buf: &[u8], pos: usize) -> io::Result<(usize, usize, usize)> {
    let corrupt =
        |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("corrupt run: {msg}"));
    let rest = &buf[pos..];
    let (klen, n1) = varint::read_len(rest).ok_or_else(|| corrupt("key length"))?;
    let (vlen, n2) = varint::read_len(&rest[n1..]).ok_or_else(|| corrupt("value length"))?;
    let hdr = n1 + n2;
    if rest.len() < hdr + klen + vlen {
        return Err(corrupt("truncated record"));
    }
    Ok((hdr, klen, vlen))
}

/// Cursor over an owned in-memory [`Run`] (refcount clone; zero-copy).
pub struct MemCursor {
    run: Run,
    /// Offset of the current record; `rec_end` is its exclusive end.
    pos: usize,
    hdr: usize,
    klen: usize,
    vlen: usize,
    rec_end: usize,
    done: bool,
}

impl MemCursor {
    /// Position a cursor at the run's first record.
    pub fn new(run: Run) -> Self {
        let mut c = MemCursor {
            run,
            pos: 0,
            hdr: 0,
            klen: 0,
            vlen: 0,
            rec_end: 0,
            done: false,
        };
        c.advance().expect("in-memory runs cannot fail to parse");
        c
    }

    fn load(&mut self) -> io::Result<()> {
        let buf = self.run.bytes();
        if self.pos == buf.len() {
            self.done = true;
            return Ok(());
        }
        let (hdr, klen, vlen) = parse_record(buf, self.pos)?;
        self.hdr = hdr;
        self.klen = klen;
        self.vlen = vlen;
        self.rec_end = self.pos + hdr + klen + vlen;
        Ok(())
    }
}

impl RunCursor for MemCursor {
    fn done(&self) -> bool {
        self.done
    }
    fn key(&self) -> &[u8] {
        if self.done {
            return &[];
        }
        let start = self.pos + self.hdr;
        &self.run.bytes()[start..start + self.klen]
    }
    fn value(&self) -> &[u8] {
        if self.done {
            return &[];
        }
        let start = self.pos + self.hdr + self.klen;
        &self.run.bytes()[start..start + self.vlen]
    }
    fn rec(&self) -> &[u8] {
        if self.done {
            return &[];
        }
        &self.run.bytes()[self.pos..self.rec_end]
    }
    fn advance(&mut self) -> io::Result<()> {
        if self.done {
            return Ok(());
        }
        self.pos = self.rec_end;
        self.load()
    }
}

/// Cursor over a framed spill file, streaming frame by frame with one
/// decode buffer (plus the stored-image scratch) resident.
pub struct SpillCursor {
    file: File,
    index: FrameIndex,
    /// Next frame to load (frames `0..next_frame` are consumed).
    next_frame: usize,
    /// Decoded raw bytes of the current frame.
    buf: Vec<u8>,
    /// Stored (compressed) image scratch, reused across frames.
    scratch: Vec<u8>,
    pos: usize,
    hdr: usize,
    klen: usize,
    vlen: usize,
    rec_end: usize,
    done: bool,
    gauge: Option<Arc<MemGauge>>,
    charged: usize,
    hook: Option<Arc<dyn SpillFaultHook>>,
    frames_read: Option<Arc<AtomicUsize>>,
}

impl SpillCursor {
    /// Open a framed spill and position at its first record. Validates
    /// the footer index up front; each frame's checksum is verified as
    /// it streams in.
    pub(crate) fn open(
        path: &Path,
        gauge: Option<Arc<MemGauge>>,
        hook: Option<Arc<dyn SpillFaultHook>>,
        frames_read: Option<Arc<AtomicUsize>>,
    ) -> io::Result<Self> {
        if let Some(h) = &hook {
            if h.spill_fault(SpillOp::Read) {
                return Err(io::Error::other("injected spill read fault"));
            }
        }
        let mut file = File::open(path)?;
        let index = frame::read_index(&mut file)?;
        let mut c = SpillCursor {
            file,
            index,
            next_frame: 0,
            buf: Vec::new(),
            scratch: Vec::new(),
            pos: 0,
            hdr: 0,
            klen: 0,
            vlen: 0,
            rec_end: 0,
            done: false,
            gauge,
            charged: 0,
            hook,
            frames_read,
        };
        c.advance()?;
        Ok(c)
    }

    /// Total records in the spill (from the validated footer).
    pub fn records(&self) -> usize {
        self.index.records_total as usize
    }

    /// Total raw (decompressed) bytes in the spill (from the footer).
    pub fn raw_bytes(&self) -> usize {
        self.index.raw_total as usize
    }

    fn load_next_frame(&mut self) -> io::Result<()> {
        if let Some(h) = &self.hook {
            if h.spill_fault(SpillOp::Read) {
                return Err(io::Error::other("injected spill read fault"));
            }
        }
        let entry = self.index.entries[self.next_frame];
        self.next_frame += 1;
        frame::read_frame(
            &mut self.file,
            &entry,
            self.index.compressed,
            &mut self.scratch,
            &mut self.buf,
        )?;
        if let Some(g) = &self.gauge {
            g.discharge(self.charged);
            self.charged = self.buf.len() + self.scratch.len();
            g.charge(self.charged);
        }
        if let Some(c) = &self.frames_read {
            c.fetch_add(1, Ordering::Relaxed);
        }
        self.pos = 0;
        self.rec_end = 0;
        Ok(())
    }
}

impl RunCursor for SpillCursor {
    fn done(&self) -> bool {
        self.done
    }
    fn key(&self) -> &[u8] {
        if self.done {
            return &[];
        }
        let start = self.pos + self.hdr;
        &self.buf[start..start + self.klen]
    }
    fn value(&self) -> &[u8] {
        if self.done {
            return &[];
        }
        let start = self.pos + self.hdr + self.klen;
        &self.buf[start..start + self.vlen]
    }
    fn rec(&self) -> &[u8] {
        if self.done {
            return &[];
        }
        &self.buf[self.pos..self.rec_end]
    }
    fn advance(&mut self) -> io::Result<()> {
        if self.done {
            return Ok(());
        }
        self.pos = self.rec_end;
        while self.pos == self.buf.len() {
            if self.next_frame == self.index.entries.len() {
                self.done = true;
                return Ok(());
            }
            self.load_next_frame()?;
        }
        let (hdr, klen, vlen) = parse_record(&self.buf, self.pos)?;
        self.hdr = hdr;
        self.klen = klen;
        self.vlen = vlen;
        self.rec_end = self.pos + hdr + klen + vlen;
        Ok(())
    }
}

impl Drop for SpillCursor {
    fn drop(&mut self) {
        if let Some(g) = &self.gauge {
            g.discharge(self.charged);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::run_from_pairs;

    fn sample_run(n: usize) -> Run {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect();
        run_from_pairs(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
    }

    #[test]
    fn mem_cursor_walks_every_record() {
        let run = sample_run(100);
        let mut c = MemCursor::new(run.clone());
        let mut got = Vec::new();
        while !c.done() {
            got.push((c.key().to_vec(), c.value().to_vec()));
            c.advance().unwrap();
        }
        let expect: Vec<_> = run.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(got, expect);
        // Exhausted cursors stay exhausted and return empty views.
        c.advance().unwrap();
        assert!(c.done() && c.key().is_empty() && c.rec().is_empty());
    }

    #[test]
    fn spill_cursor_streams_identically_to_the_run() {
        let run = sample_run(500);
        let dir = crate::tempdir::TempDir::new("gw-cursor-test").unwrap();
        let path = dir.file("s.gw");
        let mut w = frame::FrameWriter::create(path.clone(), 1 << 10, true, None, None).unwrap();
        let mut mc = MemCursor::new(run.clone());
        while !mc.done() {
            w.push(mc.rec()).unwrap();
            mc.advance().unwrap();
        }
        let stats = w.finish().unwrap();
        assert!(stats.frames > 1);

        let gauge = Arc::new(MemGauge::new());
        let mut c = SpillCursor::open(&path, Some(Arc::clone(&gauge)), None, None).unwrap();
        assert_eq!(c.records(), 500);
        let mut got = Vec::new();
        while !c.done() {
            got.push((c.key().to_vec(), c.value().to_vec()));
            c.advance().unwrap();
        }
        let expect: Vec<_> = run.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(got, expect);
        // One frame resident at a time: the gauge never saw more than the
        // decoded frame + its stored image, far below the run size.
        assert!(gauge.peak() > 0);
        assert!(
            gauge.peak() < run.len_bytes(),
            "peak {} should be below the {}-byte run",
            gauge.peak(),
            run.len_bytes()
        );
        drop(c);
        assert_eq!(gauge.current(), 0, "drop discharges the cursor's buffers");
    }
}
