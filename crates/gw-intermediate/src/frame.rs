//! Framed on-disk spill format: record-aligned frames, each independently
//! compressed and checksummed, plus a footer index.
//!
//! The whole-run-blob spills this replaces had to be read and
//! decompressed in full before a single record could be examined — peak
//! memory per spill equaled the spill's raw size. A framed spill decodes
//! incrementally: a reader holds exactly one frame's raw bytes (plus its
//! compressed image) at a time, so the external k-way merges in
//! [`crate::store`] run in `k × frame` memory regardless of partition
//! size (paper §III-B's larger-than-memory intermediate data).
//!
//! ## Layout
//!
//! ```text
//! file    := frame* index trailer
//! frame   := stored payload (per-frame LZ-compressed, or raw)
//! index   := frame_count × { stored_len u32 | raw_len u32 |
//!                            records u32   | checksum u64 }   (20 B LE)
//! trailer := frame_count u32 | flags u32 | raw_total u64 |
//!            records_total u64 | magic u64                    (32 B LE)
//! ```
//!
//! Frames are cut at record boundaries (a serialized record never spans
//! frames), so every frame is independently a valid sorted record slice.
//! `checksum` is FNV-1a 64 over the *stored* bytes: truncation, bit rot
//! and torn writes all surface as a typed [`std::io::ErrorKind::InvalidData`]
//! error instead of a debug assertion or a decoder panic.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use crate::compress;
use crate::gauge::MemGauge;

/// `"GWFRAME1"` in LE byte order.
const MAGIC: u64 = u64::from_le_bytes(*b"GWFRAME1");
/// Per-frame index entry size in bytes.
const ENTRY_LEN: usize = 20;
/// Trailer size in bytes.
const TRAILER_LEN: usize = 32;
/// Trailer flag bit: frames are LZ-compressed.
const FLAG_COMPRESSED: u32 = 1;

/// Which spill-file operation a fault hook is probed before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillOp {
    /// Writing a frame to a spill file.
    Write,
    /// Reading (or opening) a spill file.
    Read,
}

/// Chaos hook probed before every spill-file I/O operation.
///
/// Implemented by `gw-chaos::FaultPlan`; unarmed stores never consult it.
/// Returning `true` injects an I/O failure at the probe site, which the
/// store surfaces as a poisoned-store [`std::io::Error`] instead of a
/// merger-thread panic.
pub trait SpillFaultHook: Send + Sync {
    /// `true` to inject a failure for this operation.
    fn spill_fault(&self, op: SpillOp) -> bool;
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt spill: {msg}"))
}

fn injected(op: SpillOp) -> io::Error {
    io::Error::other(match op {
        SpillOp::Write => "injected spill write fault",
        SpillOp::Read => "injected spill read fault",
    })
}

/// One frame's index entry (offsets are derived cumulatively on read).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameEntry {
    pub(crate) offset: u64,
    pub(crate) stored_len: u32,
    pub(crate) raw_len: u32,
    pub(crate) records: u32,
    pub(crate) checksum: u64,
}

/// Parsed footer of a framed spill.
#[derive(Debug)]
pub(crate) struct FrameIndex {
    pub(crate) entries: Vec<FrameEntry>,
    pub(crate) compressed: bool,
    pub(crate) raw_total: u64,
    pub(crate) records_total: u64,
}

/// Read and validate the footer index of a framed spill file.
pub(crate) fn read_index(file: &mut File) -> io::Result<FrameIndex> {
    let len = file.seek(SeekFrom::End(0))?;
    if (len as usize) < TRAILER_LEN {
        return Err(corrupt("file shorter than the trailer"));
    }
    let mut trailer = [0u8; TRAILER_LEN];
    file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
    file.read_exact(&mut trailer)?;
    let magic = u64::from_le_bytes(trailer[24..32].try_into().unwrap());
    if magic != MAGIC {
        return Err(corrupt("bad magic (truncated or not a framed spill)"));
    }
    let frame_count = u32::from_le_bytes(trailer[0..4].try_into().unwrap()) as usize;
    let flags = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    let raw_total = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    let records_total = u64::from_le_bytes(trailer[16..24].try_into().unwrap());
    let index_len = frame_count * ENTRY_LEN;
    let footer_len = (index_len + TRAILER_LEN) as u64;
    if len < footer_len {
        return Err(corrupt("frame index extends past start of file"));
    }
    file.seek(SeekFrom::End(-(footer_len as i64)))?;
    let mut raw_index = vec![0u8; index_len];
    file.read_exact(&mut raw_index)?;
    let mut entries = Vec::with_capacity(frame_count);
    let mut offset = 0u64;
    let (mut raw_sum, mut rec_sum) = (0u64, 0u64);
    for chunk in raw_index.chunks_exact(ENTRY_LEN) {
        let stored_len = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let raw_len = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let records = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let checksum = u64::from_le_bytes(chunk[12..20].try_into().unwrap());
        entries.push(FrameEntry {
            offset,
            stored_len,
            raw_len,
            records,
            checksum,
        });
        offset += stored_len as u64;
        raw_sum += raw_len as u64;
        rec_sum += records as u64;
    }
    if offset != len - footer_len {
        return Err(corrupt("frame data region does not match the index"));
    }
    if raw_sum != raw_total || rec_sum != records_total {
        return Err(corrupt("trailer totals disagree with the frame index"));
    }
    Ok(FrameIndex {
        entries,
        compressed: flags & FLAG_COMPRESSED != 0,
        raw_total,
        records_total,
    })
}

/// Read one frame into `out`, verifying its checksum and raw length.
/// `scratch` holds the stored (possibly compressed) image between calls.
pub(crate) fn read_frame(
    file: &mut File,
    entry: &FrameEntry,
    compressed: bool,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.resize(entry.stored_len as usize, 0);
    file.seek(SeekFrom::Start(entry.offset))?;
    file.read_exact(scratch)?;
    if fnv1a(scratch) != entry.checksum {
        return Err(corrupt("frame checksum mismatch"));
    }
    if compressed {
        *out =
            compress::decompress(scratch).map_err(|e| corrupt(&format!("frame payload: {e}")))?;
    } else {
        out.clear();
        out.extend_from_slice(scratch);
    }
    if out.len() != entry.raw_len as usize {
        return Err(corrupt("frame raw length mismatch"));
    }
    Ok(())
}

/// Totals of one finished spill file.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpillStats {
    /// Uncompressed record bytes.
    pub(crate) raw_bytes: usize,
    /// Final on-disk file size (frames + footer).
    pub(crate) disk_bytes: usize,
    pub(crate) records: usize,
    pub(crate) frames: usize,
}

/// Streaming writer of a framed spill: records accumulate in a staging
/// buffer that is cut, compressed and flushed one frame at a time, so
/// writing a spill of any size holds ~one frame in memory.
pub(crate) struct FrameWriter {
    file: BufWriter<File>,
    frame_size: usize,
    compress: bool,
    cur: Vec<u8>,
    cur_records: u32,
    entries: Vec<FrameEntry>,
    offset: u64,
    raw_total: u64,
    records_total: u64,
    gauge: Option<Arc<MemGauge>>,
    charged: usize,
    hook: Option<Arc<dyn SpillFaultHook>>,
}

impl FrameWriter {
    pub(crate) fn create(
        path: PathBuf,
        frame_size: usize,
        compress: bool,
        gauge: Option<Arc<MemGauge>>,
        hook: Option<Arc<dyn SpillFaultHook>>,
    ) -> io::Result<Self> {
        let frame_size = frame_size.max(1 << 10);
        let file = BufWriter::new(File::create(&path)?);
        // Staging buffer plus (when compressing) the encoded image.
        let charged = if compress { 2 * frame_size } else { frame_size };
        if let Some(g) = &gauge {
            g.charge(charged);
        }
        Ok(FrameWriter {
            file,
            frame_size,
            compress,
            cur: Vec::with_capacity(frame_size + 1024),
            cur_records: 0,
            entries: Vec::new(),
            offset: 0,
            raw_total: 0,
            records_total: 0,
            gauge,
            charged,
            hook,
        })
    }

    /// Append one serialized record; cuts a frame when the staging buffer
    /// reaches the frame size.
    pub(crate) fn push(&mut self, rec: &[u8]) -> io::Result<()> {
        self.cur.extend_from_slice(rec);
        self.cur_records += 1;
        if self.cur.len() >= self.frame_size {
            self.cut()?;
        }
        Ok(())
    }

    fn cut(&mut self) -> io::Result<()> {
        if self.cur.is_empty() {
            return Ok(());
        }
        if let Some(h) = &self.hook {
            if h.spill_fault(SpillOp::Write) {
                return Err(injected(SpillOp::Write));
            }
        }
        let enc;
        let stored: &[u8] = if self.compress {
            enc = compress::compress(&self.cur);
            &enc
        } else {
            &self.cur
        };
        assert!(
            self.cur.len() <= u32::MAX as usize && stored.len() <= u32::MAX as usize,
            "frame exceeds the 4 GiB entry limit"
        );
        self.file.write_all(stored)?;
        self.entries.push(FrameEntry {
            offset: self.offset,
            stored_len: stored.len() as u32,
            raw_len: self.cur.len() as u32,
            records: self.cur_records,
            checksum: fnv1a(stored),
        });
        self.offset += stored.len() as u64;
        self.raw_total += self.cur.len() as u64;
        self.records_total += self.cur_records as u64;
        self.cur.clear();
        self.cur_records = 0;
        Ok(())
    }

    /// Flush the final frame, write the footer, and return the totals.
    pub(crate) fn finish(mut self) -> io::Result<SpillStats> {
        self.cut()?;
        let mut footer = Vec::with_capacity(self.entries.len() * ENTRY_LEN + TRAILER_LEN);
        for e in &self.entries {
            footer.extend_from_slice(&e.stored_len.to_le_bytes());
            footer.extend_from_slice(&e.raw_len.to_le_bytes());
            footer.extend_from_slice(&e.records.to_le_bytes());
            footer.extend_from_slice(&e.checksum.to_le_bytes());
        }
        footer.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        footer.extend_from_slice(&if self.compress { FLAG_COMPRESSED } else { 0 }.to_le_bytes());
        footer.extend_from_slice(&self.raw_total.to_le_bytes());
        footer.extend_from_slice(&self.records_total.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        self.file.write_all(&footer)?;
        self.file.flush()?;
        Ok(SpillStats {
            raw_bytes: self.raw_total as usize,
            disk_bytes: self.offset as usize + footer.len(),
            records: self.records_total as usize,
            frames: self.entries.len(),
        })
    }
}

impl Drop for FrameWriter {
    fn drop(&mut self) {
        if let Some(g) = &self.gauge {
            g.discharge(self.charged);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> (crate::tempdir::TempDir, PathBuf) {
        let dir = crate::tempdir::TempDir::new("gw-frame-test").unwrap();
        let p = dir.file(name);
        (dir, p)
    }

    fn write_records(path: PathBuf, frame_size: usize, n: usize, compress: bool) -> SpillStats {
        let mut w = FrameWriter::create(path, frame_size, compress, None, None).unwrap();
        for i in 0..n {
            let mut rec = Vec::new();
            gw_storage::varint::write_len(&mut rec, 8);
            gw_storage::varint::write_len(&mut rec, 4);
            rec.extend_from_slice(format!("key{i:05}").as_bytes());
            rec.extend_from_slice(b"val1");
            w.push(&rec).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_multi_frame() {
        let (_dir, path) = tmp("s.gw");
        let stats = write_records(path.clone(), 1 << 10, 500, true);
        assert!(stats.frames > 1, "want multiple frames, got {stats:?}");
        assert_eq!(stats.records, 500);
        let mut f = File::open(&path).unwrap();
        let idx = read_index(&mut f).unwrap();
        assert_eq!(idx.entries.len(), stats.frames);
        assert_eq!(idx.records_total as usize, 500);
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        let mut raw = Vec::new();
        for e in &idx.entries {
            read_frame(&mut f, e, idx.compressed, &mut scratch, &mut out).unwrap();
            raw.extend_from_slice(&out);
        }
        assert_eq!(raw.len() as u64, idx.raw_total);
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let (_dir, path) = tmp("t.gw");
        write_records(path.clone(), 1 << 10, 200, true);
        let full = std::fs::read(&path).unwrap();
        // Chop the tail: the footer (or part of it) is gone.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = read_index(&mut File::open(&path).unwrap()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn flipped_payload_byte_fails_the_frame_checksum() {
        let (_dir, path) = tmp("c.gw");
        write_records(path.clone(), 1 << 10, 200, true);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0xff; // inside the first frame's stored payload
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let idx = read_index(&mut f).unwrap();
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        let err = read_frame(
            &mut f,
            &idx.entries[0],
            idx.compressed,
            &mut scratch,
            &mut out,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn uncompressed_spills_roundtrip_too() {
        let (_dir, path) = tmp("u.gw");
        let stats = write_records(path.clone(), 1 << 10, 300, false);
        let mut f = File::open(&path).unwrap();
        let idx = read_index(&mut f).unwrap();
        assert!(!idx.compressed);
        assert_eq!(idx.records_total as usize, stats.records);
    }
}
