//! Intermediate-data management for the Glasswing MapReduce engine.
//!
//! Paper §III-B: "each cluster node runs an independent group of threads to
//! manage intermediate data", with three components this crate implements:
//!
//! 1. an **in-memory cache** of partitions, merged and flushed to disk when
//!    their aggregate size exceeds a configurable threshold;
//! 2. a **receiver path** adding partitions produced by other nodes;
//! 3. **continuous multi-way merging** of on-disk partitions so the number
//!    of intermediate files stays below a configurable count.
//!
//! "All intermediate data Partitions residing in the cache or disk are
//! stored in a serialized and compressed form" — see [`compress`] for the
//! in-repo LZ codec. The **merge delay** — "the time dedicated to merging
//! intermediate data after the completion of the map phase and before
//! reduction starts" — is measured by [`store::IntermediateStore`] and is
//! the metric of paper Fig. 4(b).

pub mod compress;
pub mod cursor;
pub mod frame;
pub mod gauge;
pub mod kv;
pub mod merge;
pub mod pool;
mod radix;
pub mod store;
pub mod tempdir;

pub use cursor::{MemCursor, RunCursor, SpillCursor};
pub use frame::{SpillFaultHook, SpillOp};
pub use gauge::MemGauge;
pub use kv::{Run, RunBuilder};
pub use merge::{merge_runs, CursorMerge, GroupSlice, GroupedCursorMerge, GroupedMerge, MergeIter};
pub use pool::RunPool;
pub use store::{IntermediateConfig, IntermediateStore, StoreMetrics};
pub use tempdir::TempDir;

/// Identifier of an intermediate-data partition (0..P per job).
pub type PartitionId = u32;
