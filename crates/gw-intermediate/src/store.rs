//! Per-node intermediate-data store: partition cache, spill files, and the
//! background merger threads.
//!
//! Reproduces paper §III-B:
//!
//! * "each node maintains an in-memory cache of Partitions which are merged
//!   and flushed to disk when their aggregate size exceeds a configurable
//!   threshold" — [`IntermediateStore::add_run`] + the flush tasks;
//! * "intermediate data Partitions produced by other cluster nodes are
//!   received and added to the in-memory cache" — the network receiver
//!   calls the same `add_run`;
//! * "Partitions residing on disk are continuously merged using multi-way
//!   merging so the number of intermediate data files is limited to a
//!   configurable count" — the compaction step of the merger tasks;
//! * "Glasswing can be configured to use multiple threads to speed-up both
//!   the merge and flush operations" — `merger_threads`;
//! * the **merge delay** metric — "the time dedicated to merging
//!   intermediate data after the completion of the map phase and before
//!   reduction starts" — measured by [`IntermediateStore::finish_map`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::compress;
use crate::kv::Run;
use crate::merge::merge_runs;
use crate::tempdir::TempDir;
use crate::PartitionId;

/// Configuration of a node's intermediate store.
#[derive(Debug, Clone)]
pub struct IntermediateConfig {
    /// Number of partitions hosted by this node (the paper's `P`).
    pub num_partitions: u32,
    /// Aggregate cached bytes that trigger a merge-and-flush.
    pub cache_threshold: usize,
    /// Maximum spill files per partition before compaction merges them.
    pub max_spill_files: usize,
    /// Background merger/flusher threads (the paper sets this equal to `P`
    /// in its Fig. 4 experiments).
    pub merger_threads: usize,
    /// Whether spills are stored compressed (the paper always compresses;
    /// disabling is useful for ablation).
    pub compress: bool,
}

impl Default for IntermediateConfig {
    fn default() -> Self {
        IntermediateConfig {
            num_partitions: 1,
            cache_threshold: 64 << 20,
            max_spill_files: 8,
            merger_threads: 1,
            compress: true,
        }
    }
}

/// A spilled, serialized, (optionally) compressed run on disk.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
    records: usize,
    raw_bytes: usize,
}

#[derive(Debug, Default)]
struct PartState {
    cache: Vec<Run>,
    cache_bytes: usize,
    spills: Vec<SpillFile>,
    /// A flush/compact task is in flight for this partition.
    busy: bool,
}

#[derive(Debug, Default)]
struct Metrics {
    flushes: AtomicUsize,
    compactions: AtomicUsize,
    spilled_raw: AtomicUsize,
    spilled_disk: AtomicUsize,
    runs_added: AtomicUsize,
    records_added: AtomicUsize,
    merge_delay_nanos: AtomicU64,
    merges: AtomicUsize,
    merge_fanin: AtomicUsize,
}

/// Snapshot of store metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Cache→disk flush operations performed.
    pub flushes: usize,
    /// Disk compaction merges performed.
    pub compactions: usize,
    /// Uncompressed bytes spilled.
    pub spilled_raw: usize,
    /// On-disk (compressed) bytes spilled.
    pub spilled_disk: usize,
    /// Runs added to the cache (local + received).
    pub runs_added: usize,
    /// Records across all added runs.
    pub records_added: usize,
    /// Measured merge delay (zero until [`IntermediateStore::finish_map`]).
    pub merge_delay: Duration,
    /// Background `merge_runs` calls (cache flushes + compactions).
    ///
    /// Kept as store metrics rather than trace counters on purpose: these
    /// merges run on merger threads whose scheduling is timing-dependent,
    /// so emitting them as events would break the logical-stream
    /// determinism contract.
    pub merges: usize,
    /// Total runs consumed across those merges (fan-in pressure).
    pub merge_fanin: usize,
}

struct Inner {
    cfg: IntermediateConfig,
    dir: TempDir,
    parts: Vec<Mutex<PartState>>,
    cache_bytes: AtomicUsize,
    pending: AtomicUsize,
    quiesce_lock: Mutex<()>,
    quiesce_cv: Condvar,
    spill_seq: AtomicU64,
    metrics: Metrics,
}

impl Inner {
    fn task_done(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.quiesce_lock.lock();
            self.quiesce_cv.notify_all();
        }
    }

    fn wait_quiesce(&self) {
        let mut guard = self.quiesce_lock.lock();
        while self.pending.load(Ordering::Acquire) != 0 {
            self.quiesce_cv.wait(&mut guard);
        }
    }

    fn write_spill(&self, run: &Run) -> std::io::Result<SpillFile> {
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.file(&format!("spill-{seq}.gw"));
        let raw = run.bytes();
        let on_disk = if self.cfg.compress {
            compress::compress(raw)
        } else {
            raw.to_vec()
        };
        std::fs::write(&path, &on_disk)?;
        self.metrics.flushes.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .spilled_raw
            .fetch_add(raw.len(), Ordering::Relaxed);
        self.metrics
            .spilled_disk
            .fetch_add(on_disk.len(), Ordering::Relaxed);
        Ok(SpillFile {
            path,
            records: run.records(),
            raw_bytes: raw.len(),
        })
    }

    fn read_spill(&self, spill: &SpillFile) -> std::io::Result<Run> {
        let on_disk = std::fs::read(&spill.path)?;
        let raw = if self.cfg.compress {
            compress::decompress(&on_disk)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        } else {
            on_disk
        };
        debug_assert_eq!(raw.len(), spill.raw_bytes);
        Ok(Run::from_sorted_bytes(raw, spill.records))
    }

    /// Flush a partition's cache to one new spill, then compact if the
    /// spill-file count exceeds the limit. Runs on merger threads.
    fn flush_and_compact(&self, p: PartitionId) {
        let idx = p as usize;
        // Take the cached runs.
        let runs: Vec<Run> = {
            let mut st = self.parts[idx].lock();
            let bytes = std::mem::take(&mut st.cache_bytes);
            self.cache_bytes.fetch_sub(bytes, Ordering::Relaxed);
            std::mem::take(&mut st.cache)
        };
        if !runs.is_empty() {
            self.metrics.merges.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .merge_fanin
                .fetch_add(runs.len(), Ordering::Relaxed);
            let merged = merge_runs(&runs);
            drop(runs);
            if !merged.is_empty() {
                let spill = self.write_spill(&merged).expect("spill write failed");
                self.parts[idx].lock().spills.push(spill);
            }
        }
        // Compact spills if over the limit.
        loop {
            let spills: Vec<SpillFile> = {
                let mut st = self.parts[idx].lock();
                if st.spills.len() <= self.cfg.max_spill_files {
                    st.busy = false;
                    return;
                }
                std::mem::take(&mut st.spills)
            };
            let runs: Vec<Run> = spills
                .iter()
                .map(|s| self.read_spill(s).expect("spill read failed"))
                .collect();
            self.metrics.merges.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .merge_fanin
                .fetch_add(runs.len(), Ordering::Relaxed);
            let merged = merge_runs(&runs);
            drop(runs);
            for s in &spills {
                let _ = std::fs::remove_file(&s.path);
            }
            self.metrics.compactions.fetch_add(1, Ordering::Relaxed);
            let spill = self.write_spill(&merged).expect("spill write failed");
            self.parts[idx].lock().spills.push(spill);
        }
    }
}

/// The per-node intermediate store.
pub struct IntermediateStore {
    inner: Arc<Inner>,
    task_tx: Option<Sender<PartitionId>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl IntermediateStore {
    /// Create a store with its background merger threads.
    pub fn new(cfg: IntermediateConfig) -> std::io::Result<Self> {
        assert!(cfg.num_partitions > 0, "at least one partition");
        let dir = TempDir::new("gw-intermediate")?;
        let parts = (0..cfg.num_partitions)
            .map(|_| Mutex::new(PartState::default()))
            .collect();
        let threads = cfg.merger_threads.max(1);
        let inner = Arc::new(Inner {
            cfg,
            dir,
            parts,
            cache_bytes: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            quiesce_lock: Mutex::new(()),
            quiesce_cv: Condvar::new(),
            spill_seq: AtomicU64::new(0),
            metrics: Metrics::default(),
        });
        let (tx, rx): (Sender<PartitionId>, Receiver<PartitionId>) = unbounded();
        let workers = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("gw-merger-{i}"))
                    .spawn(move || {
                        while let Ok(p) = rx.recv() {
                            inner.flush_and_compact(p);
                            inner.task_done();
                        }
                    })
                    .expect("spawn merger thread")
            })
            .collect();
        Ok(IntermediateStore {
            inner,
            task_tx: Some(tx),
            workers,
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &IntermediateConfig {
        &self.inner.cfg
    }

    /// Add a sorted run to partition `p`'s cache (local map output or a
    /// partition received from another node). Triggers merge-and-flush when
    /// the aggregate cache exceeds the threshold.
    pub fn add_run(&self, p: PartitionId, run: Run) {
        assert!(p < self.inner.cfg.num_partitions, "partition out of range");
        if run.is_empty() {
            return;
        }
        self.inner
            .metrics
            .runs_added
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .metrics
            .records_added
            .fetch_add(run.records(), Ordering::Relaxed);
        let bytes = run.len_bytes();
        {
            let mut st = self.inner.parts[p as usize].lock();
            st.cache_bytes += bytes;
            st.cache.push(run);
        }
        let total = self.inner.cache_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if total > self.inner.cfg.cache_threshold {
            self.flush_all();
        }
    }

    /// Schedule a flush for every partition with cached data.
    pub fn flush_all(&self) {
        for p in 0..self.inner.cfg.num_partitions {
            self.schedule(p);
        }
    }

    fn schedule(&self, p: PartitionId) {
        let inner = &self.inner;
        {
            let mut st = inner.parts[p as usize].lock();
            let needs_work = !st.cache.is_empty() || st.spills.len() > inner.cfg.max_spill_files;
            if st.busy || !needs_work {
                return;
            }
            st.busy = true;
        }
        inner.pending.fetch_add(1, Ordering::AcqRel);
        if let Some(tx) = &self.task_tx {
            if tx.send(p).is_err() {
                // Workers gone (drop in progress): run inline.
                inner.flush_and_compact(p);
                inner.task_done();
            }
        }
    }

    /// Signal that the map phase (including reception of all remote
    /// partitions) has completed. Flushes all remaining cached data, waits
    /// for the merger threads to drain, and returns the **merge delay**.
    pub fn finish_map(&self) -> Duration {
        let start = Instant::now();
        // Mergers may still be working on the backlog; add final flushes.
        self.flush_all();
        // New work may have become schedulable after the first drain (a
        // flush can push a partition over the spill-file limit), so loop.
        loop {
            self.inner.wait_quiesce();
            let mut scheduled = false;
            for p in 0..self.inner.cfg.num_partitions {
                let st = self.inner.parts[p as usize].lock();
                let needs =
                    !st.cache.is_empty() || st.spills.len() > self.inner.cfg.max_spill_files;
                drop(st);
                if needs {
                    self.schedule(p);
                    scheduled = true;
                }
            }
            if !scheduled {
                break;
            }
        }
        let delay = start.elapsed();
        self.inner
            .metrics
            .merge_delay_nanos
            .store(delay.as_nanos() as u64, Ordering::Relaxed);
        delay
    }

    /// Block until all scheduled flush/compaction tasks have drained.
    pub fn quiesce(&self) {
        self.inner.wait_quiesce();
    }

    /// Load all runs of partition `p` for reduction: every spill file plus
    /// any still-cached runs. The reduce input reader performs the final
    /// k-way merge over these.
    pub fn partition_runs(&self, p: PartitionId) -> Vec<Run> {
        let idx = p as usize;
        let st = self.inner.parts[idx].lock();
        let mut runs: Vec<Run> = st
            .spills
            .iter()
            .map(|s| self.inner.read_spill(s).expect("spill read failed"))
            .collect();
        runs.extend(st.cache.iter().cloned());
        runs
    }

    /// Number of spill files currently held by partition `p`.
    pub fn spill_count(&self, p: PartitionId) -> usize {
        self.inner.parts[p as usize].lock().spills.len()
    }

    /// Total records across a partition's cache and spills.
    pub fn partition_records(&self, p: PartitionId) -> usize {
        let st = self.inner.parts[p as usize].lock();
        st.spills.iter().map(|s| s.records).sum::<usize>()
            + st.cache.iter().map(|r| r.records()).sum::<usize>()
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> StoreMetrics {
        let m = &self.inner.metrics;
        StoreMetrics {
            flushes: m.flushes.load(Ordering::Relaxed),
            compactions: m.compactions.load(Ordering::Relaxed),
            spilled_raw: m.spilled_raw.load(Ordering::Relaxed),
            spilled_disk: m.spilled_disk.load(Ordering::Relaxed),
            runs_added: m.runs_added.load(Ordering::Relaxed),
            records_added: m.records_added.load(Ordering::Relaxed),
            merge_delay: Duration::from_nanos(m.merge_delay_nanos.load(Ordering::Relaxed)),
            merges: m.merges.load(Ordering::Relaxed),
            merge_fanin: m.merge_fanin.load(Ordering::Relaxed),
        }
    }
}

impl Drop for IntermediateStore {
    fn drop(&mut self) {
        self.task_tx = None; // close the channel
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::run_from_pairs;
    use crate::merge::GroupedMerge;

    fn cfg(parts: u32) -> IntermediateConfig {
        IntermediateConfig {
            num_partitions: parts,
            cache_threshold: 1 << 10,
            max_spill_files: 2,
            merger_threads: 2,
            compress: true,
        }
    }

    fn word_run(words: &[&str]) -> Run {
        run_from_pairs(words.iter().map(|w| (w.as_bytes(), b"1".as_slice())))
    }

    #[test]
    fn small_data_stays_in_cache() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        store.add_run(0, word_run(&["a", "b"]));
        let delay = store.finish_map();
        assert!(delay < Duration::from_secs(1));
        // One flush happens at finish_map (cache drained to disk).
        assert_eq!(store.partition_records(0), 2);
    }

    #[test]
    fn exceeding_threshold_triggers_spill() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        let big: Vec<String> = (0..200).map(|i| format!("word{i:05}")).collect();
        let refs: Vec<&str> = big.iter().map(|s| s.as_str()).collect();
        for _ in 0..4 {
            store.add_run(0, word_run(&refs));
        }
        store.finish_map();
        let m = store.metrics();
        assert!(m.flushes >= 1, "expected at least one flush, got {m:?}");
        assert!(
            m.spilled_disk < m.spilled_raw,
            "compression should shrink spills"
        );
        assert_eq!(store.partition_records(0), 800);
    }

    #[test]
    fn spill_file_count_is_bounded() {
        let mut c = cfg(1);
        c.cache_threshold = 1; // flush on every run
        c.max_spill_files = 2;
        let store = IntermediateStore::new(c).unwrap();
        for i in 0..20 {
            let w = format!("key{i:03}");
            store.add_run(0, word_run(&[w.as_str()]));
            // Drain after every run so each add produces its own spill and
            // the compaction path is exercised deterministically.
            store.quiesce();
        }
        store.finish_map();
        assert!(
            store.spill_count(0) <= 2,
            "spill files must be compacted to the limit, got {}",
            store.spill_count(0)
        );
        assert!(store.metrics().compactions >= 1);
        assert_eq!(store.partition_records(0), 20);
    }

    #[test]
    fn partition_runs_merge_to_global_order() {
        let mut c = cfg(1);
        c.cache_threshold = 64;
        let store = IntermediateStore::new(c).unwrap();
        store.add_run(0, word_run(&["m", "z", "a"]));
        store.add_run(0, word_run(&["b", "m", "q"]));
        store.add_run(0, word_run(&["a", "c"]));
        store.finish_map();
        let runs = store.partition_runs(0);
        let keys: Vec<Vec<u8>> = GroupedMerge::new(runs.iter())
            .map(|(k, _)| k.to_vec())
            .collect();
        assert_eq!(
            keys,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"m".to_vec(),
                b"q".to_vec(),
                b"z".to_vec()
            ]
        );
        // "m" and "a" got two values each.
        let groups: Vec<(Vec<u8>, usize)> = GroupedMerge::new(runs.iter())
            .map(|(k, vs)| (k.to_vec(), vs.len()))
            .collect();
        assert!(groups.contains(&(b"a".to_vec(), 2)));
        assert!(groups.contains(&(b"m".to_vec(), 2)));
    }

    #[test]
    fn multiple_partitions_are_independent() {
        let store = IntermediateStore::new(cfg(4)).unwrap();
        for p in 0..4u32 {
            let w = format!("p{p}");
            store.add_run(p, word_run(&[w.as_str()]));
        }
        store.finish_map();
        for p in 0..4u32 {
            assert_eq!(store.partition_records(p), 1);
            let runs = store.partition_runs(p);
            let (k, _) = GroupedMerge::new(runs.iter()).next().unwrap();
            assert_eq!(k, format!("p{p}").as_bytes());
        }
    }

    #[test]
    fn empty_runs_are_ignored() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        store.add_run(0, Run::default());
        store.finish_map();
        assert_eq!(store.metrics().runs_added, 0);
        assert_eq!(store.partition_records(0), 0);
    }

    #[test]
    #[should_panic(expected = "partition out of range")]
    fn out_of_range_partition_panics() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        store.add_run(5, word_run(&["x"]));
    }

    #[test]
    fn concurrent_producers_do_not_lose_records() {
        let mut c = cfg(2);
        c.cache_threshold = 256;
        let store = std::sync::Arc::new(IntermediateStore::new(c).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let w = format!("t{t}-k{i:03}");
                        store.add_run((i % 2) as u32, word_run(&[w.as_str()]));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        store.finish_map();
        let total = store.partition_records(0) + store.partition_records(1);
        assert_eq!(total, 200);
    }
}
