//! Per-node intermediate-data store: partition cache, framed spill files,
//! and the background merger threads.
//!
//! Reproduces paper §III-B:
//!
//! * "each node maintains an in-memory cache of Partitions which are merged
//!   and flushed to disk when their aggregate size exceeds a configurable
//!   threshold" — [`IntermediateStore::add_run`] + the flush tasks;
//! * "intermediate data Partitions produced by other cluster nodes are
//!   received and added to the in-memory cache" — the network receiver
//!   calls the same `add_run`;
//! * "Partitions residing on disk are continuously merged using multi-way
//!   merging so the number of intermediate data files is limited to a
//!   configurable count" — the compaction step of the merger tasks;
//! * "Glasswing can be configured to use multiple threads to speed-up both
//!   the merge and flush operations" — `merger_threads`;
//! * the **merge delay** metric — "the time dedicated to merging
//!   intermediate data after the completion of the map phase and before
//!   reduction starts" — measured by [`IntermediateStore::finish_map`].
//!
//! ## Out-of-core operation (DESIGN.md §3.10)
//!
//! Spills use the framed format of [`crate::frame`], so both the
//! continuous compaction here and the reduce-input merge downstream are
//! true **external k-way merges**: data streams cursor-to-cursor through
//! [`crate::cursor::SpillCursor`]s holding one decoded frame each, and a
//! flush streams cache runs straight into a [`frame::FrameWriter`] without
//! materializing the merged run. Every resident intermediate byte —
//! cached runs, writer staging buffers, cursor frames — is charged to one
//! [`MemGauge`], whose high-water mark is exported as
//! [`StoreMetrics::peak_resident_bytes`]; with a `memory_budget` set,
//! [`IntermediateStore::add_run`] applies backpressure so that peak stays
//! within a small constant of the budget no matter how large the
//! partition grows.
//!
//! Spill I/O failures on merger threads do not panic: the first error
//! **poisons** the store and surfaces from [`IntermediateStore::finish_map`]
//! / [`IntermediateStore::partition_cursors`] as a typed
//! [`std::io::Error`] the engine maps to `EngineError::Io`.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::cursor::{MemCursor, RunCursor, SpillCursor};
use crate::frame::{self, SpillFaultHook};
use crate::gauge::MemGauge;
use crate::kv::Run;
use crate::merge::{CursorMerge, MergeIter};
use crate::tempdir::TempDir;
use crate::PartitionId;

/// Configuration of a node's intermediate store.
#[derive(Debug, Clone)]
pub struct IntermediateConfig {
    /// Number of partitions hosted by this node (the paper's `P`).
    pub num_partitions: u32,
    /// Aggregate cached bytes that trigger a merge-and-flush.
    pub cache_threshold: usize,
    /// Maximum spill files per partition before compaction merges them.
    pub max_spill_files: usize,
    /// Background merger/flusher threads (the paper sets this equal to `P`
    /// in its Fig. 4 experiments).
    pub merger_threads: usize,
    /// Whether spills are stored compressed (the paper always compresses;
    /// disabling is useful for ablation).
    pub compress: bool,
    /// Target raw bytes per spill frame: the unit of incremental decode,
    /// and the granule the external merges hold in memory per source.
    pub frame_size: usize,
    /// Optional bound on resident intermediate bytes. When set,
    /// [`IntermediateStore::add_run`] blocks producers while the gauge is
    /// over budget and flushes are in flight (backpressure), keeping peak
    /// residency within ~1.5× the budget. `None` disables backpressure;
    /// the gauge still records the peak.
    pub memory_budget: Option<usize>,
}

impl Default for IntermediateConfig {
    fn default() -> Self {
        IntermediateConfig {
            num_partitions: 1,
            cache_threshold: 64 << 20,
            max_spill_files: 8,
            merger_threads: 1,
            compress: true,
            frame_size: 256 << 10,
            memory_budget: None,
        }
    }
}

impl IntermediateConfig {
    /// Derive the out-of-core knobs from a memory budget: the cache flushes
    /// at half the budget, and frames are sized so the handful the external
    /// merges keep resident (one per open cursor plus writer staging) stays
    /// a small fraction of it. Together these keep
    /// [`StoreMetrics::peak_resident_bytes`] ≤ ~1.5× `budget`.
    pub fn with_memory_budget(mut self, budget: usize) -> Self {
        self.memory_budget = Some(budget);
        self.cache_threshold = (budget / 2).max(4 << 10);
        self.frame_size = (budget / 64).clamp(1 << 10, 1 << 20);
        self
    }
}

/// A spilled, framed, (optionally) compressed run on disk.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
    records: usize,
    raw_bytes: usize,
    frames: usize,
}

#[derive(Debug, Default)]
struct PartState {
    cache: Vec<Run>,
    cache_bytes: usize,
    spills: Vec<SpillFile>,
    /// A flush/compact task is in flight for this partition.
    busy: bool,
}

#[derive(Debug, Default)]
struct Metrics {
    flushes: AtomicUsize,
    compactions: AtomicUsize,
    spilled_raw: AtomicUsize,
    spilled_disk: AtomicUsize,
    runs_added: AtomicUsize,
    records_added: AtomicUsize,
    merge_delay_nanos: AtomicU64,
    merges: AtomicUsize,
    merge_fanin: AtomicUsize,
    frames_written: AtomicUsize,
    frames_read: Arc<AtomicUsize>,
}

/// Snapshot of store metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Cache→disk flush operations performed.
    pub flushes: usize,
    /// Disk compaction merges performed.
    pub compactions: usize,
    /// Uncompressed bytes spilled.
    pub spilled_raw: usize,
    /// On-disk (compressed, framed) bytes spilled.
    pub spilled_disk: usize,
    /// Runs added to the cache (local + received).
    pub runs_added: usize,
    /// Records across all added runs.
    pub records_added: usize,
    /// Measured merge delay (zero until [`IntermediateStore::finish_map`]).
    pub merge_delay: Duration,
    /// Background streaming merges (cache flushes + compactions).
    ///
    /// Kept as store metrics rather than trace counters on purpose: these
    /// merges run on merger threads whose scheduling is timing-dependent,
    /// so emitting them as events would break the logical-stream
    /// determinism contract.
    pub merges: usize,
    /// Total runs consumed across those merges (fan-in pressure).
    pub merge_fanin: usize,
    /// Spill frames written (flushes + compactions).
    pub frames_written: usize,
    /// Spill frames decoded (compactions + reduce-input cursors).
    pub frames_read: usize,
    /// High-water mark of resident intermediate bytes: cached runs +
    /// writer staging + open cursor frames. The out-of-core contract is
    /// stated against this figure (≤ ~1.5× `memory_budget`).
    pub peak_resident_bytes: usize,
}

struct Inner {
    cfg: IntermediateConfig,
    dir: TempDir,
    parts: Vec<Mutex<PartState>>,
    cache_bytes: AtomicUsize,
    pending: AtomicUsize,
    quiesce_lock: Mutex<()>,
    quiesce_cv: Condvar,
    spill_seq: AtomicU64,
    metrics: Metrics,
    gauge: Arc<MemGauge>,
    /// First spill I/O error seen on a merger thread; sticky.
    poison: Mutex<Option<(io::ErrorKind, String)>>,
    /// Chaos hook probed before spill reads/writes (None when unarmed).
    hook: Mutex<Option<Arc<dyn SpillFaultHook>>>,
    /// Producers park here when over `memory_budget` (backpressure).
    bp_lock: Mutex<()>,
    bp_cv: Condvar,
}

impl Inner {
    fn task_done(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.quiesce_lock.lock();
            self.quiesce_cv.notify_all();
        }
    }

    fn wait_quiesce(&self) {
        let mut guard = self.quiesce_lock.lock();
        while self.pending.load(Ordering::Acquire) != 0 {
            self.quiesce_cv.wait(&mut guard);
        }
    }

    fn poison(&self, err: io::Error) {
        let mut p = self.poison.lock();
        if p.is_none() {
            *p = Some((err.kind(), err.to_string()));
        }
    }

    fn check_poison(&self) -> io::Result<()> {
        match &*self.poison.lock() {
            Some((kind, msg)) => Err(io::Error::new(*kind, msg.clone())),
            None => Ok(()),
        }
    }

    fn notify_backpressure(&self) {
        let _g = self.bp_lock.lock();
        self.bp_cv.notify_all();
    }

    fn spill_hook(&self) -> Option<Arc<dyn SpillFaultHook>> {
        self.hook.lock().clone()
    }

    fn new_spill_path(&self) -> PathBuf {
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        self.dir.file(&format!("spill-{seq}.gw"))
    }

    fn record_spill(&self, stats: &frame::SpillStats) {
        self.metrics.flushes.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .spilled_raw
            .fetch_add(stats.raw_bytes, Ordering::Relaxed);
        self.metrics
            .spilled_disk
            .fetch_add(stats.disk_bytes, Ordering::Relaxed);
        self.metrics
            .frames_written
            .fetch_add(stats.frames, Ordering::Relaxed);
    }

    /// Stream the merge of `runs` into a new framed spill. Peak memory is
    /// the writer's staging buffers — the merged run is never materialized.
    fn spill_cached_runs(&self, runs: &[Run]) -> io::Result<Option<SpillFile>> {
        let path = self.new_spill_path();
        let mut w = frame::FrameWriter::create(
            path.clone(),
            self.cfg.frame_size,
            self.cfg.compress,
            Some(Arc::clone(&self.gauge)),
            self.spill_hook(),
        )?;
        let mut it = MergeIter::new(runs.iter());
        while let Some(rec) = it.next_record() {
            w.push(rec)?;
        }
        let stats = w.finish()?;
        if stats.records == 0 {
            let _ = std::fs::remove_file(&path);
            return Ok(None);
        }
        self.record_spill(&stats);
        Ok(Some(SpillFile {
            path,
            records: stats.records,
            raw_bytes: stats.raw_bytes,
            frames: stats.frames,
        }))
    }

    /// External k-way merge of `spills` into one new framed spill: one
    /// decode buffer per input cursor, one staging buffer on the writer.
    fn compact_spills(&self, spills: &[SpillFile]) -> io::Result<SpillFile> {
        let hook = self.spill_hook();
        let cursors: Vec<Box<dyn RunCursor>> = spills
            .iter()
            .map(|s| {
                SpillCursor::open(
                    &s.path,
                    Some(Arc::clone(&self.gauge)),
                    hook.clone(),
                    Some(Arc::clone(&self.metrics.frames_read)),
                )
                .map(|c| Box::new(c) as Box<dyn RunCursor>)
            })
            .collect::<io::Result<_>>()?;
        let mut m = CursorMerge::new(cursors);
        let path = self.new_spill_path();
        let mut w = frame::FrameWriter::create(
            path.clone(),
            self.cfg.frame_size,
            self.cfg.compress,
            Some(Arc::clone(&self.gauge)),
            hook,
        )?;
        while let Some(rec) = m.peek_rec() {
            w.push(rec)?;
            m.advance()?;
        }
        let stats = w.finish()?;
        self.record_spill(&stats);
        Ok(SpillFile {
            path,
            records: stats.records,
            raw_bytes: stats.raw_bytes,
            frames: stats.frames,
        })
    }

    /// Flush a partition's cache to one new spill, then compact if the
    /// spill-file count exceeds the limit. Runs on merger threads; clears
    /// the partition's `busy` flag on the success path (the error path is
    /// handled by [`Inner::run_merge_task`]).
    fn flush_and_compact(&self, p: PartitionId) -> io::Result<()> {
        let idx = p as usize;
        // Take the cached runs.
        let (runs, bytes): (Vec<Run>, usize) = {
            let mut st = self.parts[idx].lock();
            let bytes = std::mem::take(&mut st.cache_bytes);
            self.cache_bytes.fetch_sub(bytes, Ordering::Relaxed);
            (std::mem::take(&mut st.cache), bytes)
        };
        if !runs.is_empty() {
            self.metrics.merges.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .merge_fanin
                .fetch_add(runs.len(), Ordering::Relaxed);
            let spilled = self.spill_cached_runs(&runs);
            // The cached bytes leave memory whether or not the spill
            // succeeded — discharge before propagating so backpressured
            // producers wake either way.
            drop(runs);
            self.gauge.discharge(bytes);
            self.notify_backpressure();
            if let Some(spill) = spilled? {
                self.parts[idx].lock().spills.push(spill);
            }
        }
        // Compact spills if over the limit.
        loop {
            let spills: Vec<SpillFile> = {
                let mut st = self.parts[idx].lock();
                if st.spills.len() <= self.cfg.max_spill_files {
                    st.busy = false;
                    return Ok(());
                }
                std::mem::take(&mut st.spills)
            };
            self.metrics.merges.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .merge_fanin
                .fetch_add(spills.len(), Ordering::Relaxed);
            let merged = self.compact_spills(&spills)?;
            for s in &spills {
                let _ = std::fs::remove_file(&s.path);
            }
            self.metrics.compactions.fetch_add(1, Ordering::Relaxed);
            self.parts[idx].lock().spills.push(merged);
        }
    }

    /// Merger-thread entry point: poison the store instead of panicking.
    fn run_merge_task(&self, p: PartitionId) {
        if let Err(e) = self.flush_and_compact(p) {
            self.poison(e);
            self.parts[p as usize].lock().busy = false;
            // Wake any producer parked on backpressure so it can observe
            // the poisoned state instead of waiting for a flush that will
            // never complete.
            self.notify_backpressure();
        }
    }
}

/// The per-node intermediate store.
pub struct IntermediateStore {
    inner: Arc<Inner>,
    task_tx: Option<Sender<PartitionId>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl IntermediateStore {
    /// Create a store with its background merger threads.
    pub fn new(cfg: IntermediateConfig) -> io::Result<Self> {
        assert!(cfg.num_partitions > 0, "at least one partition");
        let dir = TempDir::new("gw-intermediate")?;
        let parts = (0..cfg.num_partitions)
            .map(|_| Mutex::new(PartState::default()))
            .collect();
        let threads = cfg.merger_threads.max(1);
        let inner = Arc::new(Inner {
            cfg,
            dir,
            parts,
            cache_bytes: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            quiesce_lock: Mutex::new(()),
            quiesce_cv: Condvar::new(),
            spill_seq: AtomicU64::new(0),
            metrics: Metrics::default(),
            gauge: Arc::new(MemGauge::new()),
            poison: Mutex::new(None),
            hook: Mutex::new(None),
            bp_lock: Mutex::new(()),
            bp_cv: Condvar::new(),
        });
        let (tx, rx): (Sender<PartitionId>, Receiver<PartitionId>) = unbounded();
        let workers = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("gw-merger-{i}"))
                    .spawn(move || {
                        while let Ok(p) = rx.recv() {
                            inner.run_merge_task(p);
                            inner.task_done();
                        }
                    })
                    .expect("spawn merger thread")
            })
            .collect();
        Ok(IntermediateStore {
            inner,
            task_tx: Some(tx),
            workers,
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &IntermediateConfig {
        &self.inner.cfg
    }

    /// Arm (or disarm, with `None`) a fault hook probed before every spill
    /// read/write — the chaos plane's injection site for spill-file I/O
    /// errors.
    pub fn arm_spill_faults(&self, hook: Option<Arc<dyn SpillFaultHook>>) {
        *self.inner.hook.lock() = hook;
    }

    /// Add a sorted run to partition `p`'s cache (local map output or a
    /// partition received from another node). Triggers merge-and-flush when
    /// the aggregate cache exceeds the threshold; with a `memory_budget`
    /// set, blocks while resident bytes exceed the budget and flushes are
    /// still in flight.
    pub fn add_run(&self, p: PartitionId, run: Run) {
        assert!(p < self.inner.cfg.num_partitions, "partition out of range");
        if run.is_empty() {
            return;
        }
        self.inner
            .metrics
            .runs_added
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .metrics
            .records_added
            .fetch_add(run.records(), Ordering::Relaxed);
        let bytes = run.len_bytes();
        self.inner.gauge.charge(bytes);
        {
            let mut st = self.inner.parts[p as usize].lock();
            st.cache_bytes += bytes;
            st.cache.push(run);
        }
        let total = self.inner.cache_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if total > self.inner.cfg.cache_threshold {
            self.flush_all();
        }
        if let Some(budget) = self.inner.cfg.memory_budget {
            // Backpressure: park until the flushes in flight bring the
            // gauge back under budget. Bounded waits keep this live across
            // races with task completion and poisoning.
            let mut guard = self.inner.bp_lock.lock();
            while self.inner.gauge.current() > budget
                && self.inner.pending.load(Ordering::Acquire) > 0
                && self.inner.poison.lock().is_none()
            {
                self.inner
                    .bp_cv
                    .wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }

    /// Schedule a flush for every partition with cached data.
    pub fn flush_all(&self) {
        for p in 0..self.inner.cfg.num_partitions {
            self.schedule(p);
        }
    }

    fn schedule(&self, p: PartitionId) {
        let inner = &self.inner;
        {
            let mut st = inner.parts[p as usize].lock();
            let needs_work = !st.cache.is_empty() || st.spills.len() > inner.cfg.max_spill_files;
            if st.busy || !needs_work {
                return;
            }
            st.busy = true;
        }
        inner.pending.fetch_add(1, Ordering::AcqRel);
        if let Some(tx) = &self.task_tx {
            if tx.send(p).is_err() {
                // Workers gone (drop in progress): run inline.
                inner.run_merge_task(p);
                inner.task_done();
            }
        }
    }

    /// Signal that the map phase (including reception of all remote
    /// partitions) has completed. Flushes all remaining cached data, waits
    /// for the merger threads to drain, and returns the **merge delay**.
    ///
    /// Surfaces any spill I/O error recorded by the merger threads — the
    /// poisoned-store replacement for their former panics.
    pub fn finish_map(&self) -> io::Result<Duration> {
        let start = Instant::now();
        // Mergers may still be working on the backlog; add final flushes.
        self.flush_all();
        // New work may have become schedulable after the first drain (a
        // flush can push a partition over the spill-file limit), so loop.
        loop {
            self.inner.wait_quiesce();
            self.inner.check_poison()?;
            let mut scheduled = false;
            for p in 0..self.inner.cfg.num_partitions {
                let st = self.inner.parts[p as usize].lock();
                let needs =
                    !st.cache.is_empty() || st.spills.len() > self.inner.cfg.max_spill_files;
                drop(st);
                if needs {
                    self.schedule(p);
                    scheduled = true;
                }
            }
            if !scheduled {
                break;
            }
        }
        let delay = start.elapsed();
        self.inner
            .metrics
            .merge_delay_nanos
            .store(delay.as_nanos() as u64, Ordering::Relaxed);
        Ok(delay)
    }

    /// Block until all scheduled flush/compaction tasks have drained.
    pub fn quiesce(&self) {
        self.inner.wait_quiesce();
    }

    /// Open streaming cursors over partition `p` for reduction: one
    /// [`SpillCursor`] per spill file (a single decoded frame resident
    /// each) plus a [`MemCursor`] per still-cached run. The reduce input
    /// reader performs the final external k-way merge over these without
    /// ever materializing the partition.
    pub fn partition_cursors(&self, p: PartitionId) -> io::Result<Vec<Box<dyn RunCursor>>> {
        self.inner.check_poison()?;
        let hook = self.inner.spill_hook();
        let st = self.inner.parts[p as usize].lock();
        let mut cursors: Vec<Box<dyn RunCursor>> =
            Vec::with_capacity(st.spills.len() + st.cache.len());
        for s in &st.spills {
            let c = SpillCursor::open(
                &s.path,
                Some(Arc::clone(&self.inner.gauge)),
                hook.clone(),
                Some(Arc::clone(&self.inner.metrics.frames_read)),
            )?;
            cursors.push(Box::new(c));
        }
        for r in &st.cache {
            cursors.push(Box::new(MemCursor::new(r.clone())));
        }
        Ok(cursors)
    }

    /// Materialize all runs of partition `p` (every spill, fully decoded,
    /// plus cached runs). Peak memory equals the partition size — kept for
    /// tests and small-data tooling; the engine's reduce path uses
    /// [`IntermediateStore::partition_cursors`] instead.
    pub fn partition_runs(&self, p: PartitionId) -> io::Result<Vec<Run>> {
        self.inner.check_poison()?;
        let hook = self.inner.spill_hook();
        let st = self.inner.parts[p as usize].lock();
        let mut runs = Vec::with_capacity(st.spills.len() + st.cache.len());
        for s in &st.spills {
            let mut c = SpillCursor::open(
                &s.path,
                None,
                hook.clone(),
                Some(Arc::clone(&self.inner.metrics.frames_read)),
            )?;
            debug_assert_eq!(c.raw_bytes(), s.raw_bytes);
            let mut bytes = Vec::with_capacity(c.raw_bytes());
            let mut records = 0usize;
            while !c.done() {
                bytes.extend_from_slice(c.rec());
                records += 1;
                c.advance()?;
            }
            runs.push(Run::from_sorted_bytes(bytes, records));
        }
        runs.extend(st.cache.iter().cloned());
        Ok(runs)
    }

    /// Number of spill files currently held by partition `p`.
    pub fn spill_count(&self, p: PartitionId) -> usize {
        self.inner.parts[p as usize].lock().spills.len()
    }

    /// Total frames across partition `p`'s spill files.
    pub fn frame_count(&self, p: PartitionId) -> usize {
        self.inner.parts[p as usize]
            .lock()
            .spills
            .iter()
            .map(|s| s.frames)
            .sum()
    }

    /// Total records across a partition's cache and spills.
    pub fn partition_records(&self, p: PartitionId) -> usize {
        let st = self.inner.parts[p as usize].lock();
        st.spills.iter().map(|s| s.records).sum::<usize>()
            + st.cache.iter().map(|r| r.records()).sum::<usize>()
    }

    #[cfg(test)]
    fn spill_paths(&self, p: PartitionId) -> Vec<PathBuf> {
        self.inner.parts[p as usize]
            .lock()
            .spills
            .iter()
            .map(|s| s.path.clone())
            .collect()
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> StoreMetrics {
        let m = &self.inner.metrics;
        StoreMetrics {
            flushes: m.flushes.load(Ordering::Relaxed),
            compactions: m.compactions.load(Ordering::Relaxed),
            spilled_raw: m.spilled_raw.load(Ordering::Relaxed),
            spilled_disk: m.spilled_disk.load(Ordering::Relaxed),
            runs_added: m.runs_added.load(Ordering::Relaxed),
            records_added: m.records_added.load(Ordering::Relaxed),
            merge_delay: Duration::from_nanos(m.merge_delay_nanos.load(Ordering::Relaxed)),
            merges: m.merges.load(Ordering::Relaxed),
            merge_fanin: m.merge_fanin.load(Ordering::Relaxed),
            frames_written: m.frames_written.load(Ordering::Relaxed),
            frames_read: m.frames_read.load(Ordering::Relaxed),
            peak_resident_bytes: self.inner.gauge.peak(),
        }
    }
}

impl Drop for IntermediateStore {
    fn drop(&mut self) {
        self.task_tx = None; // close the channel
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SpillOp;
    use crate::kv::run_from_pairs;
    use crate::merge::{GroupedMerge, MergeIter};

    fn cfg(parts: u32) -> IntermediateConfig {
        IntermediateConfig {
            num_partitions: parts,
            cache_threshold: 1 << 10,
            max_spill_files: 2,
            merger_threads: 2,
            compress: true,
            frame_size: 1 << 10,
            memory_budget: None,
        }
    }

    fn word_run(words: &[&str]) -> Run {
        run_from_pairs(words.iter().map(|w| (w.as_bytes(), b"1".as_slice())))
    }

    #[test]
    fn small_data_stays_in_cache() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        store.add_run(0, word_run(&["a", "b"]));
        let delay = store.finish_map().unwrap();
        assert!(delay < Duration::from_secs(1));
        // One flush happens at finish_map (cache drained to disk).
        assert_eq!(store.partition_records(0), 2);
    }

    #[test]
    fn exceeding_threshold_triggers_spill() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        let big: Vec<String> = (0..200).map(|i| format!("word{i:05}")).collect();
        let refs: Vec<&str> = big.iter().map(|s| s.as_str()).collect();
        for _ in 0..4 {
            store.add_run(0, word_run(&refs));
        }
        store.finish_map().unwrap();
        let m = store.metrics();
        assert!(m.flushes >= 1, "expected at least one flush, got {m:?}");
        assert!(
            m.spilled_disk < m.spilled_raw,
            "compression should shrink spills"
        );
        assert!(m.frames_written >= 1);
        assert!(m.peak_resident_bytes > 0);
        assert_eq!(store.partition_records(0), 800);
    }

    #[test]
    fn spill_file_count_is_bounded() {
        let mut c = cfg(1);
        c.cache_threshold = 1; // flush on every run
        c.max_spill_files = 2;
        let store = IntermediateStore::new(c).unwrap();
        for i in 0..20 {
            let w = format!("key{i:03}");
            store.add_run(0, word_run(&[w.as_str()]));
            // Drain after every run so each add produces its own spill and
            // the compaction path is exercised deterministically.
            store.quiesce();
        }
        store.finish_map().unwrap();
        assert!(
            store.spill_count(0) <= 2,
            "spill files must be compacted to the limit, got {}",
            store.spill_count(0)
        );
        assert!(store.metrics().compactions >= 1);
        assert_eq!(store.partition_records(0), 20);
    }

    #[test]
    fn partition_runs_merge_to_global_order() {
        let mut c = cfg(1);
        c.cache_threshold = 64;
        let store = IntermediateStore::new(c).unwrap();
        store.add_run(0, word_run(&["m", "z", "a"]));
        store.add_run(0, word_run(&["b", "m", "q"]));
        store.add_run(0, word_run(&["a", "c"]));
        store.finish_map().unwrap();
        let runs = store.partition_runs(0).unwrap();
        let keys: Vec<Vec<u8>> = GroupedMerge::new(runs.iter())
            .map(|(k, _)| k.to_vec())
            .collect();
        assert_eq!(
            keys,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"m".to_vec(),
                b"q".to_vec(),
                b"z".to_vec()
            ]
        );
        // "m" and "a" got two values each.
        let groups: Vec<(Vec<u8>, usize)> = GroupedMerge::new(runs.iter())
            .map(|(k, vs)| (k.to_vec(), vs.len()))
            .collect();
        assert!(groups.contains(&(b"a".to_vec(), 2)));
        assert!(groups.contains(&(b"m".to_vec(), 2)));
    }

    #[test]
    fn multiple_partitions_are_independent() {
        let store = IntermediateStore::new(cfg(4)).unwrap();
        for p in 0..4u32 {
            let w = format!("p{p}");
            store.add_run(p, word_run(&[w.as_str()]));
        }
        store.finish_map().unwrap();
        for p in 0..4u32 {
            assert_eq!(store.partition_records(p), 1);
            let runs = store.partition_runs(p).unwrap();
            let (k, _) = GroupedMerge::new(runs.iter()).next().unwrap();
            assert_eq!(k, format!("p{p}").as_bytes());
        }
    }

    #[test]
    fn empty_runs_are_ignored() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        store.add_run(0, Run::default());
        store.finish_map().unwrap();
        assert_eq!(store.metrics().runs_added, 0);
        assert_eq!(store.partition_records(0), 0);
    }

    #[test]
    #[should_panic(expected = "partition out of range")]
    fn out_of_range_partition_panics() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        store.add_run(5, word_run(&["x"]));
    }

    #[test]
    fn concurrent_producers_do_not_lose_records() {
        let mut c = cfg(2);
        c.cache_threshold = 256;
        let store = std::sync::Arc::new(IntermediateStore::new(c).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let w = format!("t{t}-k{i:03}");
                        store.add_run((i % 2) as u32, word_run(&[w.as_str()]));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        store.finish_map().unwrap();
        let total = store.partition_records(0) + store.partition_records(1);
        assert_eq!(total, 200);
    }

    /// Walk a partition's streaming cursors and collect every record.
    fn stream_partition(store: &IntermediateStore, p: PartitionId) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut m = CursorMerge::new(store.partition_cursors(p).unwrap());
        let mut out = Vec::new();
        while let Some((k, v)) = m.peek() {
            out.push((k.to_vec(), v.to_vec()));
            m.advance().unwrap();
        }
        out
    }

    #[test]
    fn streaming_cursors_equal_materialized_runs() {
        let mut c = cfg(1);
        c.cache_threshold = 1; // spill every run
        c.max_spill_files = 2;
        let store = IntermediateStore::new(c).unwrap();
        for i in 0..40 {
            let words: Vec<String> = (0..20)
                .map(|j| format!("k{:03}-{i:02}", (i * 7 + j) % 50))
                .collect();
            let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
            store.add_run(0, word_run(&refs));
            // Drain so every add becomes its own spill, forcing compaction.
            store.quiesce();
        }
        store.finish_map().unwrap();
        assert!(store.metrics().compactions >= 1, "{:?}", store.metrics());
        let runs = store.partition_runs(0).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = MergeIter::new(runs.iter())
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        assert_eq!(stream_partition(&store, 0), expect);
        assert_eq!(expect.len(), 800);
        let m = store.metrics();
        assert!(m.frames_read > 0, "{m:?}");
    }

    #[test]
    fn memory_budget_bounds_peak_residency() {
        let budget = 64 << 10;
        let mut c = cfg(1).with_memory_budget(budget);
        c.merger_threads = 1;
        let store = IntermediateStore::new(c).unwrap();
        // ≥4× the budget of intermediate data, in ~2 KiB runs.
        let mut total = 0usize;
        let mut i = 0usize;
        while total < 4 * budget {
            let words: Vec<String> = (0..64).map(|j| format!("key{:06}", i * 64 + j)).collect();
            let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
            let run = word_run(&refs);
            total += run.len_bytes();
            store.add_run(0, run);
            i += 1;
        }
        store.finish_map().unwrap();
        let m = store.metrics();
        assert!(m.spilled_disk > 0, "{m:?}");
        assert!(
            m.peak_resident_bytes <= budget + budget / 2,
            "peak {} exceeds 1.5× budget {budget} ({m:?})",
            m.peak_resident_bytes
        );
        // The data all made it, and streams back in bounded memory.
        assert_eq!(store.partition_records(0), i * 64);
        let streamed = stream_partition(&store, 0);
        assert_eq!(streamed.len(), i * 64);
        assert!(
            store.metrics().peak_resident_bytes <= budget + budget / 2,
            "streaming reduce input must stay within the budget too"
        );
    }

    /// Fails every spill write from the `nth` probe on.
    struct FailWrites {
        after: u32,
        seen: AtomicUsize,
    }
    impl SpillFaultHook for FailWrites {
        fn spill_fault(&self, op: SpillOp) -> bool {
            op == SpillOp::Write && self.seen.fetch_add(1, Ordering::Relaxed) as u32 >= self.after
        }
    }

    #[test]
    fn spill_write_failure_poisons_instead_of_panicking() {
        let store = IntermediateStore::new(cfg(1)).unwrap();
        store.arm_spill_faults(Some(Arc::new(FailWrites {
            after: 0,
            seen: AtomicUsize::new(0),
        })));
        let words: Vec<String> = (0..400).map(|i| format!("w{i:05}")).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        for _ in 0..4 {
            store.add_run(0, word_run(&refs));
        }
        let err = store.finish_map().unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The poison is sticky: later consumers see it too.
        assert!(store.partition_cursors(0).is_err());
        assert!(store.partition_runs(0).is_err());
    }

    #[test]
    fn truncated_spill_surfaces_invalid_data() {
        let mut c = cfg(1);
        c.cache_threshold = 1;
        let store = IntermediateStore::new(c).unwrap();
        let words: Vec<String> = (0..300).map(|i| format!("t{i:05}")).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        store.add_run(0, word_run(&refs));
        store.finish_map().unwrap();
        let paths = store.spill_paths(0);
        assert!(!paths.is_empty());
        let bytes = std::fs::read(&paths[0]).unwrap();
        std::fs::write(&paths[0], &bytes[..bytes.len() / 2]).unwrap();
        let err = match store.partition_cursors(0) {
            Err(e) => e,
            Ok(_) => panic!("truncated spill must not open"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }
}
