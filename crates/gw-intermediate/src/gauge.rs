//! Resident-memory accounting for the intermediate-data path.
//!
//! Every byte of intermediate data held in memory by a store — cached
//! runs, spill-cursor decode buffers, frame-writer staging buffers — is
//! charged against one shared [`MemGauge`], giving the engine the
//! *peak resident intermediate bytes* figure that the out-of-core
//! contract is stated in: a job whose intermediate data is many times
//! `memory_budget` must keep this peak within a small constant of the
//! budget (see DESIGN.md §3.10).

use std::sync::atomic::{AtomicUsize, Ordering};

/// A charge/discharge byte counter with a high-water mark.
///
/// Shared (via `Arc`) between the store, its spill writers and every
/// open spill cursor. Charges are approximate where exactness would
/// cost (buffer capacity vs. length), but always conservative enough
/// that the budget assertion is meaningful.
#[derive(Debug, Default)]
pub struct MemGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemGauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` resident bytes, updating the high-water mark.
    pub fn charge(&self, n: usize) {
        if n == 0 {
            return;
        }
        let now = self.current.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `n` previously charged bytes.
    pub fn discharge(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.current.fetch_sub(n, Ordering::Relaxed);
    }

    /// Bytes currently charged.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of [`MemGauge::current`] over the gauge's lifetime.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let g = MemGauge::new();
        g.charge(100);
        g.charge(50);
        g.discharge(120);
        g.charge(10);
        assert_eq!(g.current(), 40);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn zero_charges_are_free() {
        let g = MemGauge::new();
        g.charge(0);
        g.discharge(0);
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 0);
    }
}
