//! Arena/run recycling pool.
//!
//! The partitioning stage acquires one [`RunBuilder`] per (chunk, lane,
//! partition). Without recycling, every chunk re-grows each builder's
//! arena and index from empty; with the pool, steady-state map execution
//! performs **no per-record allocation**: pushed records append into an
//! arena that already has capacity from previous chunks, and the offset
//! index plus radix scratch are reused the same way. Only the final
//! gathered run buffer is allocated per run (it is frozen into a shared
//! [`bytes::Bytes`] and shipped/cached, so it cannot be recycled).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kv::{BuilderParts, RunBuilder};

/// Upper bound on pooled builder part sets; beyond this, released parts
/// are dropped so an unusually wide chunk cannot pin memory forever.
const MAX_POOLED: usize = 128;

/// A shared pool of recyclable [`RunBuilder`] buffers.
#[derive(Debug, Default)]
pub struct RunPool {
    parts: Mutex<Vec<BuilderParts>>,
    acquired: AtomicUsize,
    reused: AtomicUsize,
}

impl RunPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire a builder, reusing pooled arena/index/scratch buffers when
    /// available. The builder returns its buffers on `build` or drop.
    pub fn builder(self: &Arc<Self>) -> RunBuilder {
        self.acquired.fetch_add(1, Ordering::Relaxed);
        let recycled = self.parts.lock().pop();
        match recycled {
            Some(parts) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                RunBuilder::recycled(parts, Arc::clone(self))
            }
            None => RunBuilder::recycled(BuilderParts::default(), Arc::clone(self)),
        }
    }

    pub(crate) fn release(&self, mut parts: BuilderParts) {
        parts.clear();
        let mut pool = self.parts.lock();
        if pool.len() < MAX_POOLED {
            pool.push(parts);
        }
    }

    /// Builders handed out so far.
    pub fn acquired(&self) -> usize {
        self.acquired.load(Ordering::Relaxed)
    }

    /// Of those, how many reused recycled buffers (steady state: all but
    /// the first wave).
    pub fn reused(&self) -> usize {
        self.reused.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::run_from_pairs;

    #[test]
    fn pooled_builder_output_matches_unpooled() {
        let pool = Arc::new(RunPool::new());
        let pairs = [
            (b"zebra".as_slice(), b"1".as_slice()),
            (b"apple".as_slice(), b"2".as_slice()),
            (b"apple".as_slice(), b"1".as_slice()),
        ];
        let mut b = pool.builder();
        for (k, v) in pairs {
            b.push(k, v);
        }
        let pooled = b.build();
        let plain = run_from_pairs(pairs);
        assert_eq!(pooled, plain);
    }

    #[test]
    fn buffers_recycle_in_steady_state() {
        let pool = Arc::new(RunPool::new());
        for round in 0..10 {
            let mut b = pool.builder();
            for i in 0..100 {
                b.push(format!("key{i:03}").as_bytes(), b"v");
            }
            let run = b.build();
            assert_eq!(run.records(), 100);
            let _ = round;
        }
        assert_eq!(pool.acquired(), 10);
        // Every acquisition after the first reuses the recycled buffers.
        assert_eq!(pool.reused(), 9);
    }

    #[test]
    fn dropped_builder_returns_buffers() {
        let pool = Arc::new(RunPool::new());
        {
            let mut b = pool.builder();
            b.push(b"k", b"v");
            // Dropped without build: buffers must still recycle.
        }
        let _ = pool.builder();
        assert_eq!(pool.reused(), 1);
    }
}
