//! LZ77-style compression codec for intermediate data.
//!
//! The paper stores all cached and spilled partitions "in a serialized and
//! compressed form". This codec is implemented in-repo (no external
//! compression crates) with the classic fast-LZ recipe: greedy parsing with
//! a 4-byte-prefix hash table, emitting alternating literal-run / match
//! tokens. MapReduce intermediate data — sorted runs of repetitive keys —
//! compresses very well under this scheme because adjacent records share
//! long key prefixes.
//!
//! ## Format
//!
//! `varint(uncompressed_len)` followed by a token stream. Each token is
//! `varint(lit_len)` + `lit_len` literal bytes + `varint(match_len_code)` +
//! (`varint(offset)` when `match_len_code > 0`). `match_len_code` is
//! `match_len - MIN_MATCH + 1`; `0` means "no match" (only valid for the
//! final token). Offsets are distances back from the current position and
//! may be smaller than the match length (overlapping copy, RLE-style).

use gw_storage::varint;

/// Minimum useful match length.
const MIN_MATCH: usize = 4;
/// Hash-table size (power of two).
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Maximum back-reference distance.
const WINDOW: usize = 64 * 1024;

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Input ended unexpectedly or contained invalid tokens.
    Corrupt(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Corrupt(msg) => write!(f, "corrupt compressed data: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`; the result always round-trips through [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    varint::write_len(&mut out, input.len());
    if input.is_empty() {
        return out;
    }
    // table[h] = last position whose 4-byte prefix hashed to h.
    let mut table = vec![usize::MAX; HASH_SIZE];
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    let n = input.len();
    while pos + MIN_MATCH <= n {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        let is_match = candidate != usize::MAX
            && pos - candidate <= WINDOW
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if is_match {
            // Extend the match as far as possible.
            let mut len = MIN_MATCH;
            while pos + len < n && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            // Emit pending literals + this match.
            varint::write_len(&mut out, pos - lit_start);
            out.extend_from_slice(&input[lit_start..pos]);
            varint::write_len(&mut out, len - MIN_MATCH + 1);
            varint::write_len(&mut out, pos - candidate);
            // Index a few positions inside the match to help later matches.
            let step = (len / 8).max(1);
            let mut p = pos + 1;
            while p + MIN_MATCH <= n && p < pos + len {
                table[hash4(&input[p..])] = p;
                p += step;
            }
            pos += len;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    // Trailing literals with the no-match terminator.
    varint::write_len(&mut out, n - lit_start);
    out.extend_from_slice(&input[lit_start..]);
    varint::write_len(&mut out, 0);
    out
}

/// Decompress data produced by [`compress`].
///
/// Robust against arbitrary (adversarial) input: every length read from
/// the stream is validated against the declared output size and the
/// remaining input before any allocation or copy, so corrupt data yields
/// `Err`, never a panic or an attacker-chosen allocation.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (total, mut at) = varint::read_len(data).ok_or(CompressError::Corrupt("missing length"))?;
    // Cap the up-front reservation (corrupt headers cannot force a huge
    // allocation); growth beyond this is incremental. Work and memory are
    // bounded by the declared `total` — callers decoding *untrusted* data
    // should validate the declared length against their own limits first
    // (spill files are framework-internal, so none is imposed here).
    let mut out = Vec::with_capacity(total.min(1 << 20));
    while out.len() < total {
        let (lit_len, n) = varint::read_len(&data[at..])
            .ok_or(CompressError::Corrupt("missing literal length"))?;
        at += n;
        if lit_len > data.len() - at {
            return Err(CompressError::Corrupt("truncated literals"));
        }
        if lit_len > total - out.len() {
            return Err(CompressError::Corrupt("literals overflow declared length"));
        }
        out.extend_from_slice(&data[at..at + lit_len]);
        at += lit_len;
        let (mcode, n) =
            varint::read_len(&data[at..]).ok_or(CompressError::Corrupt("missing match code"))?;
        at += n;
        if mcode == 0 {
            break;
        }
        let match_len = (mcode - 1)
            .checked_add(MIN_MATCH)
            .ok_or(CompressError::Corrupt("match length overflow"))?;
        if match_len > total - out.len() {
            return Err(CompressError::Corrupt("match overflows declared length"));
        }
        let (offset, n) =
            varint::read_len(&data[at..]).ok_or(CompressError::Corrupt("missing offset"))?;
        at += n;
        if offset == 0 || offset > out.len() {
            return Err(CompressError::Corrupt("offset out of range"));
        }
        let start = out.len() - offset;
        if offset >= match_len {
            out.extend_from_within(start..start + match_len);
        } else {
            // Overlapping copy: replicate byte by byte.
            for i in 0..match_len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    if out.len() != total {
        return Err(CompressError::Corrupt("length mismatch"));
    }
    Ok(out)
}

/// Compression ratio achieved on `input` (compressed/original; lower is
/// better). Returns 1.0 for empty input.
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_roundtrip() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_incompressible_roundtrip() {
        let data = [1u8, 2, 3];
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"the quick brown fox ".repeat(200).to_vec();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "expected >4x on repetitive text, got {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn rle_overlapping_copy_roundtrip() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn sorted_kv_run_compresses() {
        // Simulate a sorted intermediate run: repeated word keys.
        let mut data = Vec::new();
        for word in ["alpha", "beta", "gamma"] {
            for i in 0..200 {
                data.extend_from_slice(word.as_bytes());
                data.extend_from_slice(&(i as u32).to_le_bytes());
            }
        }
        let c = compress(&data);
        // Greedy single-probe matching: expect a solid but not extreme
        // ratio on key-repetitive runs.
        assert!(
            c.len() < data.len() * 7 / 10,
            "expected <0.7 ratio, got {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_stream_is_rejected_not_panicking() {
        let data: Vec<u8> = b"hello hello hello hello hello".to_vec();
        let mut c = compress(&data);
        // Flip bytes throughout and require Err or correct output, no panic.
        for i in 0..c.len() {
            c[i] ^= 0xA5;
            let _ = decompress(&c);
            c[i] ^= 0xA5;
        }
        // Truncations must be rejected.
        for cut in 1..c.len() {
            let _ = decompress(&c[..cut]);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..8192)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        /// Decompressing arbitrary garbage must never panic — it returns
        /// Err or (coincidentally) a valid buffer, bounded by the declared
        /// length.
        #[test]
        fn decompress_arbitrary_input_never_panics(
            data in proptest::collection::vec(any::<u8>(), 0..2048))
        {
            // Bound the declared output length (decompression work is
            // proportional to it by design); arbitrary *content* follows.
            if let Some((total, _)) = gw_storage::varint::read_len(&data) {
                prop_assume!(total <= 1 << 16);
            }
            if let Ok(out) = decompress(&data) {
                // If it parsed, the length header was honoured.
                let (total, _) = gw_storage::varint::read_len(&data).unwrap();
                prop_assert_eq!(out.len(), total);
            }
        }
    }
}
