//! gw-service — the resident multi-tenant Glasswing job service.
//!
//! Everything below PR 8 runs *one job per cluster*: construct, run,
//! tear down. This crate turns the engine into a long-lived service the
//! way the paper's clusters were actually operated — many tenants, a
//! stream of submissions, shared nodes:
//!
//! - **Admission control** ([`Service::submit`]): bounded queues and
//!   per-tenant quotas; overload sheds with typed
//!   [`ServiceError::AdmissionRejected`] instead of blocking submitters.
//! - **Weighted-fair scheduling** ([`FairScheduler`]): tenants share the
//!   cluster's nodes under a slot model — virtual-time WFQ over
//!   slot-seconds with a starvation override, dispatching each job onto
//!   a node *subset* via [`gw_core::RunScope`]. A slot-owner ledger
//!   guarantees two concurrent jobs never double-book a node's lanes.
//! - **Result caching** ([`ResultCache`]): Glasswing's determinism
//!   contract (output bytes are a function of workload, config and node
//!   count) makes repeat submissions cacheable; hits are byte-identical
//!   and flagged with `JobReport::served_from_cache`.
//! - **Interference attribution**: all resident jobs trace into one
//!   service-lifetime [`gw_trace::Tracer`] on per-job lane realms;
//!   [`Service::interference`] reports pairwise wall-clock overlap and
//!   shared-node sets.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use gw_service::{Service, ServiceConfig, TenantSpec, JobSpec};
//! # fn demo(cluster: Arc<gw_core::Cluster>, app: Arc<dyn gw_core::GwApp>) {
//! let mut cfg = ServiceConfig::default();
//! cfg.tenants.push(TenantSpec::new("analytics", 2));
//! let service = Service::start(cluster, cfg);
//! let ticket = service
//!     .submit(JobSpec {
//!         tenant: "analytics".into(),
//!         app,
//!         cfg: gw_core::JobConfig::new("/logs/in", "/ignored"),
//!         workload_seed: 42,
//!         slots: 2,
//!         fault_plan: None,
//!     })
//!     .expect("admitted");
//! let report = ticket.wait().expect("job ran");
//! assert!(!report.report.served_from_cache);
//! # }
//! ```

pub mod cache;
pub mod error;
pub mod sched;
pub mod service;
pub mod telemetry;

pub use cache::{CacheKey, CachedResult, ResultCache};
pub use error::{RejectReason, ServiceError};
pub use sched::{Dispatch, FairScheduler, SchedConfig};
pub use service::{
    CounterSnapshot, JobSpec, JobTicket, Service, ServiceConfig, ServiceCounters, ServiceReport,
    TenantSpec,
};
pub use telemetry::{GaugeValues, ServiceTelemetry, TelemetryConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use gw_core::{Cluster, Emit, GwApp, JobConfig};
    use gw_net::NetProfile;
    use gw_storage::split::FileStoreExt;
    use gw_storage::{Dfs, DfsConfig, NodeId};

    /// Word count without a combiner — small and shuffle-heavy.
    struct WordCount;
    impl GwApp for WordCount {
        fn name(&self) -> &'static str {
            "svc-wordcount"
        }
        fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
            for word in value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                emit.emit(word, &1u64.to_le_bytes());
            }
        }
        fn reduce(
            &self,
            key: &[u8],
            values: &[&[u8]],
            state: &mut Vec<u8>,
            last: bool,
            emit: &Emit<'_>,
        ) {
            if state.is_empty() {
                state.extend_from_slice(&0u64.to_le_bytes());
            }
            let mut acc = u64::from_le_bytes(state.as_slice().try_into().unwrap());
            for v in values {
                acc += u64::from_le_bytes((*v).try_into().unwrap());
            }
            state.copy_from_slice(&acc.to_le_bytes());
            if last {
                emit.emit(key, &acc.to_le_bytes());
            }
        }
    }

    /// Word count with a per-record delay — pins a node long enough for
    /// queue-state tests to observe jobs still waiting.
    struct SlowWordCount;
    impl GwApp for SlowWordCount {
        fn name(&self) -> &'static str {
            "svc-slow-wordcount"
        }
        fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
            std::thread::sleep(Duration::from_millis(5));
            WordCount.map(key, value, emit);
        }
        fn reduce(
            &self,
            key: &[u8],
            values: &[&[u8]],
            state: &mut Vec<u8>,
            last: bool,
            emit: &Emit<'_>,
        ) {
            WordCount.reduce(key, values, state, last, emit);
        }
    }

    fn make_cluster(nodes: u32) -> Arc<Cluster> {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
        let lines: Vec<(Vec<u8>, Vec<u8>)> = (0..24)
            .map(|i| {
                (
                    format!("line{i}").into_bytes(),
                    b"to be or not to be that is the question".to_vec(),
                )
            })
            .collect();
        dfs.write_records(
            "/svc/in",
            NodeId(0),
            400,
            2,
            lines.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        Arc::new(Cluster::new(dfs, NetProfile::unlimited()))
    }

    fn job_cfg() -> JobConfig {
        let mut cfg = JobConfig::new("/svc/in", "/ignored");
        // Byte-identity comparisons require device_threads = 1 (§3.10).
        cfg.device_threads = 1;
        cfg.collector_capacity = 1 << 20;
        cfg.cache_threshold = 1 << 16;
        cfg
    }

    fn svc_cfg() -> ServiceConfig {
        ServiceConfig {
            max_queued: 8,
            starvation_deadline: Duration::from_secs(30),
            cache_capacity: 8,
            tenants: vec![TenantSpec::new("a", 2), TenantSpec::new("b", 1)],
            telemetry: TelemetryConfig::default(),
        }
    }

    fn spec(tenant: &str, seed: u64, slots: u32) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            app: Arc::new(WordCount),
            cfg: job_cfg(),
            workload_seed: seed,
            slots,
            fault_plan: None,
        }
    }

    #[test]
    fn admission_rejects_are_typed_and_immediate() {
        let service = Service::start(make_cluster(2), svc_cfg());
        let err = service.submit(spec("nobody", 1, 1)).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::AdmissionRejected(RejectReason::UnknownTenant(_))
        ));
        let err = service.submit(spec("a", 1, 9)).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::AdmissionRejected(RejectReason::SlotsUnsatisfiable {
                requested: 9,
                total: 2
            })
        ));
        assert_eq!(service.counters().rejected, 2);
        assert_eq!(service.counters().submitted, 0);
    }

    #[test]
    fn quotas_shed_load_without_blocking() {
        let mut cfg = svc_cfg();
        cfg.max_queued = 3;
        for t in &mut cfg.tenants {
            t.max_queued = 2;
        }
        // One-node cluster: the first job occupies it while the rest queue.
        let service = Service::start(make_cluster(1), cfg);
        let mut tickets = Vec::new();
        let mut rejected_tenant = 0;
        let mut rejected_global = 0;
        for (i, tenant) in ["a", "a", "a", "b", "b", "b"].iter().enumerate() {
            let mut s = spec(tenant, 100 + i as u64, 1);
            s.app = Arc::new(SlowWordCount);
            match service.submit(s) {
                Ok(t) => tickets.push(t),
                Err(ServiceError::AdmissionRejected(RejectReason::TenantQueueFull { .. })) => {
                    rejected_tenant += 1
                }
                Err(ServiceError::AdmissionRejected(RejectReason::QueueFull { .. })) => {
                    rejected_global += 1
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            rejected_tenant + rejected_global > 0,
            "six submissions into bounds of 3 global / 2 per tenant must shed"
        );
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn concurrent_jobs_share_the_cluster_and_cache_serves_repeats() {
        let service = Service::start(make_cluster(4), svc_cfg());
        // Two 2-slot jobs with different seeds run concurrently.
        let t1 = service.submit(spec("a", 7, 2)).unwrap();
        let t2 = service.submit(spec("b", 8, 2)).unwrap();
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        assert!(!r1.report.served_from_cache);
        assert!(!r2.report.served_from_cache);
        // Same input: identical bytes, from distinct engine runs.
        assert_eq!(r1.output, r2.output);
        assert_eq!(service.counters().engine_runs, 2);

        // Repeat of seed 7 (any tenant): served from cache, byte-identical,
        // zero new engine runs.
        let r3 = service.submit(spec("b", 7, 2)).unwrap().wait().unwrap();
        assert!(r3.report.served_from_cache);
        assert_eq!(r3.output, r1.output);
        assert_eq!(service.counters().engine_runs, 2);
        assert_eq!(service.counters().cache_hits, 1);

        // Same seed on a different slot count is different work.
        let r4 = service.submit(spec("b", 7, 1)).unwrap().wait().unwrap();
        assert!(!r4.report.served_from_cache);
        assert_eq!(service.counters().engine_runs, 3);

        // The service trace carries both resident jobs for attribution.
        let jobs = service.trace().jobs();
        assert!(jobs.len() >= 2, "expected ≥2 job realms, got {jobs:?}");
        let interference = service.interference();
        assert_eq!(interference.jobs.len(), jobs.len());
    }

    /// Satellite: the counter snapshot is one consistent cut, so the
    /// conservation invariants hold *exactly* at every observation point
    /// — mid-flight with jobs queued and running, and after drain.
    fn assert_conserved(c: &CounterSnapshot) {
        assert_eq!(
            c.submitted,
            c.completed + c.failed + c.in_flight + c.queued,
            "admitted jobs must be in exactly one state: {c:?}"
        );
        assert_eq!(
            c.rejected,
            c.rejected_queue_full
                + c.rejected_tenant_queue_full
                + c.rejected_unknown_tenant
                + c.rejected_slots_unsatisfiable,
            "by-reason rejections must sum to the total: {c:?}"
        );
    }

    #[test]
    fn counter_conservation_invariants_hold() {
        let mut cfg = svc_cfg();
        cfg.cache_capacity = 1; // force evictions across distinct seeds
        for t in &mut cfg.tenants {
            t.max_queued = 2;
        }
        let service = Service::start(make_cluster(1), cfg);
        assert_conserved(&service.counters());

        // Mix of outcomes: rejections of three kinds...
        let _ = service.submit(spec("nobody", 1, 1));
        let _ = service.submit(spec("a", 1, 9));
        let mut tickets = Vec::new();
        for i in 0..6u64 {
            let mut s = spec("a", 300 + i, 1);
            s.app = Arc::new(SlowWordCount);
            if let Ok(t) = service.submit(s) {
                tickets.push(t);
            }
        }
        // ...observed while jobs are queued and in flight.
        let mid = service.counters();
        assert_conserved(&mid);
        assert!(mid.rejected >= 3, "two typed + quota overflow: {mid:?}");
        assert_eq!(mid.rejected_unknown_tenant, 1);
        assert_eq!(mid.rejected_slots_unsatisfiable, 1);

        for t in tickets {
            t.wait().unwrap();
        }
        // A fresh seed then its immediate repeat: the second submission
        // is a guaranteed hit (capacity 1, nothing inserted between).
        service.submit(spec("b", 999, 1)).unwrap().wait().unwrap();
        let r = service.submit(spec("b", 999, 1)).unwrap().wait().unwrap();
        assert!(r.report.served_from_cache);
        service.submit(spec("b", 400, 1)).unwrap().wait().unwrap();
        let done = service.counters();
        assert_conserved(&done);
        assert_eq!(done.queued + done.in_flight, 0, "drained: {done:?}");
        assert!(done.cache_hits >= 1, "{done:?}");
        assert!(done.cache_misses > 0, "fresh seeds must miss: {done:?}");
        assert!(
            done.cache_evictions > 0,
            "capacity-1 cache under distinct seeds must evict: {done:?}"
        );
    }

    #[test]
    fn shutdown_fails_queued_jobs_and_joins_cleanly() {
        // One-node cluster and several queued jobs; drop the service
        // while they wait.
        let mut service = Service::start(make_cluster(1), svc_cfg());
        let tickets: Vec<_> = (0..4)
            .filter_map(|i| {
                let mut s = spec("a", 200 + i, 1);
                s.app = Arc::new(SlowWordCount);
                service.submit(s).ok()
            })
            .collect();
        service.shutdown();
        let mut shut = 0;
        for t in tickets {
            match t.wait() {
                Err(ServiceError::ShuttingDown) => shut += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shut > 0, "at least one queued job must observe shutdown");
        assert!(matches!(
            service.submit(spec("a", 1, 1)),
            Err(ServiceError::ShuttingDown)
        ));
    }
}
