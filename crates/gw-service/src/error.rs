//! Typed service errors. Admission failures are *decisions*, not faults:
//! they carry the reason the controller shed the submission so callers
//! can distinguish backpressure from tenant misconfiguration.

use gw_core::EngineError;

/// Why the admission controller rejected a submission.
#[derive(Debug)]
pub enum RejectReason {
    /// The service-wide queue bound was reached.
    QueueFull {
        /// The configured global bound.
        limit: usize,
    },
    /// The submitting tenant's own queue quota was reached.
    TenantQueueFull {
        /// The tenant.
        tenant: String,
        /// Its configured quota.
        limit: usize,
    },
    /// The submission named a tenant the service was not configured with.
    UnknownTenant(String),
    /// The job asked for more slots than the cluster has nodes — it
    /// could never be scheduled, so it is rejected up front.
    SlotsUnsatisfiable {
        /// Slots the job requested.
        requested: u32,
        /// Nodes the cluster has.
        total: u32,
    },
}

impl RejectReason {
    /// Stable kebab-case name — the `reason` label of
    /// `gw_service_rejected_total` and the by-reason counter key.
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::TenantQueueFull { .. } => "tenant-queue-full",
            RejectReason::UnknownTenant(_) => "unknown-tenant",
            RejectReason::SlotsUnsatisfiable { .. } => "slots-unsatisfiable",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { limit } => {
                write!(f, "service queue full (limit {limit})")
            }
            RejectReason::TenantQueueFull { tenant, limit } => {
                write!(f, "tenant {tenant} queue full (quota {limit})")
            }
            RejectReason::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            RejectReason::SlotsUnsatisfiable { requested, total } => {
                write!(f, "requested {requested} slots on a {total}-node cluster")
            }
        }
    }
}

/// Errors surfaced by the job service.
#[derive(Debug)]
pub enum ServiceError {
    /// The admission controller shed the submission instead of queueing
    /// it; the service never blocks a submitter.
    AdmissionRejected(RejectReason),
    /// The job was admitted and executed, but the engine failed it.
    Engine(EngineError),
    /// The service was shut down before the job could run.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::AdmissionRejected(r) => write!(f, "admission rejected: {r}"),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_decision_details() {
        let e = ServiceError::AdmissionRejected(RejectReason::TenantQueueFull {
            tenant: "batch".into(),
            limit: 4,
        });
        assert_eq!(
            e.to_string(),
            "admission rejected: tenant batch queue full (quota 4)"
        );
        let e = ServiceError::AdmissionRejected(RejectReason::SlotsUnsatisfiable {
            requested: 9,
            total: 4,
        });
        assert!(e.to_string().contains("9 slots on a 4-node cluster"));
    }
}
