//! Service-side wiring of the `gw-telemetry` plane.
//!
//! One [`ServiceTelemetry`] per [`crate::Service`] owns the registry,
//! the tracer bridge (so engine events flow in with zero engine
//! changes), the snapshot ring and the health detector. The service
//! calls the `on_*` hooks from its admission/dispatch/completion paths
//! — all of which already run under the state lock, so the logical
//! counters here inherit the service's exact accounting — and the
//! scheduler thread pumps snapshots on a fixed cadence.
//!
//! Metric families registered here:
//!
//! | metric | kind | class |
//! |---|---|---|
//! | `gw_service_submitted_total{tenant}` | counter | logical |
//! | `gw_service_rejected_total{reason}` | counter | logical |
//! | `gw_service_engine_runs_total`, `_completed_total`, `_failed_total` | counter | logical |
//! | `gw_service_cache_{hits,misses,evictions}_total` | counter | timing¹ |
//! | `gw_service_turnaround_ns{tenant}`, `gw_service_queue_age_ns` | histogram | timing |
//! | `gw_service_queue_depth`, `_tenant_queue_depth{tenant}`, `_slots_busy`, `_slots_total`, `_in_flight`, `_tenant_vtime_lag{tenant}`, `_cache_hit_rate`, `_cache_entries` | gauge | timing |
//! | `gw_health_findings_total{kind}` | counter | timing |
//! | `gw_engine_chunks_total` | counter | logical (via bridge) |
//! | `gw_node_chunks_total{node}`, `gw_engine_*_total{node}` | counter | timing² (via bridge) |
//! | `gw_node_chunk_wall_ns{node}` | histogram | timing (via bridge) |
//!
//! ¹ cache hit/miss counts depend on wall-clock races between identical
//! submissions (whether the second arrives before the first finishes),
//! so they are timing-class: exported, never digested.
//!
//! ² per-node attribution is placement, and placement is a runtime race
//! (split claiming, shuffle batching, run-pool recycling) — see the
//! `gw-telemetry` bridge docs. Only the fleet-wide chunk total is
//! logical.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gw_storage::NodeId;
use gw_telemetry::{
    Class, Counter, Gauge, HealthConfig, HealthDetector, HealthFinding, Histogram, Registry,
    Snapshot, SnapshotRing, TelemetryBridge,
};

/// Telemetry plane tuning (field of [`crate::ServiceConfig`]).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Whether the plane is wired at all. Disabled, the service runs
    /// with a plain tracer and zero telemetry overhead.
    pub enabled: bool,
    /// Snapshot cadence for the scheduler-thread pump.
    pub snapshot_every: Duration,
    /// Snapshot ring capacity (bounded time-series length).
    pub ring_capacity: usize,
    /// Health detector tuning.
    pub health: HealthConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            snapshot_every: Duration::from_millis(50),
            ring_capacity: 256,
            health: HealthConfig::default(),
        }
    }
}

/// Point-in-time gauge inputs, gathered under the service state lock.
#[derive(Debug, Clone, Default)]
pub struct GaugeValues {
    /// Jobs queued across all tenants.
    pub queued: usize,
    /// Per-tenant `(name, queued, vtime lag)`.
    pub tenants: Vec<(String, usize, f64)>,
    /// Cluster nodes currently owned by a job.
    pub slots_busy: usize,
    /// Cluster nodes total.
    pub slots_total: usize,
    /// Jobs dispatched and not yet completed.
    pub in_flight: usize,
    /// Result-cache lifetime hits.
    pub cache_hits: u64,
    /// Result-cache lifetime misses.
    pub cache_misses: u64,
    /// Result-cache lifetime evictions.
    pub cache_evictions: u64,
    /// Result-cache resident entries.
    pub cache_entries: usize,
}

/// The per-service telemetry plane; see the module docs.
#[derive(Debug)]
pub struct ServiceTelemetry {
    cfg: TelemetryConfig,
    registry: Arc<Registry>,
    bridge: Arc<TelemetryBridge>,
    ring: SnapshotRing,
    health: Mutex<HealthDetector>,
    findings: Mutex<Vec<HealthFinding>>,
    epoch: Instant,
    last_pump: Mutex<Option<Instant>>,

    engine_runs: Counter,
    completed: Counter,
    failed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    queue_depth: Gauge,
    slots_busy: Gauge,
    slots_total: Gauge,
    in_flight: Gauge,
    cache_hit_rate: Gauge,
    cache_entries: Gauge,
    queue_age: Histogram,
}

impl ServiceTelemetry {
    /// Build the plane and pre-register the service-level families.
    pub fn new(cfg: TelemetryConfig) -> Arc<Self> {
        let registry = Registry::new();
        let bridge = TelemetryBridge::new(Arc::clone(&registry));
        let ring = SnapshotRing::new(cfg.ring_capacity);
        let health = Mutex::new(HealthDetector::new(cfg.health.clone()));
        Arc::new(ServiceTelemetry {
            registry: Arc::clone(&registry),
            bridge,
            ring,
            health,
            findings: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            last_pump: Mutex::new(None),
            engine_runs: registry.counter("gw_service_engine_runs_total", &[], Class::Logical),
            completed: registry.counter("gw_service_completed_total", &[], Class::Logical),
            failed: registry.counter("gw_service_failed_total", &[], Class::Logical),
            cache_hits: registry.counter("gw_service_cache_hits_total", &[], Class::Timing),
            cache_misses: registry.counter("gw_service_cache_misses_total", &[], Class::Timing),
            cache_evictions: registry.counter(
                "gw_service_cache_evictions_total",
                &[],
                Class::Timing,
            ),
            queue_depth: registry.gauge("gw_service_queue_depth", &[]),
            slots_busy: registry.gauge("gw_service_slots_busy", &[]),
            slots_total: registry.gauge("gw_service_slots_total", &[]),
            in_flight: registry.gauge("gw_service_in_flight", &[]),
            cache_hit_rate: registry.gauge("gw_service_cache_hit_rate", &[]),
            cache_entries: registry.gauge("gw_service_cache_entries", &[]),
            queue_age: registry.histogram("gw_service_queue_age_ns", &[]),
            cfg,
        })
    }

    /// The live registry (exporters read it directly).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tracer bridge; hand it to `Tracer::with_sink`.
    pub fn bridge(&self) -> &Arc<TelemetryBridge> {
        &self.bridge
    }

    /// Prometheus text exposition of the live registry.
    pub fn prometheus(&self) -> String {
        self.registry.prometheus()
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> Vec<Arc<Snapshot>> {
        self.ring.snapshots()
    }

    /// The most recent snapshot, if the pump has run.
    pub fn latest(&self) -> Option<Arc<Snapshot>> {
        self.ring.latest()
    }

    /// `gw-telemetry-v1` JSON of the most recent snapshot (`None` before
    /// the first pump).
    pub fn snapshot_json(&self) -> Option<String> {
        self.latest().map(|s| s.to_json())
    }

    /// Every health finding raised so far, in snapshot order.
    pub fn findings(&self) -> Vec<HealthFinding> {
        self.findings.lock().clone()
    }

    /// The logical-counter determinism digest.
    pub fn determinism_digest(&self) -> String {
        self.registry.determinism_digest()
    }

    // --- hooks (called by the service under its state lock) ---

    pub(crate) fn on_submitted(&self, tenant: &str) {
        self.registry
            .counter(
                "gw_service_submitted_total",
                &[("tenant", tenant)],
                Class::Logical,
            )
            .inc();
    }

    pub(crate) fn on_rejected(&self, reason: &str) {
        self.registry
            .counter(
                "gw_service_rejected_total",
                &[("reason", reason)],
                Class::Logical,
            )
            .inc();
    }

    pub(crate) fn on_engine_run(&self) {
        self.engine_runs.inc();
    }

    pub(crate) fn on_dispatch(&self, job: u32, nodes: &[NodeId], queued_for: Duration) {
        self.bridge
            .map_job(job, nodes.iter().map(|n| n.0).collect());
        self.queue_age.observe_ns(queued_for);
    }

    pub(crate) fn on_completed(&self, job: u32, tenant: &str, turnaround: Duration) {
        self.completed.inc();
        self.bridge.forget_job(job);
        self.registry
            .histogram("gw_service_turnaround_ns", &[("tenant", tenant)])
            .observe_ns(turnaround);
    }

    pub(crate) fn on_failed(&self, job: u32) {
        self.failed.inc();
        self.bridge.forget_job(job);
    }

    /// Whether the snapshot cadence has elapsed since the last pump.
    pub(crate) fn pump_due(&self) -> bool {
        self.last_pump
            .lock()
            .is_none_or(|at| at.elapsed() >= self.cfg.snapshot_every)
    }

    /// Refresh gauges from `g`, capture a snapshot, and feed the health
    /// detector; newly raised findings are appended to [`Self::findings`]
    /// and counted in `gw_health_findings_total{kind}`.
    pub(crate) fn pump(&self, g: &GaugeValues) -> Arc<Snapshot> {
        *self.last_pump.lock() = Some(Instant::now());
        self.queue_depth.set(g.queued as f64);
        self.slots_busy.set(g.slots_busy as f64);
        self.slots_total.set(g.slots_total as f64);
        self.in_flight.set(g.in_flight as f64);
        self.cache_entries.set(g.cache_entries as f64);
        let lookups = g.cache_hits + g.cache_misses;
        self.cache_hit_rate.set(if lookups == 0 {
            0.0
        } else {
            g.cache_hits as f64 / lookups as f64
        });
        // The cache keeps its own lifetime tallies under the state lock;
        // mirror them into the monotone counters by delta.
        for (cell, v) in [
            (&self.cache_hits, g.cache_hits),
            (&self.cache_misses, g.cache_misses),
            (&self.cache_evictions, g.cache_evictions),
        ] {
            let cur = cell.get();
            if v > cur {
                cell.add(v - cur);
            }
        }
        for (tenant, queued, lag) in &g.tenants {
            self.registry
                .gauge("gw_service_tenant_queue_depth", &[("tenant", tenant)])
                .set(*queued as f64);
            self.registry
                .gauge("gw_service_tenant_vtime_lag", &[("tenant", tenant)])
                .set(*lag);
        }

        let at_ms = self.epoch.elapsed().as_millis() as u64;
        let snap = self.ring.capture(&self.registry, at_ms);
        let new = self.health.lock().observe(&snap);
        if !new.is_empty() {
            for f in &new {
                self.registry
                    .counter(
                        "gw_health_findings_total",
                        &[("kind", f.kind())],
                        Class::Timing,
                    )
                    .inc();
            }
            self.findings.lock().extend(new);
        }
        snap
    }
}
