//! The resident job service.
//!
//! A [`Service`] owns a shared [`Cluster`] for its whole lifetime and
//! accepts a *stream* of job submissions from named tenants. Three
//! planes compose:
//!
//! 1. **Admission** — [`Service::submit`] never blocks. Under the state
//!    lock it checks shutdown, tenant registration, slot satisfiability,
//!    the global queue bound and the per-tenant quota; any violation is a
//!    typed [`ServiceError::AdmissionRejected`] returned immediately.
//! 2. **Scheduling** — a dedicated scheduler thread drives the
//!    [`FairScheduler`] whenever slots free up or jobs arrive, allocating
//!    each dispatch a *node subset* of the shared cluster (the slot
//!    model: one slot = one node's full lane set). A slot-owner ledger
//!    asserts two concurrent jobs never double-book a node.
//! 3. **Execution** — each dispatched job runs on its own worker thread
//!    via [`Cluster::run_scoped`] with a unique service job id, its node
//!    subset, its own fault plan, and the service-lifetime tracer (so
//!    concurrent jobs land on one wall-clock axis for interference
//!    attribution — see [`Service::interference`]).
//!
//! Results flow back through a [`JobTicket`] (a one-shot channel), and
//! finished runs feed the [`ResultCache`]: a repeat submission with the
//! same `(workload seed, app, slots, config)` is served byte-identically
//! with `served_from_cache` set, without touching the engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use gw_chaos::FaultPlan;
use gw_core::{read_job_output, Cluster, GwApp, JobConfig, JobReport, RunScope};
use gw_storage::{KvVec, NodeId};
use gw_trace::{Interference, Trace, Tracer};

use crate::cache::{CacheKey, ResultCache};
use crate::error::{RejectReason, ServiceError};
use crate::sched::{FairScheduler, SchedConfig};
use crate::telemetry::{GaugeValues, ServiceTelemetry, TelemetryConfig};

/// How often the scheduler thread re-examines its queues even without a
/// wakeup (guards against missed notifies; the Condvar is the fast path).
const SCHED_TICK: Duration = Duration::from_millis(10);

/// One tenant's registration.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (the submission key).
    pub name: String,
    /// Fair-share weight (≥ 1): slot-seconds under saturation are split
    /// proportionally to weights.
    pub weight: u32,
    /// Per-tenant bound on jobs queued (not yet dispatched).
    pub max_queued: usize,
}

impl TenantSpec {
    /// A tenant with `weight` and a queue quota of 8.
    pub fn new(name: &str, weight: u32) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight,
            max_queued: 8,
        }
    }
}

/// Service tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Global bound on jobs queued across all tenants.
    pub max_queued: usize,
    /// Queue age beyond which the fair order is overridden (see
    /// [`SchedConfig::starvation_deadline`]).
    pub starvation_deadline: Duration,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// The tenants allowed to submit.
    pub tenants: Vec<TenantSpec>,
    /// Live telemetry plane tuning ([`TelemetryConfig::enabled`] gates
    /// the whole plane).
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_queued: 64,
            starvation_deadline: Duration::from_secs(30),
            cache_capacity: 32,
            tenants: Vec::new(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// One job submission.
pub struct JobSpec {
    /// Submitting tenant (must be registered in [`ServiceConfig`]).
    pub tenant: String,
    /// The application to run.
    pub app: Arc<dyn GwApp>,
    /// Engine configuration. The output path is rewritten by the service
    /// to a per-job path; everything else is the submitter's.
    pub cfg: JobConfig,
    /// Seed of the workload generator that produced the job's input —
    /// part of the result-cache key. Submitters reusing an input must
    /// reuse its seed; distinct inputs must declare distinct seeds.
    pub workload_seed: u64,
    /// Nodes the job wants (1 ≤ slots ≤ cluster nodes).
    pub slots: u32,
    /// Optional per-job fault schedule (chaos testing of resident jobs).
    pub fault_plan: Option<FaultPlan>,
}

/// A finished job as seen by its submitter.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Service job id (1-based; id 0 is reserved for one-shot runs).
    pub job: u32,
    /// The tenant that submitted it.
    pub tenant: String,
    /// Full output records, ordered by global partition then in-file
    /// order — byte-identical to a dedicated `slots`-node cluster
    /// running the same submission.
    pub output: Arc<KvVec>,
    /// The engine report (`served_from_cache` set on cache hits).
    pub report: JobReport,
    /// Time from admission to dispatch.
    pub queue_wait: Duration,
    /// Time from admission to completion.
    pub turnaround: Duration,
}

/// Monotonic service counters (readable at any time).
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Submissions admitted (queued or served from cache).
    pub submitted: AtomicU64,
    /// Submissions rejected by admission control.
    pub rejected: AtomicU64,
    /// Rejections because the global queue bound was reached.
    pub rejected_queue_full: AtomicU64,
    /// Rejections because the tenant's own quota was reached.
    pub rejected_tenant_queue_full: AtomicU64,
    /// Rejections of unregistered tenants.
    pub rejected_unknown_tenant: AtomicU64,
    /// Rejections of never-schedulable slot requests.
    pub rejected_slots_unsatisfiable: AtomicU64,
    /// Submissions served from the result cache.
    pub cache_hits: AtomicU64,
    /// Engine runs actually launched.
    pub engine_runs: AtomicU64,
    /// Jobs completed successfully (including cache hits).
    pub completed: AtomicU64,
    /// Jobs that failed in the engine.
    pub failed: AtomicU64,
}

/// A point-in-time copy of [`ServiceCounters`] plus the queue/cache
/// state captured under the same state lock — which makes the
/// conservation invariants *exact*, not racy approximations:
///
/// - `submitted == completed + failed + in_flight + queued`
///   (every admitted job is in exactly one of those states; rejected
///   submissions were never admitted, so they appear only in `rejected`);
/// - `rejected == rejected_queue_full + rejected_tenant_queue_full +
///   rejected_unknown_tenant + rejected_slots_unsatisfiable`.
///
/// Both are asserted by `counter_conservation_invariants_hold` in this
/// crate's tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// See [`ServiceCounters::submitted`].
    pub submitted: u64,
    /// See [`ServiceCounters::rejected`].
    pub rejected: u64,
    /// See [`ServiceCounters::rejected_queue_full`].
    pub rejected_queue_full: u64,
    /// See [`ServiceCounters::rejected_tenant_queue_full`].
    pub rejected_tenant_queue_full: u64,
    /// See [`ServiceCounters::rejected_unknown_tenant`].
    pub rejected_unknown_tenant: u64,
    /// See [`ServiceCounters::rejected_slots_unsatisfiable`].
    pub rejected_slots_unsatisfiable: u64,
    /// See [`ServiceCounters::cache_hits`].
    pub cache_hits: u64,
    /// Result-cache lookups that missed.
    pub cache_misses: u64,
    /// Result-cache entries dropped by FIFO eviction.
    pub cache_evictions: u64,
    /// See [`ServiceCounters::engine_runs`].
    pub engine_runs: u64,
    /// See [`ServiceCounters::completed`].
    pub completed: u64,
    /// See [`ServiceCounters::failed`].
    pub failed: u64,
    /// Jobs dispatched to a worker and not yet completed or failed.
    pub in_flight: u64,
    /// Jobs admitted and still queued (not yet dispatched).
    pub queued: u64,
}

impl ServiceCounters {
    /// Atomics only; the caller (holding the state lock) fills in the
    /// queue/cache fields so the whole snapshot is one consistent cut.
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_tenant_queue_full: self.rejected_tenant_queue_full.load(Ordering::Relaxed),
            rejected_unknown_tenant: self.rejected_unknown_tenant.load(Ordering::Relaxed),
            rejected_slots_unsatisfiable: self.rejected_slots_unsatisfiable.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: 0,
            cache_evictions: 0,
            engine_runs: self.engine_runs.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            in_flight: 0,
            queued: 0,
        }
    }
}

/// Handle to one admitted submission. [`JobTicket::wait`] blocks until
/// the job finishes (or the service shuts down under it).
pub struct JobTicket {
    /// The assigned service job id.
    pub job: u32,
    rx: Receiver<Result<ServiceReport, ServiceError>>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket").field("job", &self.job).finish()
    }
}

impl JobTicket {
    /// Block until the job's result is available.
    pub fn wait(self) -> Result<ServiceReport, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }
}

/// A job admitted but not yet dispatched.
struct Pending {
    app: Arc<dyn GwApp>,
    cfg: JobConfig,
    fault_plan: Option<FaultPlan>,
    tenant: String,
    slots: u32,
    key: CacheKey,
    submitted_at: Instant,
    tx: Sender<Result<ServiceReport, ServiceError>>,
}

struct State {
    sched: FairScheduler,
    pending: HashMap<u32, Pending>,
    /// Which job currently owns each node of the shared cluster. The
    /// scheduler allocates only from `None` entries and asserts on
    /// release, so two jobs can never double-book a node's lanes.
    slot_owner: Vec<Option<u32>>,
    cache: ResultCache,
    next_job: u32,
    shutdown: bool,
    workers: Vec<JoinHandle<()>>,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    counters: ServiceCounters,
    epoch: Instant,
    max_queued: usize,
    tenant_quota: HashMap<String, usize>,
    telemetry: Option<Arc<ServiceTelemetry>>,
}

impl Inner {
    /// Gauge inputs for a telemetry pump, read under the state lock.
    fn gauge_values(&self, state: &State, total_slots: usize) -> GaugeValues {
        let mut owners: Vec<u32> = state.slot_owner.iter().filter_map(|o| *o).collect();
        owners.sort_unstable();
        owners.dedup();
        let (cache_hits, cache_misses) = state.cache.stats();
        GaugeValues {
            queued: state.sched.total_queued(),
            tenants: state.sched.tenant_stats(),
            slots_busy: state.slot_owner.iter().filter(|o| o.is_some()).count(),
            slots_total: total_slots,
            in_flight: owners.len(),
            cache_hits,
            cache_misses,
            cache_evictions: state.cache.evictions(),
            cache_entries: state.cache.len(),
        }
    }
}

/// The resident multi-tenant job service. See the module docs.
pub struct Service {
    cluster: Arc<Cluster>,
    tracer: Tracer,
    inner: Arc<Inner>,
    scheduler: Option<JoinHandle<()>>,
}

impl Service {
    /// Start a service over `cluster` with `cfg`'s tenants and bounds.
    /// The scheduler thread starts immediately.
    pub fn start(cluster: Arc<Cluster>, cfg: ServiceConfig) -> Self {
        let mut sched = FairScheduler::new(SchedConfig {
            starvation_deadline: cfg.starvation_deadline,
        });
        let mut tenant_quota = HashMap::new();
        for t in &cfg.tenants {
            sched.add_tenant(&t.name, t.weight);
            tenant_quota.insert(t.name.clone(), t.max_queued);
        }
        let telemetry = cfg
            .telemetry
            .enabled
            .then(|| ServiceTelemetry::new(cfg.telemetry.clone()));
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                sched,
                pending: HashMap::new(),
                slot_owner: vec![None; cluster.nodes() as usize],
                cache: ResultCache::new(cfg.cache_capacity),
                next_job: 1, // job 0 is the one-shot convention
                shutdown: false,
                workers: Vec::new(),
            }),
            cv: Condvar::new(),
            counters: ServiceCounters::default(),
            epoch: Instant::now(),
            max_queued: cfg.max_queued,
            tenant_quota,
            telemetry,
        });
        // With telemetry on, the service-lifetime tracer carries the
        // bridge as a live sink: every engine event (chunk span ends,
        // fabric/storage/chaos counters) feeds the registry as recorded.
        let tracer = match &inner.telemetry {
            Some(t) => Tracer::with_sink(Arc::clone(t.bridge()) as _),
            None => Tracer::new(),
        };
        let scheduler = {
            let inner = Arc::clone(&inner);
            let cluster = Arc::clone(&cluster);
            let tracer = tracer.clone();
            thread::Builder::new()
                .name("gw-svc-sched".into())
                .spawn(move || scheduler_loop(inner, cluster, tracer))
                .expect("spawn scheduler thread")
        };
        Service {
            cluster,
            tracer,
            inner,
            scheduler: Some(scheduler),
        }
    }

    /// Submit a job. Returns a ticket immediately: admission never
    /// blocks, and rejections are typed. Cache hits resolve the ticket
    /// before it is even returned.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, ServiceError> {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        if state.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        let reject = |r: RejectReason| {
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            let by_reason = match &r {
                RejectReason::QueueFull { .. } => &inner.counters.rejected_queue_full,
                RejectReason::TenantQueueFull { .. } => &inner.counters.rejected_tenant_queue_full,
                RejectReason::UnknownTenant(_) => &inner.counters.rejected_unknown_tenant,
                RejectReason::SlotsUnsatisfiable { .. } => {
                    &inner.counters.rejected_slots_unsatisfiable
                }
            };
            by_reason.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &inner.telemetry {
                t.on_rejected(r.name());
            }
            Err(ServiceError::AdmissionRejected(r))
        };
        if !state.sched.has_tenant(&spec.tenant) {
            return reject(RejectReason::UnknownTenant(spec.tenant));
        }
        let total = self.cluster.nodes();
        if spec.slots == 0 || spec.slots > total {
            return reject(RejectReason::SlotsUnsatisfiable {
                requested: spec.slots,
                total,
            });
        }
        if state.sched.total_queued() >= inner.max_queued {
            return reject(RejectReason::QueueFull {
                limit: inner.max_queued,
            });
        }
        let quota = inner.tenant_quota[&spec.tenant];
        if state.sched.queued(&spec.tenant) >= quota {
            return reject(RejectReason::TenantQueueFull {
                tenant: spec.tenant,
                limit: quota,
            });
        }

        let job = state.next_job;
        state.next_job += 1;
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &inner.telemetry {
            t.on_submitted(&spec.tenant);
        }
        let key = CacheKey::new(spec.workload_seed, spec.app.name(), spec.slots, &spec.cfg);
        let (tx, rx) = bounded(1);

        if let Some((output, report)) = state.cache.get(&key) {
            // Served from cache: resolve the ticket without queueing.
            inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            inner.counters.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &inner.telemetry {
                t.on_completed(job, &spec.tenant, Duration::ZERO);
            }
            let _ = tx.send(Ok(ServiceReport {
                job,
                tenant: spec.tenant,
                output,
                report,
                queue_wait: Duration::ZERO,
                turnaround: Duration::ZERO,
            }));
            return Ok(JobTicket { job, rx });
        }

        let now = inner.epoch.elapsed();
        state.sched.enqueue(&spec.tenant, job, spec.slots, now);
        state.pending.insert(
            job,
            Pending {
                app: spec.app,
                cfg: spec.cfg,
                fault_plan: spec.fault_plan,
                tenant: spec.tenant,
                slots: spec.slots,
                key,
                submitted_at: Instant::now(),
                tx,
            },
        );
        drop(state);
        inner.cv.notify_all();
        Ok(JobTicket { job, rx })
    }

    /// Point-in-time counters. Captured under the state lock, so the
    /// documented conservation invariants hold exactly on the returned
    /// snapshot (see [`CounterSnapshot`]).
    pub fn counters(&self) -> CounterSnapshot {
        let state = self.inner.state.lock();
        let mut snap = self.inner.counters.snapshot();
        let (_, misses) = state.cache.stats();
        snap.cache_misses = misses;
        snap.cache_evictions = state.cache.evictions();
        snap.queued = state.sched.total_queued() as u64;
        let mut owners: Vec<u32> = state.slot_owner.iter().filter_map(|o| *o).collect();
        owners.sort_unstable();
        owners.dedup();
        snap.in_flight = owners.len() as u64;
        snap
    }

    /// The live telemetry plane, if enabled in [`ServiceConfig`].
    pub fn telemetry(&self) -> Option<&Arc<ServiceTelemetry>> {
        self.inner.telemetry.as_ref()
    }

    /// Force a telemetry snapshot right now, bypassing the pump cadence
    /// (no-op returning `false` when telemetry is disabled). Lets tests
    /// drive the ring deterministically instead of sleeping.
    pub fn pump_telemetry_now(&self) -> bool {
        let Some(t) = &self.inner.telemetry else {
            return false;
        };
        let state = self.inner.state.lock();
        let g = self
            .inner
            .gauge_values(&state, self.cluster.nodes() as usize);
        t.pump(&g);
        true
    }

    /// The service-lifetime trace so far (all jobs, one wall-clock axis).
    pub fn trace(&self) -> Trace {
        self.tracer.finish()
    }

    /// Cross-tenant interference attribution over the service trace:
    /// per-job activity plus pairwise wall-clock overlap and shared-node
    /// sets.
    pub fn interference(&self) -> Interference {
        Interference::from_trace(&self.trace())
    }

    /// The shared cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Stop accepting work, fail queued jobs with
    /// [`ServiceError::ShuttingDown`], and join all threads. Called by
    /// `Drop`; idempotent.
    pub fn shutdown(&mut self) {
        let workers = {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            for job in state.sched.drain() {
                if let Some(p) = state.pending.remove(&job) {
                    let _ = p.tx.send(Err(ServiceError::ShuttingDown));
                }
            }
            std::mem::take(&mut state.workers)
        };
        self.inner.cv.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        for h in workers {
            let _ = h.join();
        }
        // Workers that finished after the drain appended to the list again.
        let leftover = std::mem::take(&mut self.inner.state.lock().workers);
        for h in leftover {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The scheduler loop: dispatch while anything fits, then sleep until a
/// submit/completion wakeup (or the fallback tick).
fn scheduler_loop(inner: Arc<Inner>, cluster: Arc<Cluster>, tracer: Tracer) {
    loop {
        let mut state = inner.state.lock();
        if state.shutdown {
            return;
        }
        let now = inner.epoch.elapsed();
        let free = state.slot_owner.iter().filter(|o| o.is_none()).count() as u32;
        if let Some(d) = state.sched.next(now, free) {
            let pending = state
                .pending
                .remove(&d.job)
                .expect("dispatched job has a pending record");

            // Dispatch-time cache re-check: an identical job may have
            // completed while this one sat queued.
            if let Some((output, report)) = state.cache.get(&pending.key) {
                state.sched.complete(d.job, 0.0);
                inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                let queue_wait = pending.submitted_at.elapsed();
                if let Some(t) = &inner.telemetry {
                    t.on_completed(d.job, &pending.tenant, queue_wait);
                }
                let _ = pending.tx.send(Ok(ServiceReport {
                    job: d.job,
                    tenant: pending.tenant,
                    output,
                    report,
                    queue_wait,
                    turnaround: queue_wait,
                }));
                continue;
            }

            // Allocate the node subset: first-fit ascending over free
            // slots. The ledger is the double-booking guard.
            let mut node_set = Vec::with_capacity(d.slots as usize);
            for (n, owner) in state.slot_owner.iter_mut().enumerate() {
                if owner.is_none() && node_set.len() < d.slots as usize {
                    *owner = Some(d.job);
                    node_set.push(NodeId(n as u32));
                }
            }
            assert_eq!(
                node_set.len(),
                d.slots as usize,
                "scheduler dispatched job {} without enough free slots",
                d.job
            );

            inner.counters.engine_runs.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &inner.telemetry {
                t.on_engine_run();
                // Register the virtual→physical node mapping before the
                // worker records its first event, so per-node series and
                // health findings name physical nodes.
                t.on_dispatch(d.job, &node_set, d.queued_for);
            }
            let handle = {
                let inner = Arc::clone(&inner);
                let cluster = Arc::clone(&cluster);
                let tracer = tracer.clone();
                let job = d.job;
                thread::Builder::new()
                    .name(format!("gw-svc-job-{job}"))
                    .spawn(move || run_job(inner, cluster, tracer, job, node_set, pending))
                    .expect("spawn worker thread")
            };
            state.workers.push(handle);
            continue;
        }
        // Nothing dispatchable: pump telemetry if the cadence is due,
        // then wait for a wakeup or the fallback tick. Pumping here (the
        // scheduler's idle edge) means snapshots track the service while
        // jobs run — the Condvar wakes this thread on every submit and
        // completion, and the tick bounds the gap in between.
        if let Some(t) = &inner.telemetry {
            if t.pump_due() {
                let g = inner.gauge_values(&state, cluster.nodes() as usize);
                t.pump(&g);
            }
        }
        inner.cv.wait_for(&mut state, SCHED_TICK);
    }
}

/// One worker: run the job on its node subset, publish the result, free
/// the slots, feed the cache.
fn run_job(
    inner: Arc<Inner>,
    cluster: Arc<Cluster>,
    tracer: Tracer,
    job: u32,
    node_set: Vec<NodeId>,
    pending: Pending,
) {
    let slots = pending.slots;
    let queue_wait = pending.submitted_at.elapsed();
    let started = Instant::now();

    let mut cfg = pending.cfg;
    cfg.output = format!("/svc/out/job-{job}");
    let mut scope = RunScope::for_job(job, node_set.clone());
    scope.fault_plan = pending.fault_plan.map(Arc::new);
    scope.tracer = Some(tracer);

    let result = cluster
        .run_scoped(pending.app, &cfg, scope)
        .and_then(|report| {
            let output = read_job_output(cluster.store(), &report)?;
            // The DFS namespace is shared and job output paths are reused
            // only after this delete, so drop the files eagerly.
            for path in report.output_files() {
                cluster.store().delete(&path);
            }
            Ok((output, report))
        });
    let elapsed = started.elapsed();

    let mut state = inner.state.lock();
    for n in &node_set {
        let owner = state.slot_owner[n.0 as usize].take();
        assert_eq!(
            owner,
            Some(job),
            "slot {} released by job {job} but owned by {owner:?}",
            n.0
        );
    }
    state
        .sched
        .complete(job, elapsed.as_secs_f64() * slots as f64);
    match result {
        Ok((output, report)) => {
            let output = Arc::new(output);
            state
                .cache
                .insert(pending.key, Arc::clone(&output), Arc::new(report.clone()));
            inner.counters.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &inner.telemetry {
                t.on_completed(job, &pending.tenant, queue_wait + elapsed);
            }
            let _ = pending.tx.send(Ok(ServiceReport {
                job,
                tenant: pending.tenant,
                output,
                report,
                queue_wait,
                turnaround: queue_wait + elapsed,
            }));
        }
        Err(e) => {
            inner.counters.failed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &inner.telemetry {
                t.on_failed(job);
            }
            let _ = pending.tx.send(Err(ServiceError::Engine(e)));
        }
    }
    drop(state);
    inner.cv.notify_all();
}
