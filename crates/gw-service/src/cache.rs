//! The byte-exact result cache.
//!
//! Glasswing jobs are deterministic: output bytes are a function of
//! (workload, `JobConfig`, node count) — the determinism battery in
//! `tests/` pins exactly that. The cache turns the contract into served
//! traffic: a repeated submission with the same workload seed, the same
//! job configuration (output path excluded — the service assigns one per
//! job) and the same slot count returns the original run's bytes with
//! zero re-execution, flagged via `JobReport::served_from_cache`.
//!
//! Keys digest the configuration through its `Debug` rendering — every
//! field that can change output bytes participates, and a new field
//! changes the digest conservatively (a false miss, never a false hit).
//! Eviction is FIFO at a fixed capacity.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use gw_core::hash::hash_bytes;
use gw_core::{JobConfig, JobReport};
use gw_storage::KvVec;

/// Identity of a cacheable submission.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The workload generator seed the submitter declared.
    pub workload_seed: u64,
    /// The application name (`GwApp::name`).
    pub app: String,
    /// Slots the job runs on (partition count, and therefore output
    /// bytes, depend on it).
    pub slots: u32,
    /// Digest of the job configuration with the output path cleared.
    pub cfg_digest: u64,
}

impl CacheKey {
    /// Build the key for a submission.
    pub fn new(workload_seed: u64, app: &str, slots: u32, cfg: &JobConfig) -> Self {
        let mut normalized = cfg.clone();
        // The service rewrites the output path per job; two submissions
        // differing only there are the same work.
        normalized.output = String::new();
        let digest = hash_bytes(format!("{normalized:?}").as_bytes());
        CacheKey {
            workload_seed,
            app: app.to_string(),
            slots,
            cfg_digest: digest,
        }
    }
}

/// One cached run: the job's full output records plus its report.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Output records, ordered by global partition then in-file order.
    pub output: Arc<KvVec>,
    /// The original run's report (`served_from_cache` still false here;
    /// it is set on the *clone* handed to each cache hit).
    pub report: Arc<JobReport>,
}

/// FIFO-bounded map from [`CacheKey`] to finished results.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, CachedResult>,
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`. A hit returns the cached output and a report clone
    /// with `served_from_cache` set.
    pub fn get(&mut self, key: &CacheKey) -> Option<(Arc<KvVec>, JobReport)> {
        match self.map.get(key) {
            Some(hit) => {
                self.hits += 1;
                let mut report = (*hit.report).clone();
                report.served_from_cache = true;
                Some((Arc::clone(&hit.output), report))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a finished run. Re-inserting an existing key refreshes the
    /// value without growing the FIFO order.
    pub fn insert(&mut self, key: CacheKey, output: Arc<KvVec>, report: Arc<JobReport>) {
        if self.capacity == 0 {
            return;
        }
        if self
            .map
            .insert(key.clone(), CachedResult { output, report })
            .is_none()
        {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                    self.evictions += 1;
                }
            }
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries dropped by FIFO eviction since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64, slots: u32, cfg: &JobConfig) -> CacheKey {
        CacheKey::new(seed, "app", slots, cfg)
    }

    fn dummy_report() -> Arc<JobReport> {
        Arc::new(JobReport {
            served_from_cache: false,
            elapsed: std::time::Duration::from_millis(5),
            nodes: Vec::new(),
            nodes_lost: 0,
            splits_rescheduled: 0,
            blocks_read_remote_due_to_fault: 0,
            speculation: Default::default(),
            metrics: gw_trace::Trace::default().metrics(),
            analysis: Default::default(),
            trace: gw_trace::Trace::default(),
        })
    }

    #[test]
    fn output_paths_do_not_split_the_key_but_real_knobs_do() {
        let a = JobConfig::new("/in", "/svc/out/job-1");
        let b = JobConfig::new("/in", "/svc/out/job-2");
        assert_eq!(key(7, 2, &a), key(7, 2, &b));
        let mut c = a.clone();
        c.partitions_per_node = 5;
        assert_ne!(key(7, 2, &a), key(7, 2, &c));
        assert_ne!(key(7, 2, &a), key(8, 2, &a), "seed is part of the key");
        assert_ne!(key(7, 2, &a), key(7, 3, &a), "slots are part of the key");
        assert_ne!(
            CacheKey::new(7, "x", 2, &a),
            CacheKey::new(7, "y", 2, &a),
            "the app is part of the key"
        );
    }

    #[test]
    fn hits_flag_served_from_cache_without_mutating_the_entry() {
        let mut cache = ResultCache::new(4);
        let cfg = JobConfig::new("/in", "/out");
        let k = key(1, 2, &cfg);
        cache.insert(
            k.clone(),
            Arc::new(vec![(b"k".to_vec(), b"v".to_vec())]),
            dummy_report(),
        );
        let (out, report) = cache.get(&k).unwrap();
        assert!(report.served_from_cache);
        assert_eq!(out.len(), 1);
        // A second hit gets a fresh flagged clone (entry unmutated).
        let (_, report2) = cache.get(&k).unwrap();
        assert!(report2.served_from_cache);
        assert_eq!(cache.stats(), (2, 0));
    }

    #[test]
    fn eviction_is_fifo_and_capacity_zero_disables() {
        let mut cache = ResultCache::new(2);
        let cfg = JobConfig::new("/in", "/out");
        for seed in 0..3u64 {
            cache.insert(key(seed, 1, &cfg), Arc::new(Vec::new()), dummy_report());
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0, 1, &cfg)).is_none(), "oldest evicted");
        assert!(cache.get(&key(2, 1, &cfg)).is_some());

        let mut off = ResultCache::new(0);
        off.insert(key(9, 1, &cfg), Arc::new(Vec::new()), dummy_report());
        assert!(off.is_empty());
    }
}
